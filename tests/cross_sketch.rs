//! Cross-crate consistency: the same data seen through HyperMinHash, raw
//! HyperLogLog and the MinHash variants must tell one coherent story.

use hyperminhash::prelude::*;
use hyperminhash::sketch::cardinality::CardinalityEstimator;

/// The LogLog-counter half of a HyperMinHash bucket *is* an HLL register
/// (Definition 1 / Algorithm 3): with the same oracle, `p` and cap, the
/// two sketches' counter histograms must be identical.
#[test]
fn hmh_counters_equal_hll_registers() {
    let oracle = RandomOracle::with_seed(5);
    let params = HmhParams::new(10, 6, 8).unwrap();
    let mut hmh = HyperMinHash::with_oracle(params, oracle);
    let mut hll = hyperminhash::hll::HyperLogLog::with_oracle(10, params.cap(), oracle);
    for i in 0..50_000u64 {
        hmh.insert(&i);
        hll.insert(&i);
    }
    assert_eq!(hmh.counter_histogram(), hll.histogram());
    for bucket in 0..params.num_buckets() {
        let hmh_counter = hmh.register(bucket).map(|(c, _)| c).unwrap_or(0);
        assert_eq!(hmh_counter, hll.register(bucket), "bucket {bucket}");
    }
}

/// All sketches agree on cardinality within their error envelopes.
#[test]
fn cardinality_consensus() {
    let n = 80_000u64;
    let oracle = RandomOracle::default();

    let mut hmh = HyperMinHash::new(HmhParams::new(12, 6, 10).unwrap());
    let mut hll = hyperminhash::hll::HyperLogLog::new(12);
    let mut kmv = BottomK::new(2048, oracle);
    let mut kp = KPartitionMinHash::new(12, 20, oracle);
    for i in 0..n {
        hmh.insert(&i);
        hll.insert(&i);
        kmv.insert(&i);
        kp.insert(&i);
    }
    for (name, est) in [
        ("hyperminhash", hmh.cardinality()),
        ("hyperloglog", hll.cardinality()),
        ("bottom-k", kmv.cardinality()),
        ("k-partition", kp.cardinality()),
    ] {
        assert!(
            (est / n as f64 - 1.0).abs() < 0.1,
            "{name}: estimate {est} vs {n}"
        );
    }
}

/// All Jaccard-capable sketches agree on J = 1/3 within noise.
#[test]
fn jaccard_consensus() {
    let oracle = RandomOracle::default();
    let params = HmhParams::new(11, 6, 10).unwrap();
    let spec = hyperminhash::workloads::pairs::OverlapSpec::equal_sized_with_jaccard(30_000, 1.0 / 3.0);
    let (items_a, items_b) = hyperminhash::workloads::pairs::pair_with_overlap(spec, 3);

    let mut hmh = (HyperMinHash::with_oracle(params, oracle), HyperMinHash::with_oracle(params, oracle));
    let mut kmv = (BottomK::new(1024, oracle), BottomK::new(1024, oracle));
    let mut kh = (KHashMinHash::new(256, oracle), KHashMinHash::new(256, oracle));
    for &x in &items_a {
        hmh.0.insert(&x);
        kmv.0.insert(&x);
        kh.0.insert(&x);
    }
    for &x in &items_b {
        hmh.1.insert(&x);
        kmv.1.insert(&x);
        kh.1.insert(&x);
    }
    let estimates = [
        ("hyperminhash", hmh.0.jaccard(&hmh.1).unwrap().estimate),
        ("bottom-k", kmv.0.jaccard(&kmv.1).unwrap()),
        ("k-hash", kh.0.jaccard(&kh.1).unwrap()),
    ];
    for (name, est) in estimates {
        assert!((est - 1.0 / 3.0).abs() < 0.06, "{name}: {est}");
    }
}

/// Unions compose across a chain of sketches and match a direct sketch.
#[test]
fn union_chains() {
    let params = HmhParams::new(8, 5, 8).unwrap();
    let chunks: Vec<HyperMinHash> = (0..8u64)
        .map(|c| HyperMinHash::from_items(params, (c * 1000)..((c + 1) * 1000)))
        .collect();
    let mut acc = chunks[0].clone();
    for c in &chunks[1..] {
        acc.merge(c).unwrap();
    }
    let direct = HyperMinHash::from_items(params, 0..8000u64);
    assert_eq!(acc, direct);
    let est = acc.cardinality();
    assert!((est / 8000.0 - 1.0).abs() < 0.15, "estimate {est}");
}

/// The pseudocode estimator configuration and the default both work on the
/// same sketch (ablation hook used by the cardinality experiment).
#[test]
fn estimator_configurations_agree_in_range() {
    let params = HmhParams::new(11, 6, 10).unwrap();
    let sketch = HyperMinHash::from_items(params, 0..100_000u64);
    let default = CardinalityEstimator::default().estimate(&sketch);
    let pseudo = CardinalityEstimator::pseudocode().estimate(&sketch);
    assert!((default / 1e5 - 1.0).abs() < 0.08, "default {default}");
    assert!((pseudo / 1e5 - 1.0).abs() < 0.08, "pseudocode {pseudo}");
}
