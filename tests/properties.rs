//! Property-based tests (proptest) on the core invariants the paper's
//! algebra depends on.

use hyperminhash::hashing::bits::Digest128;
use hyperminhash::math::{BigFloat, BigUint};
use hyperminhash::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = HmhParams> {
    (0u32..=8, 2u32..=6, 1u32..=12)
        .prop_map(|(p, q, r)| HmhParams::new(p, q, r).expect("ranges are valid"))
}

fn arb_items() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union is commutative, associative, idempotent, with empty identity —
    /// the semilattice HyperMinHash needs for CNF clause evaluation.
    #[test]
    fn union_semilattice(params in arb_params(), xs in arb_items(), ys in arb_items(), zs in arb_items()) {
        let a = HyperMinHash::from_items(params, xs);
        let b = HyperMinHash::from_items(params, ys);
        let c = HyperMinHash::from_items(params, zs);
        prop_assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        prop_assert_eq!(
            a.union(&b).unwrap().union(&c).unwrap(),
            a.union(&b.union(&c).unwrap()).unwrap()
        );
        prop_assert_eq!(a.union(&a).unwrap(), a.clone());
        prop_assert_eq!(a.union(&HyperMinHash::new(params)).unwrap(), a);
    }

    /// The sketch is a pure set function: order and duplicates never matter.
    #[test]
    fn sketch_is_order_and_multiplicity_invariant(params in arb_params(), mut xs in arb_items()) {
        let forward = HyperMinHash::from_items(params, xs.clone());
        xs.reverse();
        let mut with_dups = xs.clone();
        with_dups.extend(xs.iter().copied());
        let backward_dups = HyperMinHash::from_items(params, with_dups);
        prop_assert_eq!(forward, backward_dups);
    }

    /// Union of sketches equals the sketch of the union of the item sets.
    #[test]
    fn union_homomorphism(params in arb_params(), xs in arb_items(), ys in arb_items()) {
        let a = HyperMinHash::from_items(params, xs.clone());
        let b = HyperMinHash::from_items(params, ys.clone());
        let mut all = xs;
        all.extend(ys);
        let direct = HyperMinHash::from_items(params, all);
        prop_assert_eq!(a.union(&b).unwrap(), direct);
    }

    /// Jaccard of a sketch with itself is 1 (when non-empty), 0 with a
    /// disjoint-universe sketch is small, and always within [0, 1].
    #[test]
    fn jaccard_range_and_identity(params in arb_params(), xs in arb_items()) {
        let a = HyperMinHash::from_items(params, xs.clone());
        let j = a.jaccard(&a.clone()).unwrap();
        prop_assert!((0.0..=1.0).contains(&j.estimate));
        if !xs.is_empty() {
            prop_assert_eq!(j.raw, 1.0);
        }
    }

    /// Cardinality is monotone under union (estimates may wobble, but the
    /// union estimate can never drop below either input's by more than the
    /// estimator noise floor — and registers are exactly monotone).
    #[test]
    fn union_registers_monotone(params in arb_params(), xs in arb_items(), ys in arb_items()) {
        let a = HyperMinHash::from_items(params, xs);
        let b = HyperMinHash::from_items(params, ys);
        let u = a.union(&b).unwrap();
        for bucket in 0..params.num_buckets() {
            let ra = a.register(bucket);
            let ru = u.register(bucket);
            match (ra, ru) {
                (Some((ca, ma)), Some((cu, mu))) => {
                    prop_assert!(cu > ca || (cu == ca && mu <= ma));
                }
                (Some(_), None) => prop_assert!(false, "union lost a register"),
                _ => {}
            }
        }
    }

    /// Serde round-trips are the identity.
    #[test]
    fn serde_identity(params in arb_params(), xs in arb_items()) {
        let a = HyperMinHash::from_items(params, xs);
        let json = serde_json::to_string(&a).unwrap();
        let back: HyperMinHash = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(a, back);
    }

    /// Digest bit-field extraction is consistent: take_bits of adjacent
    /// fields concatenate to take_bits of the whole span.
    #[test]
    fn digest_bitfields_concatenate(hi in any::<u64>(), lo in any::<u64>(), start in 0u32..100, a in 1u32..20, b in 1u32..20) {
        let d = Digest128::new(hi, lo);
        let whole = d.take_bits(start, a + b);
        let left = d.take_bits(start, a);
        let right = d.take_bits(start + a, b);
        prop_assert_eq!(whole, (left << b) | right);
    }

    /// BigUint arithmetic agrees with u128 where both apply.
    #[test]
    fn biguint_matches_u128(x in any::<u64>(), y in any::<u64>()) {
        let (bx, by) = (BigUint::from_u64(x), BigUint::from_u64(y));
        prop_assert_eq!(bx.add(&by), BigUint::from_u128(u128::from(x) + u128::from(y)));
        prop_assert_eq!(bx.mul(&by), BigUint::from_u128(u128::from(x) * u128::from(y)));
        let (big, small) = if x >= y { (x, y) } else { (y, x) };
        prop_assert_eq!(
            BigUint::from_u64(big).sub(&BigUint::from_u64(small)),
            BigUint::from_u64(big - small)
        );
        prop_assert_eq!(bx.shl(13).shr(13), bx);
    }

    /// BigFloat add/mul agree with f64 on exactly-representable inputs.
    #[test]
    fn bigfloat_matches_f64(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        // Quantize to dyadics so f64 arithmetic is exact.
        let a = (a * 1024.0).round() / 1024.0;
        let b = (b * 1024.0).round() / 1024.0;
        let (ba, bb) = (BigFloat::from_f64(a), BigFloat::from_f64(b));
        prop_assert_eq!(ba.add(&bb).to_f64(), a + b);
        prop_assert_eq!(ba.sub(&bb).to_f64(), a - b);
        prop_assert_eq!(ba.mul(&bb).to_f64(), a * b);
    }

    /// CNF parser round-trips through Display.
    #[test]
    fn cnf_parser_roundtrip(clauses in proptest::collection::vec(proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 1..4), 1..4)) {
        let query = hyperminhash::cnf::CnfQuery::new(clauses).unwrap();
        let reparsed = hyperminhash::cnf::parse(&query.to_string()).unwrap();
        prop_assert_eq!(query, reparsed);
    }

    /// reduce_r is exactly direct construction at the smaller r, on
    /// arbitrary item sets (the Lemma-4 prefix-order argument).
    #[test]
    fn reduce_r_exactness(xs in arb_items(), new_r in 1u32..10) {
        let wide = HmhParams::new(5, 4, 10).unwrap();
        let narrow = HmhParams::new(5, 4, new_r).unwrap();
        let sketch = HyperMinHash::from_items(wide, xs.clone());
        let direct = HyperMinHash::from_items(narrow, xs);
        prop_assert_eq!(sketch.reduce_r(new_r).unwrap(), direct);
    }

    /// k-partition MinHash shares the same set-function and union laws.
    #[test]
    fn kpartition_set_function(xs in arb_items(), ys in arb_items()) {
        let oracle = RandomOracle::default();
        let build = |items: &[u64]| {
            let mut s = KPartitionMinHash::new(6, 12, oracle);
            for &x in items {
                s.insert(&x);
            }
            s
        };
        let a = build(&xs);
        let b = build(&ys);
        let mut all = xs.clone();
        all.extend(ys.iter().copied());
        prop_assert_eq!(a.union(&b).unwrap(), build(&all));
    }
}
