//! Property-based tests on the core invariants the paper's algebra
//! depends on.
//!
//! Formerly driven by `proptest`; now a deterministic seeded harness (the
//! build environment vendors its dependencies, and a fixed-seed sweep
//! makes failures exactly reproducible without a shrinker). Each property
//! runs against `CASES` independently generated inputs.

use hyperminhash::hashing::bits::Digest128;
use hyperminhash::math::{BigFloat, BigUint};
use hyperminhash::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases per property (matches the old `ProptestConfig::with_cases(64)`).
const CASES: u64 = 64;

/// Deterministic input generator for one property case.
struct Gen {
    rng: StdRng,
}

impl Gen {
    fn new(property: u64, case: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(property.wrapping_mul(0x9e37_79b9) ^ case) }
    }

    /// Valid `HmhParams` over the old strategy's ranges:
    /// p ∈ [0,8], q ∈ [2,6], r ∈ [1,12].
    fn params(&mut self) -> HmhParams {
        let p = self.rng.gen_range(0u32..=8);
        let q = self.rng.gen_range(2u32..=6);
        let r = self.rng.gen_range(1u32..=12);
        HmhParams::new(p, q, r).expect("ranges are valid")
    }

    /// Item vector of length 0..400 with arbitrary u64 items.
    fn items(&mut self) -> Vec<u64> {
        let len = self.rng.gen_range(0usize..400);
        (0..len).map(|_| self.rng.gen()).collect()
    }

    /// Identifier matching `[a-z][a-z0-9_]{0,8}` (the old regex strategy).
    fn ident(&mut self) -> String {
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        let mut s = String::new();
        s.push(FIRST[self.rng.gen_range(0usize..FIRST.len())] as char);
        let extra = self.rng.gen_range(0usize..=8);
        for _ in 0..extra {
            s.push(REST[self.rng.gen_range(0usize..REST.len())] as char);
        }
        s
    }
}

/// Run `body` for `CASES` deterministic cases of property `id`.
fn check(id: u64, mut body: impl FnMut(&mut Gen)) {
    for case in 0..CASES {
        let mut g = Gen::new(id, case);
        body(&mut g);
    }
}

/// Union is commutative, associative, idempotent, with empty identity —
/// the semilattice HyperMinHash needs for CNF clause evaluation.
#[test]
fn union_semilattice() {
    check(1, |g| {
        let params = g.params();
        let a = HyperMinHash::from_items(params, g.items());
        let b = HyperMinHash::from_items(params, g.items());
        let c = HyperMinHash::from_items(params, g.items());
        assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        assert_eq!(
            a.union(&b).unwrap().union(&c).unwrap(),
            a.union(&b.union(&c).unwrap()).unwrap()
        );
        assert_eq!(a.union(&a).unwrap(), a.clone());
        assert_eq!(a.union(&HyperMinHash::new(params)).unwrap(), a);
    });
}

/// The sketch is a pure set function: order and duplicates never matter.
#[test]
fn sketch_is_order_and_multiplicity_invariant() {
    check(2, |g| {
        let params = g.params();
        let mut xs = g.items();
        let forward = HyperMinHash::from_items(params, xs.clone());
        xs.reverse();
        let mut with_dups = xs.clone();
        with_dups.extend(xs.iter().copied());
        let backward_dups = HyperMinHash::from_items(params, with_dups);
        assert_eq!(forward, backward_dups);
    });
}

/// Union of sketches equals the sketch of the union of the item sets.
#[test]
fn union_homomorphism() {
    check(3, |g| {
        let params = g.params();
        let xs = g.items();
        let ys = g.items();
        let a = HyperMinHash::from_items(params, xs.clone());
        let b = HyperMinHash::from_items(params, ys.clone());
        let mut all = xs;
        all.extend(ys);
        let direct = HyperMinHash::from_items(params, all);
        assert_eq!(a.union(&b).unwrap(), direct);
    });
}

/// Jaccard of a sketch with itself is 1 (when non-empty) and always
/// within [0, 1].
#[test]
fn jaccard_range_and_identity() {
    check(4, |g| {
        let params = g.params();
        let xs = g.items();
        let a = HyperMinHash::from_items(params, xs.clone());
        let j = a.jaccard(&a.clone()).unwrap();
        assert!((0.0..=1.0).contains(&j.estimate));
        if !xs.is_empty() {
            assert_eq!(j.raw, 1.0);
        }
    });
}

/// Registers are exactly monotone under union: a union never loses a
/// register, and each register only moves up the (counter, minimum)
/// lexicographic order.
#[test]
fn union_registers_monotone() {
    check(5, |g| {
        let params = g.params();
        let a = HyperMinHash::from_items(params, g.items());
        let b = HyperMinHash::from_items(params, g.items());
        let u = a.union(&b).unwrap();
        for bucket in 0..params.num_buckets() {
            match (a.register(bucket), u.register(bucket)) {
                (Some((ca, ma)), Some((cu, mu))) => {
                    assert!(cu > ca || (cu == ca && mu <= ma));
                }
                (Some(_), None) => panic!("union lost a register"),
                _ => {}
            }
        }
    });
}

/// Serde round-trips are the identity.
#[test]
fn serde_identity() {
    check(6, |g| {
        let params = g.params();
        let a = HyperMinHash::from_items(params, g.items());
        let json = serde_json::to_string(&a).unwrap();
        let back: HyperMinHash = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    });
}

/// Digest bit-field extraction is consistent: take_bits of adjacent
/// fields concatenate to take_bits of the whole span.
#[test]
fn digest_bitfields_concatenate() {
    check(7, |g| {
        let d = Digest128::new(g.rng.gen(), g.rng.gen());
        let start = g.rng.gen_range(0u32..100);
        let a = g.rng.gen_range(1u32..20);
        let b = g.rng.gen_range(1u32..20);
        let whole = d.take_bits(start, a + b);
        let left = d.take_bits(start, a);
        let right = d.take_bits(start + a, b);
        assert_eq!(whole, (left << b) | right);
    });
}

/// BigUint arithmetic agrees with u128 where both apply.
#[test]
fn biguint_matches_u128() {
    check(8, |g| {
        let (x, y): (u64, u64) = (g.rng.gen(), g.rng.gen());
        let (bx, by) = (BigUint::from_u64(x), BigUint::from_u64(y));
        assert_eq!(bx.add(&by), BigUint::from_u128(u128::from(x) + u128::from(y)));
        assert_eq!(bx.mul(&by), BigUint::from_u128(u128::from(x) * u128::from(y)));
        let (big, small) = if x >= y { (x, y) } else { (y, x) };
        assert_eq!(
            BigUint::from_u64(big).sub(&BigUint::from_u64(small)),
            BigUint::from_u64(big - small)
        );
        assert_eq!(bx.shl(13).shr(13), bx);
    });
}

/// BigFloat add/mul agree with f64 on exactly-representable inputs.
#[test]
fn bigfloat_matches_f64() {
    check(9, |g| {
        // Quantize to dyadics so f64 arithmetic is exact.
        let a = (g.rng.gen_range(-1e6f64..1e6) * 1024.0).round() / 1024.0;
        let b = (g.rng.gen_range(-1e6f64..1e6) * 1024.0).round() / 1024.0;
        let (ba, bb) = (BigFloat::from_f64(a), BigFloat::from_f64(b));
        assert_eq!(ba.add(&bb).to_f64(), a + b);
        assert_eq!(ba.sub(&bb).to_f64(), a - b);
        assert_eq!(ba.mul(&bb).to_f64(), a * b);
    });
}

/// CNF parser round-trips through Display.
#[test]
fn cnf_parser_roundtrip() {
    check(10, |g| {
        let num_clauses = g.rng.gen_range(1usize..4);
        let clauses: Vec<Vec<String>> = (0..num_clauses)
            .map(|_| {
                let len = g.rng.gen_range(1usize..4);
                (0..len).map(|_| g.ident()).collect()
            })
            .collect();
        let query = hyperminhash::cnf::CnfQuery::new(clauses).unwrap();
        let reparsed = hyperminhash::cnf::parse(&query.to_string()).unwrap();
        assert_eq!(query, reparsed);
    });
}

/// reduce_r is exactly direct construction at the smaller r, on
/// arbitrary item sets (the Lemma-4 prefix-order argument).
#[test]
fn reduce_r_exactness() {
    check(11, |g| {
        let xs = g.items();
        let new_r = g.rng.gen_range(1u32..10);
        let wide = HmhParams::new(5, 4, 10).unwrap();
        let narrow = HmhParams::new(5, 4, new_r).unwrap();
        let sketch = HyperMinHash::from_items(wide, xs.clone());
        let direct = HyperMinHash::from_items(narrow, xs);
        assert_eq!(sketch.reduce_r(new_r).unwrap(), direct);
    });
}

/// k-partition MinHash shares the same set-function and union laws.
#[test]
fn kpartition_set_function() {
    check(12, |g| {
        let xs = g.items();
        let ys = g.items();
        let oracle = RandomOracle::default();
        let build = |items: &[u64]| {
            let mut s = KPartitionMinHash::new(6, 12, oracle);
            for &x in items {
                s.insert(&x);
            }
            s
        };
        let a = build(&xs);
        let b = build(&ys);
        let mut all = xs.clone();
        all.extend(ys.iter().copied());
        assert_eq!(a.union(&b).unwrap(), build(&all));
    });
}
