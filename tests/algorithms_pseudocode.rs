//! End-to-end checks that the implementation realizes Algorithms 1–6 of
//! the paper's appendix, at the behavioural level an auditor would check.

use hyperminhash::prelude::*;
use hyperminhash::sketch::collisions::{
    approx_expected_collisions, expected_collisions, expected_collisions_bigfloat,
    theorem1_bound, theorem2_variance_bound,
};
use hyperminhash::sketch::jaccard::{jaccard, CollisionCorrection};

/// Algorithm 1: the sketch is a deterministic function of the set — not of
/// insertion order, multiplicity, or chunking.
#[test]
fn algorithm1_sketch_is_set_function() {
    let params = HmhParams::figure6();
    let direct = HyperMinHash::from_items(params, 0..5_000u64);

    let mut shuffled = HyperMinHash::new(params);
    // A fixed permutation via multiplicative stepping (5000 is not prime;
    // use a coprime stride).
    let stride = 2_399u64; // gcd(2399, 5000) = 1
    let mut x = 17u64;
    for _ in 0..5_000 {
        shuffled.insert(&x);
        x = (x + stride) % 5_000;
    }
    // Every residue visited exactly once → same set.
    assert_eq!(direct, shuffled);

    let mut doubled = HyperMinHash::new(params);
    for i in 0..5_000u64 {
        doubled.insert(&i);
        doubled.insert(&i);
    }
    assert_eq!(direct, doubled);
}

/// Algorithm 2: union is exactly the sketch of the union, for any overlap
/// pattern, and is monotone (a union never has a worse register).
#[test]
fn algorithm2_union_exactness_and_monotonicity() {
    let params = HmhParams::new(7, 4, 6).unwrap();
    for (lo_a, hi_a, lo_b, hi_b) in [(0u64, 100, 200, 300), (0, 1000, 500, 1500), (0, 50, 0, 50)] {
        let a = HyperMinHash::from_items(params, lo_a..hi_a);
        let b = HyperMinHash::from_items(params, lo_b..hi_b);
        let u = a.union(&b).unwrap();
        let mut direct = HyperMinHash::new(params);
        direct.extend(lo_a..hi_a);
        direct.extend(lo_b..hi_b);
        assert_eq!(u, direct);
        // Monotone: every union bucket at least as "good" as each input.
        for bucket in 0..params.num_buckets() {
            for input in [&a, &b] {
                if let Some((c, m)) = input.register(bucket) {
                    let (uc, um) = u.register(bucket).expect("union occupied");
                    assert!(uc > c || (uc == c && um <= m), "bucket {bucket}");
                }
            }
        }
    }
}

/// Algorithm 3: cardinality accuracy from tens to hundreds of thousands by
/// insertion (the simulator covers the astronomical range in its own
/// tests).
#[test]
fn algorithm3_cardinality_across_scales() {
    let params = HmhParams::new(11, 6, 10).unwrap();
    let mut sketch = HyperMinHash::new(params);
    let mut next_check = 10u64;
    for i in 0..300_000u64 {
        sketch.insert(&i);
        if i + 1 == next_check {
            let est = sketch.cardinality();
            let n = (i + 1) as f64;
            let tol = if n < 1000.0 { 0.12 } else { 0.07 };
            assert!(
                (est / n - 1.0).abs() < tol,
                "at n={n}: estimate {est}"
            );
            next_check *= 10;
        }
    }
}

/// Algorithm 4: raw vs corrected estimates and the (C, N) bookkeeping.
#[test]
fn algorithm4_jaccard_bookkeeping() {
    let params = HmhParams::new(10, 6, 10).unwrap();
    let a = HyperMinHash::from_items(params, 0..20_000u64);
    let b = HyperMinHash::from_items(params, 10_000..30_000u64);
    let est = jaccard(&a, &b, CollisionCorrection::Approx).unwrap();
    assert!(est.occupied <= params.num_buckets());
    assert!(est.matching <= est.occupied);
    assert!(est.expected_collisions >= 0.0);
    assert!(est.estimate <= est.raw, "correction only subtracts");
    assert!((est.estimate - 1.0 / 3.0).abs() < 0.05, "estimate {}", est.estimate);
}

/// Algorithms 5/6 and the theorems: mutual consistency on a parameter grid.
#[test]
fn algorithms5_6_and_theorems_consistent() {
    for &(p, q, r) in &[(4u32, 4u32, 6u32), (8, 5, 8), (10, 6, 10)] {
        let params = HmhParams::new(p, q, r).unwrap();
        for &n in &[1e3, 1e6, 1e9] {
            let exact = expected_collisions(params, n, n);
            let bound = theorem1_bound(params, n);
            assert!(exact <= bound * 1.0001, "({p},{q},{r}) n={n}");
            assert!(theorem2_variance_bound(exact) >= exact);
            if let Ok(approx) = approx_expected_collisions(params, n, n) {
                assert!(
                    (approx / exact - 1.0).abs() < 0.4,
                    "({p},{q},{r}) n={n}: approx {approx} vs exact {exact}"
                );
            }
        }
    }
}

/// Algorithm 5's big-float evaluation agrees with the log-space one — the
/// cross-implementation check the paper's "BigInts" remark demands.
#[test]
fn algorithm5_bigfloat_crosscheck() {
    let params = HmhParams::new(6, 4, 5).unwrap();
    for &n in &[100u128, 10_000, 1 << 30] {
        let fast = expected_collisions(params, n as f64, n as f64);
        let reference = expected_collisions_bigfloat(params, n, n, 192);
        assert!(
            ((fast - reference) / reference).abs() < 1e-9,
            "n={n}: {fast} vs {reference}"
        );
    }
}
