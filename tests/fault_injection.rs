//! Deterministic fault-injection harness for the crash-safe sketch store.
//!
//! Three attack surfaces, all seed-replayable (a failing seed is a
//! reproducible unit test):
//!
//! 1. **Fault schedules** — ≥100 seeded multi-session workloads through
//!    [`FaultyIo`], which injects short writes, transient and permanent
//!    `io::Error`s from a SplitMix64 schedule. A plausible-state model
//!    tracks, per name, exactly which payloads the disk may legally
//!    hold; every reopen must land inside the model, acknowledged
//!    writes must survive bit-identical, and nothing may ever panic.
//! 2. **Single-bit-flip sweep** — every bit of every byte of the
//!    snapshot and WAL is flipped in turn; reopen must quarantine only
//!    the record containing the flipped bit and recover every other
//!    record bit-identical.
//! 3. **Kill-at-any-point** — the WAL (and snapshot) are truncated at
//!    every byte offset; reopen must never panic and must recover
//!    exactly the records fully contained in the surviving prefix.

use std::collections::HashMap;
use std::path::Path;

use hyperminhash::prelude::*;
use hyperminhash::sketch::format;
use hyperminhash::store::{
    BitRotPlan, FaultPlan, FaultyIo, MemBackend, SketchStore, StoreError, StoreOptions,
    SNAPSHOT_FILE, WAL_FILE,
};

const DIR: &str = "/db";
const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// A small encoded sketch whose content is a function of `tag` (so every
/// payload is distinct, valid, and reconstructible from the model).
fn payload(tag: u64) -> Vec<u8> {
    let params = HmhParams::new(2, 6, 4).unwrap();
    let items = (tag * 1000)..(tag * 1000 + 20 + tag % 30);
    format::encode(&HyperMinHash::from_items(params, items))
}

/// What the disk may legally hold for one name.
#[derive(Debug, Clone, Default)]
struct Plausible {
    /// The name may be absent after reopen.
    absent: bool,
    /// Payloads the name may hold after reopen.
    values: Vec<Vec<u8>>,
}

impl Plausible {
    fn exactly(value: Option<Vec<u8>>) -> Self {
        match value {
            Some(v) => Self { absent: false, values: vec![v] },
            None => Self { absent: true, values: Vec::new() },
        }
    }

    fn allows(&self, observed: Option<&[u8]>) -> bool {
        match observed {
            None => self.absent,
            Some(bytes) => self.values.iter().any(|v| v == bytes),
        }
    }
}

/// One seeded multi-session workload. Returns the number of faults the
/// schedule actually injected (so the suite can prove it exercised real
/// failures, not a quiet run).
fn run_schedule(seed: u64) -> usize {
    let mem = MemBackend::new();
    let mut driver = FaultPlan::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15), 0);
    let mut plausible: HashMap<&str, Plausible> =
        NAMES.iter().map(|&n| (n, Plausible { absent: true, values: Vec::new() })).collect();
    let mut injected = 0usize;

    for session in 0..4u64 {
        let io_plan = FaultPlan::new(seed ^ (session << 56) ^ 0x5eed, 48);
        let io = FaultyIo::new(mem.clone(), io_plan);
        // Opening never hits faulted ops (reads pass through), and a
        // corrupt disk must salvage, not error — so open always succeeds.
        let mut store = SketchStore::open_with(io, DIR, StoreOptions::no_sleep())
            .expect("open never fails under write-path faults");

        // The reopened state must sit inside the plausible-state model;
        // in particular a name whose model is a single acknowledged
        // value MUST come back bit-identical.
        for name in NAMES {
            let observed = store.get_encoded(name);
            assert!(
                plausible[name].allows(observed),
                "seed {seed} session {session}: {name} recovered {:?} outside model {:?}",
                observed.map(<[u8]>::len),
                plausible[name],
            );
        }
        // Disk state is concrete now — collapse the model to it, and
        // mirror the store's in-memory view for exact mid-session checks.
        let mut memory: HashMap<&str, Vec<u8>> = HashMap::new();
        for name in NAMES {
            let observed = store.get_encoded(name).map(<[u8]>::to_vec);
            if let Some(v) = &observed {
                memory.insert(name, v.clone());
            }
            *plausible.get_mut(name).unwrap() = Plausible::exactly(observed);
        }

        for op in 0..12u64 {
            let name = NAMES[driver.pick(NAMES.len() as u64) as usize];
            match driver.pick(10) {
                // put: 5/10
                0..=4 => {
                    let value = payload(seed * 1000 + session * 100 + op);
                    match store.put_encoded(name, &value) {
                        Ok(()) => {
                            memory.insert(name, value.clone());
                            *plausible.get_mut(name).unwrap() =
                                Plausible::exactly(Some(value));
                        }
                        Err(_) => {
                            // The record may or may not have landed.
                            plausible.get_mut(name).unwrap().values.push(value);
                        }
                    }
                }
                // remove: 2/10
                5 | 6 => match store.remove(name) {
                    Ok(true) => {
                        memory.remove(name);
                        *plausible.get_mut(name).unwrap() = Plausible::exactly(None);
                    }
                    Ok(false) => {}
                    Err(_) => {
                        // Tombstone may or may not have landed.
                        plausible.get_mut(name).unwrap().absent = true;
                    }
                },
                // get: 2/10 — in-process reads are exact, faults or not.
                7 | 8 => {
                    assert_eq!(
                        store.get_encoded(name),
                        memory.get(name).map(Vec::as_slice),
                        "seed {seed} session {session} op {op}: {name} diverged in memory"
                    );
                }
                // compact: 1/10 — success or failure, state is unchanged
                // (snapshot replacement is atomic; WAL replay is
                // idempotent), so the model does not move.
                _ => {
                    let _ = store.compact();
                }
            }
        }
        injected += store.backend().injected;
    }
    injected
}

#[test]
fn fault_schedules_recover_or_quarantine_only() {
    let mut injected = 0usize;
    for seed in 0..128u64 {
        injected += run_schedule(seed);
    }
    // ~18% of ~48 mutating calls per op stream across 128×4 sessions:
    // the sweep must have exercised real failures, not a quiet run.
    assert!(injected > 500, "only {injected} faults injected — schedule too quiet");
}

/// One seeded **bit-rot-at-rest** session: the disk rots *under a live
/// store* on a SplitMix64 schedule while the online scrub runs, then
/// the store reopens cold on whatever the rot left behind. Returns
/// `(bits rotted, spans found, spans repaired, names fenced at reopen)`
/// so the sweep can prove the schedule drew blood.
fn run_rot_schedule(seed: u64) -> (usize, u64, u64, u64) {
    let mem = MemBackend::new();
    // No operation faults: this schedule isolates at-rest rot, so every
    // put is acknowledged and the scrub is the only repair path.
    let io = FaultyIo::new(mem.clone(), FaultPlan::new(seed, 0))
        .with_bit_rot(BitRotPlan::new(seed ^ 0x0b17_0707, 64, 1), mem.clone());
    let mut store = SketchStore::open_with(io, DIR, StoreOptions::no_sleep()).unwrap();

    let mut truth: HashMap<&str, Vec<u8>> = HashMap::new();
    for (i, name) in NAMES.into_iter().enumerate() {
        let v = payload(9_000 + seed * 10 + i as u64);
        store.put_encoded(name, &v).expect("no op faults scheduled");
        truth.insert(name, v);
    }

    // Several online passes in deliberately small slices (exercises the
    // cursor and the compact-resets-cursor path).
    for _ in 0..4 {
        store.scrub_full(64).expect("scrub never fails on a fault-free backend");
        // The in-memory copies were validated at put: reads stay exact
        // no matter how the disk rots, and a live store never fences a
        // name it still holds a valid copy of.
        for name in NAMES {
            assert_eq!(store.get_encoded(name), Some(&truth[name][..]), "seed {seed}: {name}");
            assert!(!store.is_quarantined(name), "seed {seed}: fenced live name {name}");
        }
    }

    let stats = store.scrub_stats();
    // Every finding is either repaired from the surviving memory copy or
    // fenced. (Rot that rewrites a record's *name bytes* fences the
    // phantom name it now spells — the real name keeps its valid copy.)
    assert_eq!(
        stats.corrupt_found,
        stats.repaired + store.quarantined_count() as u64,
        "seed {seed}: scrub accounting must balance"
    );
    let rotted = store.backend().rotted_bits;
    drop(store);

    // Reopen without the rot schedule. Rot injected after the last
    // compact salvages into (a) the acknowledged payload, bit-identical,
    // (b) a typed fence, or (c) — when the rot destroyed the record
    // header beyond attribution — a salvage drop; never a torn payload
    // served as real.
    let reopened = SketchStore::open_with(mem, DIR, StoreOptions::no_sleep()).unwrap();
    let mut fenced = 0u64;
    for name in NAMES {
        match reopened.get_encoded(name) {
            Some(got) => {
                assert_eq!(got, &truth[name][..], "seed {seed}: {name} torn at reopen");
            }
            None if reopened.is_quarantined(name) => {
                fenced += 1;
                assert!(
                    matches!(reopened.get(name), Err(StoreError::CorruptQuarantined(_))),
                    "seed {seed}: fenced {name} must read as a typed error"
                );
            }
            None => {}
        }
    }
    (rotted, stats.corrupt_found, stats.repaired, fenced)
}

#[test]
fn bit_rot_sweep_scrub_repairs_live_and_fences_at_reopen() {
    let (mut rotted, mut found, mut repaired, mut fenced) = (0usize, 0u64, 0u64, 0u64);
    for seed in 0..96u64 {
        let (r, f, rep, q) = run_rot_schedule(seed);
        rotted += r;
        found += f;
        repaired += rep;
        fenced += q;
    }
    // The schedule must have drawn blood, the scrub must have seen it
    // and healed it, and at least some rot must have survived to the
    // cold reopen and been fenced — not a quiet run on any axis.
    assert!(rotted > 200, "only {rotted} bits rotted — schedule too quiet");
    assert!(found > 50, "scrub found only {found} spans across the sweep");
    assert!(repaired > 25, "scrub repaired only {repaired} spans across the sweep");
    assert!(fenced > 0, "no reopen ever fenced a record — rot never outlived a session");
}

/// Build a store image with three compacted records in the snapshot and
/// two newer records in the WAL, returning the backing memory plus the
/// true encoded payload per name.
fn build_reference_image() -> (MemBackend, HashMap<&'static str, Vec<u8>>) {
    let mem = MemBackend::new();
    let mut store =
        SketchStore::open_with(mem.clone(), DIR, StoreOptions::no_sleep()).unwrap();
    let mut truth = HashMap::new();
    for (i, name) in ["alpha", "beta", "gamma"].into_iter().enumerate() {
        let v = payload(500 + i as u64);
        store.put_encoded(name, &v).unwrap();
        truth.insert(name, v);
    }
    store.compact().unwrap();
    for (i, name) in ["delta", "epsilon"].into_iter().enumerate() {
        let v = payload(600 + i as u64);
        store.put_encoded(name, &v).unwrap();
        truth.insert(name, v);
    }
    (mem, truth)
}

/// Copy one file image into a fresh in-memory disk.
fn image_with(file: &str, bytes: &[u8], other: (&str, &[u8])) -> MemBackend {
    use hyperminhash::store::Backend;
    let mut mem = MemBackend::new();
    mem.write_new(&Path::new(DIR).join(file), bytes).unwrap();
    mem.write_new(&Path::new(DIR).join(other.0), other.1).unwrap();
    mem
}

#[test]
fn single_bit_flip_sweep_quarantines_only_hit_records() {
    let (mem, truth) = build_reference_image();
    let snapshot = mem.raw(&Path::new(DIR).join(SNAPSHOT_FILE)).unwrap();
    let wal = mem.raw(&Path::new(DIR).join(WAL_FILE)).unwrap();

    for (file, bytes, other) in [
        (SNAPSHOT_FILE, &snapshot, (WAL_FILE, wal.as_slice())),
        (WAL_FILE, &wal, (SNAPSHOT_FILE, snapshot.as_slice())),
    ] {
        // Record boundaries in this file, in order, with their names.
        let salvage = hyperminhash::store::log::salvage_scan(bytes);
        let mut bounds = Vec::new();
        let mut pos = 0usize;
        for record in &salvage.records {
            let len = hyperminhash::store::log::encode_record(
                &record.name,
                record.kind,
                &record.payload,
            )
            .len();
            bounds.push((pos, pos + len, record.name.clone()));
            pos += len;
        }
        assert_eq!(pos, bytes.len(), "reference image is dense records");

        for byte in 0..bytes.len() {
            for bit in 0..8u32 {
                let disk = image_with(file, bytes, other);
                assert!(disk.flip_bit(&Path::new(DIR).join(file), byte, bit));
                let store =
                    SketchStore::open_with(disk, DIR, StoreOptions::no_sleep()).unwrap();
                let hit = &bounds
                    .iter()
                    .find(|(a, b, _)| (*a..*b).contains(&byte))
                    .expect("byte inside a record")
                    .2;
                for (&name, value) in &truth {
                    match store.get_encoded(name) {
                        Some(got) => assert_eq!(
                            got,
                            &value[..],
                            "{file} byte {byte} bit {bit}: {name} must be bit-identical"
                        ),
                        None => assert_eq!(
                            name, hit,
                            "{file} byte {byte} bit {bit}: lost {name}, which the flip \
                             did not touch"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn kill_at_any_point_preserves_flushed_records() {
    let (mem, truth) = build_reference_image();
    let snapshot = mem.raw(&Path::new(DIR).join(SNAPSHOT_FILE)).unwrap();
    let wal = mem.raw(&Path::new(DIR).join(WAL_FILE)).unwrap();

    // Record layout of the WAL: [delta][epsilon].
    let delta_len = wal.len() - {
        let s = hyperminhash::store::log::salvage_scan(&wal);
        hyperminhash::store::log::encode_record(
            &s.records[1].name,
            s.records[1].kind,
            &s.records[1].payload,
        )
        .len()
    };

    // Cut the WAL at every byte offset: records wholly inside the kept
    // prefix must survive bit-identical; the snapshot is untouched so
    // alpha/beta/gamma must always survive.
    for cut in 0..=wal.len() {
        let disk = image_with(WAL_FILE, &wal[..cut], (SNAPSHOT_FILE, snapshot.as_slice()));
        let store = SketchStore::open_with(disk, DIR, StoreOptions::no_sleep()).unwrap();
        for name in ["alpha", "beta", "gamma"] {
            assert_eq!(store.get_encoded(name), Some(&truth[name][..]), "cut {cut}: {name}");
        }
        let expect_delta = cut >= delta_len;
        let expect_epsilon = cut >= wal.len();
        assert_eq!(
            store.get_encoded("delta"),
            expect_delta.then_some(&truth["delta"][..]),
            "cut {cut}"
        );
        assert_eq!(
            store.get_encoded("epsilon"),
            expect_epsilon.then_some(&truth["epsilon"][..]),
            "cut {cut}"
        );
    }

    // Same sweep over the snapshot (an at-rest torn snapshot cannot be
    // produced by our write path, but salvage must still handle one):
    // a prefix of k intact records recovers exactly those records.
    let bounds: Vec<usize> = {
        let s = hyperminhash::store::log::salvage_scan(&snapshot);
        let mut ends = Vec::new();
        let mut pos = 0;
        for r in &s.records {
            pos += hyperminhash::store::log::encode_record(&r.name, r.kind, &r.payload).len();
            ends.push(pos);
        }
        ends
    };
    for cut in 0..=snapshot.len() {
        let disk = image_with(SNAPSHOT_FILE, &snapshot[..cut], (WAL_FILE, wal.as_slice()));
        let store = SketchStore::open_with(disk, DIR, StoreOptions::no_sleep()).unwrap();
        for (i, name) in ["alpha", "beta", "gamma"].into_iter().enumerate() {
            let survives = cut >= bounds[i];
            assert_eq!(
                store.get_encoded(name),
                survives.then_some(&truth[name][..]),
                "snapshot cut {cut}: {name}"
            );
        }
        // WAL records are independent of snapshot damage.
        for name in ["delta", "epsilon"] {
            assert_eq!(store.get_encoded(name), Some(&truth[name][..]), "cut {cut}: {name}");
        }
    }
}
