//! The substitution gate: sketches drawn by the order-statistics simulator
//! must be statistically indistinguishable from sketches built by
//! insertion wherever both are feasible — that equivalence is what makes
//! the 10^19 experiments trustworthy (DESIGN.md §4).

use hyperminhash::prelude::*;
use hyperminhash::simulate::{simulate_hmh_pair, simulate_hmh_single, SimSpec};
use hyperminhash::workloads::pairs::{pair_with_overlap, OverlapSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Jaccard estimates from simulated pairs and inserted pairs must have
/// matching means at the same (n, J).
#[test]
fn jaccard_estimates_match_between_sim_and_insertion() {
    let params = HmhParams::new(9, 6, 10).unwrap();
    let n = 30_000u64;
    let truth = 1.0 / 3.0;
    let trials = 25u64;
    let mut rng = StdRng::seed_from_u64(1);

    let mut sim_mean = 0.0;
    let mut ins_mean = 0.0;
    for t in 0..trials {
        let spec = SimSpec::equal_sized_with_jaccard(n as f64, truth);
        let (a, b) = simulate_hmh_pair(params, spec, &mut rng);
        sim_mean += a.jaccard(&b).unwrap().raw;

        let ospec = OverlapSpec::equal_sized_with_jaccard(n, truth);
        let (items_a, items_b) = pair_with_overlap(ospec, 100 + t);
        let oracle = RandomOracle::with_seed(t);
        let mut ia = HyperMinHash::with_oracle(params, oracle);
        let mut ib = HyperMinHash::with_oracle(params, oracle);
        for &x in &items_a {
            ia.insert(&x);
        }
        for &x in &items_b {
            ib.insert(&x);
        }
        ins_mean += ia.jaccard(&ib).unwrap().raw;
    }
    sim_mean /= trials as f64;
    ins_mean /= trials as f64;
    // Each mean has σ ≈ sqrt(t(1−t)/512/25) ≈ 0.004; allow 5σ-ish.
    assert!(
        (sim_mean - ins_mean).abs() < 0.025,
        "simulated {sim_mean} vs inserted {ins_mean}"
    );
}

/// Cardinality estimates agree between the two construction paths.
#[test]
fn cardinality_estimates_match_between_sim_and_insertion() {
    let params = HmhParams::new(10, 6, 10).unwrap();
    let n = 60_000u64;
    let trials = 20u64;
    let mut rng = StdRng::seed_from_u64(2);
    let (mut sim_mean, mut ins_mean) = (0.0, 0.0);
    for t in 0..trials {
        sim_mean += simulate_hmh_single(params, n as f64, &mut rng).cardinality();
        let oracle = RandomOracle::with_seed(900 + t);
        let mut s = HyperMinHash::with_oracle(params, oracle);
        for i in 0..n {
            s.insert(&i);
        }
        ins_mean += s.cardinality();
    }
    sim_mean /= trials as f64;
    ins_mean /= trials as f64;
    assert!(
        ((sim_mean - ins_mean) / n as f64).abs() < 0.02,
        "simulated {sim_mean} vs inserted {ins_mean}"
    );
}

/// The simulator scales smoothly from insertion range to the headline
/// range with no calibration cliff.
#[test]
fn no_cliff_between_regimes() {
    let params = HmhParams::headline();
    let mut rng = StdRng::seed_from_u64(3);
    let mut previous_error = f64::NAN;
    for exp in [5i32, 8, 11, 14, 17, 19] {
        let n = 10f64.powi(exp);
        let mut err = 0.0;
        let trials = 8;
        for _ in 0..trials {
            let est = simulate_hmh_single(params, n, &mut rng).cardinality();
            err += (est / n - 1.0).abs();
        }
        err /= trials as f64;
        assert!(err < 0.03, "1e{exp}: error {err}");
        if !previous_error.is_nan() {
            assert!(
                err < previous_error * 6.0 + 0.01,
                "cliff between decades: {previous_error} → {err}"
            );
        }
        previous_error = err;
    }
}
