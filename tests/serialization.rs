//! Serde round-trips across the workspace: sketches survive JSON transit
//! and keep full functionality (the shared-randomness deployment story —
//! sketch on one machine, merge on another).

use hyperminhash::prelude::*;

fn round_trip<T: serde::Serialize + serde::de::DeserializeOwned>(v: &T) -> T {
    let json = serde_json::to_string(v).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn hyperminhash_roundtrip_preserves_behaviour() {
    let params = HmhParams::new(10, 6, 10).unwrap();
    let a = HyperMinHash::from_items(params, 0..10_000u64);
    let b = HyperMinHash::from_items(params, 5_000..15_000u64);
    let a2 = round_trip(&a);
    assert_eq!(a, a2);
    // Restored sketches merge and estimate identically.
    assert_eq!(a.union(&b).unwrap(), a2.union(&b).unwrap());
    assert_eq!(
        a.jaccard(&b).unwrap().estimate,
        a2.jaccard(&b).unwrap().estimate
    );
    assert_eq!(a.cardinality(), a2.cardinality());
}

#[test]
fn hyperloglog_roundtrip() {
    let mut h = hyperminhash::hll::HyperLogLog::new(10);
    for i in 0..5_000u64 {
        h.insert(&i);
    }
    let h2 = round_trip(&h);
    assert_eq!(h, h2);
    assert_eq!(h.cardinality(), h2.cardinality());
}

#[test]
fn minhash_variants_roundtrip() {
    let oracle = RandomOracle::with_seed(9);
    let mut kmv = BottomK::new(128, oracle);
    let mut kh = KHashMinHash::new(64, oracle);
    let mut kp = KPartitionMinHash::new(7, 12, oracle);
    for i in 0..2_000u64 {
        kmv.insert(&i);
        kh.insert(&i);
        kp.insert(&i);
    }
    assert_eq!(kmv, round_trip(&kmv));
    assert_eq!(kh, round_trip(&kh));
    assert_eq!(kp, round_trip(&kp));

    let mh_for_fp = {
        let mut m = KHashMinHash::new(64, oracle);
        for i in 0..500u64 {
            m.insert(&i);
        }
        m
    };
    let fp = BBitMinHash::from_minhash(&mh_for_fp, 2);
    assert_eq!(fp, round_trip(&fp));
}

#[test]
fn params_and_oracle_roundtrip() {
    let p = HmhParams::headline();
    assert_eq!(p, round_trip(&p));
    let o = RandomOracle::new(HashAlgorithm::Sha1, 77);
    assert_eq!(o, round_trip(&o));
}

#[test]
fn cross_machine_merge_story() {
    // "Machine 1" sketches January, serializes; "machine 2" sketches
    // February, deserializes January's sketch, merges, queries.
    let params = HmhParams::new(12, 6, 10).unwrap();
    let january = HyperMinHash::from_items(params, 0..40_000u64);
    let wire = serde_json::to_vec(&january).unwrap();

    let february = HyperMinHash::from_items(params, 20_000..60_000u64);
    let restored: HyperMinHash = serde_json::from_slice(&wire).unwrap();
    let both = restored.union(&february).unwrap();
    let est = both.cardinality();
    assert!((est / 60_000.0 - 1.0).abs() < 0.05, "estimate {est}");
    let j = restored.jaccard(&february).unwrap().estimate;
    assert!((j - 1.0 / 3.0).abs() < 0.05, "jaccard {j}");
}

#[test]
fn tampered_payloads_fail_loudly() {
    // Structurally invalid JSON must error, not panic.
    let bad: Result<HyperMinHash, _> = serde_json::from_str("{\"params\": 12}");
    assert!(bad.is_err());
    let bad: Result<HmhParams, _> = serde_json::from_str("\"not-params\"");
    assert!(bad.is_err());
}
