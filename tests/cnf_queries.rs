//! CNF Boolean queries against exact ground truth on both motivating
//! workloads (survey and IP traffic) — the paper's end-to-end use case.

use hyperminhash::cnf::{eval, parse, SketchCatalog};
use hyperminhash::prelude::*;
use hyperminhash::workloads::ipstream::{self, IpStreamConfig};
use hyperminhash::workloads::survey::Survey;
use std::collections::HashSet;

fn exact_cnf(groups: &[(&str, &[u64])], text: &str) -> usize {
    let query = parse(text).expect("parses");
    let lookup = |name: &str| -> HashSet<u64> {
        groups
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ids)| ids.iter().copied().collect())
            .unwrap_or_default()
    };
    let mut acc: Option<HashSet<u64>> = None;
    for clause in query.clauses() {
        let mut union = HashSet::new();
        for var in clause {
            union.extend(lookup(var));
        }
        acc = Some(match acc {
            None => union,
            Some(prev) => prev.intersection(&union).copied().collect(),
        });
    }
    acc.map(|s| s.len()).unwrap_or(0)
}

#[test]
fn survey_queries_match_exact_within_tolerance() {
    let survey = Survey::generate(150_000, 3);
    let mut cat = SketchCatalog::new(HmhParams::new(12, 6, 10).unwrap());
    for (key, ids) in &survey.groups {
        cat.insert_all(key, ids.iter().copied());
    }
    let groups: Vec<(&str, &[u64])> =
        survey.groups.iter().map(|(k, v)| (k.as_str(), v.as_slice())).collect();

    for text in [
        "party:independent & view:favorable",
        "(party:democrat | party:republican) & view:neutral",
        "(view:favorable | view:neutral) & (age:18-29 | age:30-44)",
    ] {
        let answer = eval::query(&cat, text).expect("evaluates");
        let truth = exact_cnf(&groups, text) as f64;
        assert!(
            (answer.count / truth - 1.0).abs() < 0.2,
            "{text}: estimate {} vs truth {truth}",
            answer.count
        );
    }
}

#[test]
fn three_clause_queries_stay_bounded_by_result_error() {
    // a ∩ b ∩ c with a small result relative to the universe: the error
    // must scale with the result, not the union (the §1.3 contrast).
    let survey = Survey::generate(200_000, 5);
    let mut cat = SketchCatalog::new(HmhParams::new(13, 6, 10).unwrap());
    for (key, ids) in &survey.groups {
        cat.insert_all(key, ids.iter().copied());
    }
    let groups: Vec<(&str, &[u64])> =
        survey.groups.iter().map(|(k, v)| (k.as_str(), v.as_slice())).collect();
    let text = "party:independent & view:favorable & age:65+";
    let truth = exact_cnf(&groups, text) as f64; // ≈ 0.2·0.3·0.19·200k ≈ 2.3k
    let answer = eval::query(&cat, text).expect("evaluates");
    assert!(truth > 1_000.0, "sanity: {truth}");
    assert!(
        (answer.count / truth - 1.0).abs() < 0.35,
        "estimate {} vs truth {truth}",
        answer.count
    );
}

#[test]
fn ip_workload_day_over_day() {
    let cfg = IpStreamConfig {
        pool_size: 20_000,
        packets_per_day: 150_000,
        carryover: 0.5,
        zipf_s: 0.9,
        seed: 12,
    };
    let days = ipstream::generate(cfg, 3);
    let mut cat = SketchCatalog::new(HmhParams::new(12, 6, 10).unwrap());
    for (d, day) in days.iter().enumerate() {
        cat.insert_all(format!("day{d}").as_str(), day.packets.iter().copied());
    }
    // Exact truth over *observed* IPs (Zipf sampling misses some pool
    // members).
    let observed: Vec<HashSet<u64>> =
        days.iter().map(|d| d.packets.iter().copied().collect()).collect();

    let ans = eval::query(&cat, "day0 & day1").expect("evaluates");
    let truth = observed[0].intersection(&observed[1]).count() as f64;
    assert!(
        (ans.count / truth - 1.0).abs() < 0.15,
        "estimate {} vs truth {truth}",
        ans.count
    );

    // (day0 ∪ day1) ∩ day2.
    let ans = eval::query(&cat, "(day0 | day1) & day2").expect("evaluates");
    let union01: HashSet<u64> = observed[0].union(&observed[1]).copied().collect();
    let truth = union01.intersection(&observed[2]).count() as f64;
    assert!(
        (ans.count / truth - 1.0).abs() < 0.15,
        "estimate {} vs truth {truth}",
        ans.count
    );
}

#[test]
fn parser_errors_surface_cleanly() {
    let cat = SketchCatalog::new(HmhParams::figure6());
    assert!(eval::query(&cat, "a | b").is_err(), "top-level OR is not CNF");
    assert!(eval::query(&cat, "missing & sets").is_err());
}
