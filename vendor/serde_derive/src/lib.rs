//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde`'s `Value` data model, using only the built-in
//! `proc_macro` API (no `syn`/`quote` — the build environment has no
//! crates.io access). Supported shapes, which cover every derived type in
//! this workspace:
//!
//! - structs with named fields (externally a map, like upstream serde)
//! - newtype structs (transparent, like upstream)
//! - tuple structs with 2+ fields (a sequence)
//! - unit structs (`null`)
//! - enums with unit variants (a string) and tuple variants
//!   (`{"Variant": payload}` / `{"Variant": [fields...]}`), i.e.
//!   upstream's externally-tagged default
//!
//! Generics, struct variants, and `#[serde(...)]` attributes are not
//! supported and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<(String, usize)> },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error tokens")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = ident_at(&tokens, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&tokens, i).ok_or("expected type name")?;
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => parse_struct(&tokens, i, name),
        "enum" => parse_enum(&tokens, i, name),
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn parse_struct(tokens: &[TokenTree], i: usize, name: String) -> Result<Item, String> {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            Ok(Item::NamedStruct { name, fields })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_top_level_fields(g.stream());
            Ok(Item::TupleStruct { name, arity })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
        _ => Err(format!("unrecognized struct body for `{name}`")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = ident_at(&tokens, i)
            .ok_or_else(|| format!("expected field name, got `{}`", tokens[i]))?;
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
    }
    Ok(fields)
}

fn parse_enum(tokens: &[TokenTree], i: usize, name: String) -> Result<Item, String> {
    let Some(TokenTree::Group(g)) = tokens.get(i) else {
        return Err(format!("expected enum body for `{name}`"));
    };
    let body: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(&body, &mut i);
        if i >= body.len() {
            break;
        }
        let vname = ident_at(&body, i)
            .ok_or_else(|| format!("expected variant name, got `{}`", body[i]))?;
        i += 1;
        let arity = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_top_level_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "vendored serde_derive does not support struct variant `{vname}`"
                ));
            }
            _ => 0,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        while i < body.len() && !matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1; // the comma itself
        variants.push((vname, arity));
    }
    Ok(Item::Enum { name, variants })
}

/// Skip `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Advance past one type, stopping after the comma that ends the field
/// (or at end of stream). Tracks `<`/`>` nesting so commas inside generic
/// arguments don't terminate early; parenthesized types are single groups
/// and need no special casing.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Number of comma-separated fields at the top level of a tuple body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if idx + 1 == tokens.len() {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "Self::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))"
                    ),
                    1 => format!(
                        "Self::{v}(f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Serialize::to_value(f0))])"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "Self::{v}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({v:?}), \
                                 ::serde::Value::Seq(::std::vec![{}]))])",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(m, {f:?})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let m = v.as_map().ok_or_else(|| ::serde::Error(\
                             ::std::format!(\"expected map for struct {name}, got {{}}\", v.kind())))?;\n\
                         ::std::result::Result::Ok(Self {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let seq = v.as_seq().ok_or_else(|| ::serde::Error(\
                             ::std::format!(\"expected sequence for {name}, got {{}}\", v.kind())))?;\n\
                         if seq.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::Error(\
                                 ::std::format!(\"expected {arity} fields for {name}, got {{}}\", seq.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok(Self({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     match v {{\n\
                         ::serde::Value::Null => ::std::result::Result::Ok(Self),\n\
                         other => ::std::result::Result::Err(::serde::Error(\
                             ::std::format!(\"expected null for {name}, got {{}}\", other.kind()))),\n\
                     }}\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok(Self::{v})"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, a)| *a > 0)
                .map(|(v, arity)| match arity {
                    1 => format!(
                        "{v:?} => ::std::result::Result::Ok(\
                             Self::{v}(::serde::Deserialize::from_value(payload)?))"
                    ),
                    n => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                            .collect();
                        format!(
                            "{v:?} => {{\n\
                                 let seq = payload.as_seq().ok_or_else(|| ::serde::Error(\
                                     ::std::format!(\"expected sequence payload for {name}::{v}\")))?;\n\
                                 if seq.len() != {n} {{\n\
                                     return ::std::result::Result::Err(::serde::Error(\
                                         ::std::format!(\"expected {n} fields for {name}::{v}, got {{}}\", seq.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok(Self::{v}({}))\n\
                             }}",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::Error(\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (k, payload) = &m[0];\n\
                                 let _ = payload;\n\
                                 match k.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::Error(\
                                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error(\
                                 ::std::format!(\"expected variant of {name}, got {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(",\n"))
                }
            )
        }
    }
}
