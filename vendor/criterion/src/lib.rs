//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal bench runner exposing the criterion surface its benches use:
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], [`black_box`],
//! [`BenchmarkId`], [`Throughput`], benchmark groups, and `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery it times a fixed batch of
//! iterations per benchmark and prints mean wall-clock time per iteration.
//! Under `cargo test` (bench targets run with `--test`) it executes each
//! closure once so benches stay compile- and run-checked without costing
//! CI time.

use std::time::Instant;

pub use std::hint::black_box;

/// How many timed iterations a full bench run performs per benchmark.
const DEFAULT_ITERS: u64 = 30;

/// Top-level bench context.
pub struct Criterion {
    sample_size: u64,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { sample_size: DEFAULT_ITERS, test_mode }
    }
}

impl Criterion {
    /// Configure the number of timed iterations (criterion-compatible).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Criterion-compatible no-op: parse CLI configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let iters = if self.test_mode { 1 } else { self.sample_size };
        run_bench(name, iters, f);
        self
    }
}

/// A group of related benchmarks (criterion-compatible subset).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Set throughput metadata (accepted; not used in reporting).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Override this group's iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1) as u64);
        self
    }

    fn iters(&self) -> u64 {
        if self.criterion.test_mode {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        }
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_bench(&label, self.iters(), f);
        self
    }

    /// Run a parameterized benchmark within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, self.iters(), |b| f(b, input));
        self
    }

    /// Finish the group (criterion-compatible no-op).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, iters: u64, mut f: F) {
    let mut bencher = Bencher { iters, elapsed_ns: 0, timed_iters: 0 };
    f(&mut bencher);
    if bencher.timed_iters > 0 {
        let per_iter = bencher.elapsed_ns as f64 / bencher.timed_iters as f64;
        println!("bench: {label:<50} {:>12.1} ns/iter", per_iter);
    }
}

/// Timing handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
    timed_iters: u64,
}

impl Bencher {
    /// Time `routine`, running it a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.timed_iters += self.iters;
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{function_name}/{parameter}") }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Throughput metadata (accepted for API compatibility).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Define a group of benchmark functions (criterion-compatible forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0u32;
        c.bench_function("probe", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u32, |b, x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }
}
