//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde`'s [`Value`] data model to JSON text and
//! parses JSON text back, exposing the upstream entry points this
//! workspace uses: [`to_string`], [`to_vec`], [`from_str`], [`from_slice`].
//!
//! Numbers: integers round-trip exactly (up to 128 bits); floats print via
//! Rust's shortest-round-trip formatting. Strings support the full JSON
//! escape repertoire including `\uXXXX` with surrogate pairs. The parser
//! enforces a nesting-depth limit so hostile inputs cannot overflow the
//! stack.

pub use error::Error;
use serde::{Deserialize, Serialize, Value};

mod error {
    /// JSON serialization/deserialization failure.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        pub(crate) fn new(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    impl std::error::Error for Error {}
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Serialize `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------- printer

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U128(x) => out.push_str(&x.to_string()),
        Value::I128(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // Keep a decimal point so the value parses back as a float.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value(0)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    if self.peek() != Some(b'"') {
                        return Err(self.err("expected string key in object"));
                    }
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
            if let Ok(x) = text.parse::<u128>() {
                return Ok(Value::U128(x));
            }
            if let Ok(x) = text.parse::<i128>() {
                return Ok(Value::I128(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
        assert_eq!(
            from_str::<u128>(&to_string(&(1u128 << 100)).unwrap()).unwrap(),
            1u128 << 100
        );
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1F600}\u{7}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        // Explicit surrogate pair.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "\u{1F600}");
    }

    #[test]
    fn containers() {
        let v = vec![(1u32, 2u64), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(u32, u64)>>(&json).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("4 4").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<Vec<u64>>("[1,,2]").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<u64>("nul").is_err());
        assert!(from_str::<f64>("--3").is_err());
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(from_str::<Vec<u64>>(&deep).is_err(), "depth limit");
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 , 3 ] \n").unwrap(),
            vec![1, 2, 3]
        );
    }
}
