//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal serde-compatible surface: the [`Serialize`] / [`Deserialize`]
//! traits, a self-describing [`Value`] data model, and (behind the
//! `derive` feature) `#[derive(serde::Serialize, serde::Deserialize)]`
//! macros covering the shapes this workspace uses — named-field structs,
//! tuple structs, and enums with unit or tuple variants, externally
//! tagged exactly like upstream serde's default representation.
//!
//! Unlike upstream serde there is no `Serializer`/`Deserializer` visitor
//! machinery: serialization goes through an owned [`Value`] tree that
//! `serde_json` prints and parses. That is entirely sufficient for the
//! JSON round-trips this workspace performs, at the cost of one
//! intermediate allocation per value — irrelevant for tests and the CLI.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type maps into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (anything that fits in `u64`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Unsigned integer wider than 64 bits.
    U128(u128),
    /// Negative integer wider than 64 bits.
    I128(i128),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (array / tuple / Vec).
    Seq(Vec<Value>),
    /// Map with string keys, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::U128(_) | Value::I128(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Construct from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can map themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Upstream-compatible module path for the owned-deserialization bound.
pub mod de {
    /// `T: DeserializeOwned` — in this stand-in, identical to
    /// [`Deserialize`](crate::Deserialize).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Upstream-compatible module path for serialization traits.
pub mod ser {
    pub use crate::Serialize;
}

/// Look up a required struct field in a decoded map.
pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => Err(Error(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match *v {
                    Value::U64(x) => <$t>::try_from(x).ok(),
                    Value::I64(x) => <$t>::try_from(x).ok(),
                    Value::U128(x) => <$t>::try_from(x).ok(),
                    Value::I128(x) => <$t>::try_from(x).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    Error(format!("expected {}, got {}", stringify!($t), v.kind()))
                })
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(x) => Value::U64(x),
            Err(_) => Value::U128(*self),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::U64(x) => Ok(u128::from(x)),
            Value::U128(x) => Ok(x),
            Value::I64(x) => u128::try_from(x)
                .map_err(|_| Error("negative integer for u128".into())),
            Value::I128(x) => u128::try_from(x)
                .map_err(|_| Error("negative integer for u128".into())),
            _ => Err(Error(format!("expected u128, got {}", v.kind()))),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(x) if x >= 0 => Value::U64(x as u64),
            Ok(x) => Value::I64(x),
            Err(_) => Value::I128(*self),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::U64(x) => Ok(i128::from(x)),
            Value::I64(x) => Ok(i128::from(x)),
            Value::U128(x) => i128::try_from(x)
                .map_err(|_| Error("integer overflows i128".into())),
            Value::I128(x) => Ok(x),
            _ => Err(Error(format!("expected i128, got {}", v.kind()))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error(format!("expected bool, got {}", v.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            Value::U128(x) => Ok(x as f64),
            Value::I128(x) => Ok(x as f64),
            _ => Err(Error(format!("expected number, got {}", v.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error(format!("expected string, got {}", v.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error(format!("expected single-char string, got {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error(format!("expected sequence, got {}", v.kind())))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error(format!("expected sequence, got {}", v.kind())))?;
        if seq.len() != N {
            return Err(Error(format!("expected {N}-element array, got {}", seq.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($($len:literal => ($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| Error(format!("expected sequence, got {}", v.kind())))?;
                if seq.len() != $len {
                    return Err(Error(format!(
                        "expected {}-tuple, got {} elements", $len, seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    1 => (A: 0),
    2 => (A: 0, B: 1),
    3 => (A: 0, B: 1, C: 2),
    4 => (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(u128::from_value(&(1u128 << 100).to_value()).unwrap(), 1u128 << 100);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        let v = vec![(1u32, 2u64), (3, 4)];
        assert_eq!(Vec::<(u32, u64)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err(), "range check");
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u64>::from_value(&Value::U64(1)).is_err());
    }
}
