//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: the [`Rng`]
//! trait (`gen`, `gen_range`, `gen_bool`, `fill_bytes`), [`SeedableRng`],
//! and [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256++
//! seeded via SplitMix64 — statistically strong for every simulation in
//! this repository, though the byte streams differ from upstream `rand`'s
//! ChaCha12-based `StdRng` (no test in this workspace depends on exact
//! upstream streams; they assert statistical tolerances).

/// Trait for seedable generators (upstream-compatible subset).
pub trait SeedableRng: Sized {
    /// Seed type (fixed at 32 bytes like upstream `StdRng`).
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct by expanding a `u64` with SplitMix64 (matches upstream
    /// semantics: deterministic, well-distributed).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling from a uniform distribution over a type's full value range
/// (stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from the type's standard distribution
    /// (`f64` in `[0, 1)`, integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSampled,
        R: IntoSampleRange<T>,
    {
        let (lo, hi_inclusive) = range.into_bounds();
        T::sample_range(self, lo, hi_inclusive)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from a `[lo, hi]` inclusive range.
pub trait UniformSampled: Sized + Copy {
    /// Sample uniformly from `[lo, hi]` (inclusive bounds).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Conversion of range syntax into inclusive bounds.
pub trait IntoSampleRange<T> {
    /// The `(low, high_inclusive)` bounds of the range.
    fn into_bounds(self) -> (T, T);
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "gen_range: low > high");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-range request.
                    return rng.next_u64() as $t;
                }
                // Rejection-free Lemire-style multiply-shift reduction.
                let x = rng.next_u64() as u128;
                let reduced = ((x * (span as u128)) >> 64) as $wide;
                lo.wrapping_add(reduced as $t)
            }
        }
        impl IntoSampleRange<$t> for core::ops::Range<$t> {
            fn into_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "gen_range: empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoSampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn into_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 top bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u: f64 = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl IntoSampleRange<f64> for core::ops::Range<f64> {
    fn into_bounds(self) -> (f64, f64) {
        (self.start, self.end)
    }
}

impl IntoSampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn into_bounds(self) -> (f64, f64) {
        (*self.start(), *self.end())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded through SplitMix64. Not the upstream ChaCha12
    /// `StdRng`, but deterministic and statistically strong.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro must not start at all-zero
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix(&mut sm),
                splitmix(&mut sm),
                splitmix(&mut sm),
                splitmix(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude`-alike convenience re-exports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }
}
