//! # hyperminhash
//!
//! A full reproduction of *HyperMinHash: MinHash in LogLog space*
//! (Yu & Weber, ICDE 2023): streaming probabilistic sketches for Jaccard
//! index, union cardinality and intersection cardinality in
//! `O(ε⁻²(log log n + log 1/(tε)))` space, together with every substrate
//! and baseline the paper relies on.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sketch`] ([`hmh_core`]) — the HyperMinHash sketch itself.
//! * [`hll`] ([`hmh_hll`]) — HyperLogLog with FFGM07, Ertl-improved, MLE and
//!   joint-MLE estimators (the §1.3 baselines and the Algorithm 3 head).
//! * [`minhash`] ([`hmh_minhash`]) — classic MinHash variants and b-bit
//!   fingerprints (the §1.1/§1.3 baselines).
//! * [`hashing`] ([`hmh_hash`]) — the seeded random-oracle substrate.
//! * [`math`] ([`hmh_math`]) — numerics: log-space probability kernels,
//!   extended-precision arithmetic, statistics, distributions.
//! * [`simulate`] ([`hmh_simulate`]) — order-statistics sketch simulation
//!   for cardinalities far beyond what can be inserted (the 10^19 claims).
//! * [`cnf`] ([`hmh_cnf`]) — Boolean CNF queries over sketch catalogs.
//! * [`workloads`] ([`hmh_workloads`]) — generators and exact ground truth.
//! * [`store`] ([`hmh_store`]) — crash-safe sketch persistence with
//!   salvage recovery and deterministic fault injection.
//!
//! ## Quickstart
//!
//! ```
//! use hyperminhash::prelude::*;
//!
//! let params = HmhParams::new(12, 6, 10).unwrap();
//! let mut a = HyperMinHash::new(params);
//! let mut b = HyperMinHash::new(params);
//! for i in 0..30_000u64 {
//!     a.insert(&i);
//! }
//! for i in 15_000..45_000u64 {
//!     b.insert(&i);
//! }
//! let j = a.jaccard(&b).unwrap().estimate;
//! assert!((j - 1.0 / 3.0).abs() < 0.05, "jaccard ≈ 1/3, got {j}");
//!
//! let u = a.union(&b).unwrap();
//! let card = u.cardinality();
//! assert!((card / 45_000.0 - 1.0).abs() < 0.05, "union ≈ 45k, got {card}");
//! ```

#![deny(missing_docs)]

pub use hmh_cnf as cnf;
pub use hmh_core as sketch;
pub use hmh_hash as hashing;
pub use hmh_hll as hll;
pub use hmh_ingest as ingest;
pub use hmh_math as math;
pub use hmh_minhash as minhash;
pub use hmh_simulate as simulate;
pub use hmh_store as store;
pub use hmh_workloads as workloads;

/// Convenience re-exports of the most common types.
pub mod prelude {
    pub use hmh_core::{AdaptiveHyperMinHash, HmhParams, HyperMinHash, JaccardEstimate};
    pub use hmh_hash::{HashAlgorithm, RandomOracle};
    pub use hmh_hll::HyperLogLog;
    pub use hmh_minhash::{BBitMinHash, BottomK, KHashMinHash, KPartitionMinHash};
}
