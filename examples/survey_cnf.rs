//! The paper's survey motivation: "how many participants in a political
//! survey are independent and have a favorable view of the federal
//! government?" — answered as CNF queries over a sketch catalog.
//!
//! ```sh
//! cargo run --release --example survey_cnf
//! ```

use hyperminhash::cnf::{eval, SketchCatalog};
use hyperminhash::prelude::*;
use hyperminhash::workloads::survey::Survey;

fn main() {
    let population = 500_000;
    let survey = Survey::generate(population, 7);
    let params = HmhParams::new(13, 6, 10).expect("valid parameters");

    // One sketch per attribute value — 10 sketches × 16 KiB.
    let mut catalog = SketchCatalog::new(params);
    for (key, ids) in &survey.groups {
        catalog.insert_all(key, ids.iter().copied());
    }
    println!(
        "catalog: {} sketches, {} KiB total, population {population}\n",
        catalog.len(),
        catalog.byte_size() / 1024
    );

    let queries = [
        "party:independent & view:favorable",
        "(party:independent | party:republican) & view:unfavorable",
        "(view:favorable | view:neutral) & age:18-29 & party:democrat",
        "(age:45-64 | age:65+) & (party:democrat | party:independent)",
    ];
    for text in queries {
        let answer = eval::query(&catalog, text).expect("query evaluates");
        let truth = exact_answer(&survey, text);
        let err = if truth > 0 {
            format!("{:+.1}%", (answer.count / truth as f64 - 1.0) * 100.0)
        } else {
            "n/a".to_string()
        };
        println!("{text}");
        println!("  estimate {:>9.0}   exact {truth:>9}   error {err}\n", answer.count);
    }
}

/// Exact evaluation of the same CNF query against the raw survey data.
fn exact_answer(survey: &Survey, text: &str) -> usize {
    let query = hyperminhash::cnf::parse(text).expect("parses");
    let mut result: Option<std::collections::HashSet<u64>> = None;
    for clause in query.clauses() {
        let mut clause_set = std::collections::HashSet::new();
        for var in clause {
            clause_set.extend(survey.group(var).iter().copied());
        }
        result = Some(match result {
            None => clause_set,
            Some(acc) => acc.intersection(&clause_set).copied().collect(),
        });
    }
    result.map(|s| s.len()).unwrap_or(0)
}
