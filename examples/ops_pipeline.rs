//! Operational pipeline: the production features around the paper's
//! algorithms — sparse sketches for small sets, the compact binary wire
//! format for shipping, and lossless precision downgrades for
//! mixed-parameter fleets.
//!
//! ```sh
//! cargo run --release --example ops_pipeline
//! ```

use hyperminhash::prelude::*;
use hyperminhash::sketch::format;

fn main() {
    // 1. Edge nodes keep per-tenant sketches. Most tenants are tiny, so
    //    the adaptive representation starts sparse.
    let params = HmhParams::headline(); // dense would be 64 KiB each
    let mut small_tenant = AdaptiveHyperMinHash::new(params);
    for i in 0..200u64 {
        small_tenant.insert(&i);
    }
    println!(
        "small tenant: {} items → {} bytes (dense would be {} bytes), sparse = {}",
        200,
        small_tenant.byte_size(),
        params.byte_size(),
        small_tenant.is_sparse()
    );

    let mut big_tenant = AdaptiveHyperMinHash::new(params);
    for i in 0..200_000u64 {
        big_tenant.insert(&i);
    }
    println!(
        "big tenant:   {} items → {} bytes, sparse = {} (auto-promoted)",
        200_000,
        big_tenant.byte_size(),
        big_tenant.is_sparse()
    );

    // 2. Ship the dense sketch over the wire with framing + checksum.
    let dense = big_tenant.to_dense();
    let wire = format::encode(&dense);
    println!(
        "\nwire format: {} bytes ({} header/checksum overhead)",
        wire.len(),
        wire.len() - params.byte_size()
    );
    let restored = format::decode(&wire).expect("intact payload");
    assert_eq!(restored, dense);

    // Corruption is detected, not silently accepted.
    let mut tampered = wire.clone();
    tampered[100] ^= 0x40;
    println!("tampered payload → {:?}", format::decode(&tampered).unwrap_err());

    // 3. A legacy fleet runs r = 6; downgrade losslessly and merge.
    let legacy_params = HmhParams::new(15, 6, 6).expect("valid parameters");
    let mut legacy = HyperMinHash::new(legacy_params);
    for i in 150_000..350_000u64 {
        legacy.insert(&i);
    }
    let downgraded = restored.reduce_r(6).expect("r only shrinks");
    let merged = downgraded.union(&legacy).expect("same parameters now");
    println!(
        "\nmerged across precisions: estimate {:.0} (truth 350000)",
        merged.cardinality()
    );
}
