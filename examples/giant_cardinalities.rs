//! The abstract's headline: 64 KiB sketches estimating Jaccard indices of
//! 0.01 at cardinalities of 10^19.
//!
//! No machine can insert 10^19 items, so this example uses the
//! order-statistics simulator (`hmh-simulate`) that draws sketch registers
//! directly from their exact distribution — see DESIGN.md §4 for why that
//! is a faithful substitution. The resulting sketches are ordinary
//! `HyperMinHash` values: union, Jaccard and cardinality all work.
//!
//! ```sh
//! cargo run --release --example giant_cardinalities
//! ```

use hyperminhash::prelude::*;
use hyperminhash::simulate::{simulate_hmh_pair, SimSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let params = HmhParams::headline(); // p=15, q=6, r=10: 64 KiB
    println!(
        "parameters {params}: {} KiB per sketch, counters cover ~2^{} cardinalities\n",
        params.byte_size() / 1024,
        params.cap()
    );

    let mut rng = StdRng::seed_from_u64(42);
    let truth = 0.01;

    println!("{:>8} {:>12} {:>14} {:>12}", "n", "jaccard est", "cardinality est", "J rel err");
    for exp in [10i32, 13, 16, 19] {
        let n = 10f64.powi(exp);
        let spec = SimSpec::equal_sized_with_jaccard(n, truth);
        let (a, b) = simulate_hmh_pair(params, spec, &mut rng);

        let j = a.jaccard(&b).expect("same parameters");
        let card = a.cardinality();
        println!(
            "{:>8} {:>12.5} {:>14.3e} {:>11.1}%",
            format!("1e{exp}"),
            j.estimate,
            card,
            (j.estimate / truth - 1.0).abs() * 100.0
        );
    }

    println!(
        "\n(the paper, §5: \"allow for estimating Jaccard indices of 0.01 for set\n\
         cardinalities on the order of 10^19 with accuracy around 5%\")"
    );
}
