//! Quickstart: build two sketches, estimate Jaccard / union / intersection.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hyperminhash::prelude::*;

fn main() {
    // p=12 → 4096 buckets; q=6 counter bits; r=10 mantissa bits: 8 KiB.
    let params = HmhParams::new(12, 6, 10).expect("valid parameters");
    println!("sketch parameters: {params}, {} bytes each\n", params.byte_size());

    // Stream two overlapping sets: |A| = |B| = 60k, |A∩B| = 30k (J = 1/3).
    let mut a = HyperMinHash::new(params);
    let mut b = HyperMinHash::new(params);
    for i in 0..60_000u64 {
        a.insert(&i);
    }
    for i in 30_000..90_000u64 {
        b.insert(&i);
    }

    // Jaccard index (Algorithm 4, with the fast collision correction).
    let j = a.jaccard(&b).expect("same parameters and oracle");
    println!(
        "jaccard:        estimate {:.4}   (truth 0.3333, raw {:.4}, EC {:.2})",
        j.estimate, j.raw, j.expected_collisions
    );

    // Cardinalities (Algorithm 3).
    println!("cardinality A:  {:.0}   (truth 60000)", a.cardinality());

    // Lossless union (Algorithm 2) — the sketch of A ∪ B.
    let u = a.union(&b).expect("same parameters and oracle");
    println!("union:          {:.0}   (truth 90000)", u.cardinality());

    // Intersection = Jaccard × union.
    let i = a.intersection(&b).expect("same parameters and oracle");
    println!("intersection:   {:.0}   (truth 30000)", i.intersection);

    // Sketches serialize (serde) — ship them between machines that share
    // the oracle seed and keep merging.
    let bytes = serde_json::to_vec(&a).expect("serializable");
    let restored: HyperMinHash = serde_json::from_slice(&bytes).expect("round-trips");
    assert_eq!(restored, a);
    println!("\nserialized sketch: {} JSON bytes (registers pack to {} raw)",
        bytes.len(), params.byte_size());
}
