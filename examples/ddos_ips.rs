//! The paper's DDoS motivation: "how many of the source IPs used in a
//! DDoS attack today were also used last month?"
//!
//! Streams several days of Zipf-skewed packet traffic into one sketch per
//! day (duplicates deduplicate for free), then answers day-over-day
//! overlap questions and compares against exact ground truth.
//!
//! ```sh
//! cargo run --release --example ddos_ips
//! ```

use hyperminhash::prelude::*;
use hyperminhash::workloads::ipstream::{self, IpStreamConfig};

fn main() {
    let cfg = IpStreamConfig {
        pool_size: 50_000,
        packets_per_day: 400_000,
        carryover: 0.35,
        zipf_s: 1.1,
        seed: 2024,
    };
    let days = ipstream::generate(cfg, 5);
    let params = HmhParams::new(12, 6, 10).expect("valid parameters");

    println!("streaming {} packets/day into one 8 KiB sketch per day…\n", cfg.packets_per_day);
    let sketches: Vec<HyperMinHash> = days
        .iter()
        .map(|day| {
            let mut s = HyperMinHash::new(params);
            for &ip in &day.packets {
                s.insert(&ip); // repeats are free — the sketch is a set
            }
            s
        })
        .collect();

    for (d, sketch) in sketches.iter().enumerate() {
        let distinct: std::collections::HashSet<u64> = days[d].packets.iter().copied().collect();
        println!(
            "day {d}: distinct IPs estimate {:>7.0}   (exact {})",
            sketch.cardinality(),
            distinct.len()
        );
    }

    println!("\nday-over-day overlap (estimated vs exact over *observed* IPs):");
    for d in 1..sketches.len() {
        let est = sketches[0].intersection(&sketches[d]).expect("same parameters");
        let seen0: std::collections::HashSet<u64> = days[0].packets.iter().copied().collect();
        let seend: std::collections::HashSet<u64> = days[d].packets.iter().copied().collect();
        let exact = seen0.intersection(&seend).count();
        println!(
            "  day0 ∩ day{d}: estimate {:>7.0}   exact {:>7}   (J estimate {:.4})",
            est.intersection, exact, est.jaccard
        );
    }

    // A month-scale question: "seen today AND on any of the previous
    // days" — a union first, then an intersection, all on sketches.
    let mut previous = sketches[0].clone();
    for s in &sketches[1..4] {
        previous.merge(s).expect("same parameters");
    }
    let today = &sketches[4];
    let est = today.intersection(&previous).expect("same parameters");
    let prev_exact: std::collections::HashSet<u64> =
        days[..4].iter().flat_map(|d| d.packets.iter().copied()).collect();
    let today_exact: std::collections::HashSet<u64> = days[4].packets.iter().copied().collect();
    let exact = prev_exact.intersection(&today_exact).count();
    println!(
        "\n|day4 ∩ (day0 ∪ … ∪ day3)|: estimate {:.0}, exact {exact}",
        est.intersection
    );
    println!("sample attacker IP from day 4: {}", ipstream::as_ipv4(days[4].pool[0]));
}
