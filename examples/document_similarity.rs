//! Broder's original use case: document resemblance via the Jaccard index
//! of word shingles — HyperMinHash vs b-bit MinHash fingerprints vs exact.
//!
//! Also shows what the fingerprint *cannot* do: cluster-level corpus
//! queries need sketch unions, which only HyperMinHash supports.
//!
//! ```sh
//! cargo run --release --example document_similarity
//! ```

use hyperminhash::minhash::{BBitMinHash, KHashMinHash};
use hyperminhash::prelude::*;
use hyperminhash::workloads::shingle::{shingles, synthetic_document};

fn main() {
    let params = HmhParams::new(10, 6, 10).expect("valid parameters");
    let oracle = RandomOracle::with_seed(1);

    // A base document plus increasingly mutated variants.
    let base = synthetic_document(20_000, 100, 0.0);
    let variants: Vec<(String, f64)> = [0.02, 0.1, 0.3, 0.7]
        .iter()
        .map(|&rate| (synthetic_document(20_000, 101, rate), rate))
        .collect();

    let sketch_of = |text: &str| -> (HyperMinHash, KHashMinHash, Vec<u64>) {
        let grams = shingles(text, 3);
        let mut hmh = HyperMinHash::with_oracle(params, oracle);
        let mut mh = KHashMinHash::new(512, oracle);
        for &g in &grams {
            hmh.insert(&g);
            mh.insert(&g);
        }
        (hmh, mh, grams)
    };

    let (base_hmh, base_mh, base_grams) = sketch_of(&base);
    let base_fp = BBitMinHash::from_minhash(&base_mh, 2);
    let base_set: std::collections::HashSet<u64> = base_grams.iter().copied().collect();

    println!("document resemblance (3-shingles), base = 20k words:\n");
    println!("{:>10} {:>10} {:>12} {:>12}", "mutation", "exact J", "hmh J", "bbit J");
    for (text, rate) in &variants {
        let (hmh, mh, grams) = sketch_of(text);
        let set: std::collections::HashSet<u64> = grams.iter().copied().collect();
        let inter = base_set.intersection(&set).count() as f64;
        let exact = inter / (base_set.len() + set.len() - inter as usize) as f64;
        let hmh_j = base_hmh.jaccard(&hmh).expect("same parameters").estimate;
        let fp = BBitMinHash::from_minhash(&mh, 2);
        let bb_j = base_fp.jaccard(&fp).expect("same build");
        println!("{rate:>10.2} {exact:>10.4} {hmh_j:>12.4} {bb_j:>12.4}");
    }

    // Corpus-level query the fingerprint cannot express: "how similar is
    // this new document to the *union* of the existing cluster?"
    let mut cluster = base_hmh.clone();
    for (text, _) in &variants[..2] {
        let (hmh, _, _) = sketch_of(text);
        cluster.merge(&hmh).expect("same parameters");
    }
    let (probe, _, _) = sketch_of(&variants[3].0);
    let j = cluster.jaccard(&probe).expect("same parameters");
    println!(
        "\ncluster query J(probe, doc0 ∪ doc1 ∪ doc2) = {:.4}  \
         (b-bit fingerprints cannot form the union sketch)",
        j.estimate
    );
}
