//! Cost of the three expected-collision computations: the log-space exact
//! formula, the big-float Algorithm 5 (the paper's "BigInts" route), and the
//! fast Algorithm 6 approximation — quantifying why Algorithm 6 exists.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hmh_core::collisions::{
    approx_expected_collisions, expected_collisions, expected_collisions_bigfloat,
};
use hmh_core::HmhParams;

fn bench_collisions(c: &mut Criterion) {
    let params = HmhParams::figure6(); // r=4 keeps the bigfloat loop sane
    let n = 1u128 << 30;

    let mut group = c.benchmark_group("expected_collisions");
    group.bench_function("logspace_exact", |b| {
        b.iter(|| expected_collisions(black_box(params), black_box(n as f64), n as f64))
    });
    group.bench_function("bigfloat_alg5_192bit", |b| {
        b.iter(|| expected_collisions_bigfloat(black_box(params), black_box(n), n, 192))
    });
    group.bench_function("approx_alg6", |b| {
        b.iter(|| approx_expected_collisions(black_box(params), black_box(n as f64), n as f64))
    });
    // The headline parameterization only for the f64 paths (the bigfloat
    // loop at r=10 is minutes-scale by design — the paper's point).
    let headline = HmhParams::headline();
    group.bench_function("logspace_exact_headline", |b| {
        b.iter(|| expected_collisions(black_box(headline), 1e19, 1e19))
    });
    group.bench_function("approx_alg6_headline", |b| {
        b.iter(|| approx_expected_collisions(black_box(headline), 1e19, 1e19))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_collisions
);
criterion_main!(benches);
