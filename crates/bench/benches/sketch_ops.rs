//! Per-operation throughput of the sketches: insert, union, Jaccard,
//! cardinality — HyperMinHash vs the baselines at matched 256-byte /
//! 64-KiB budgets — plus the packed-word-vs-tuple comparison ablation
//! from Appendix A.1.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hll::HyperLogLog;
use hmh_minhash::{BottomK, KHashMinHash, KPartitionMinHash};
use hmh_hash::{HashAlgorithm, RandomOracle};

fn bench_insert(c: &mut Criterion) {
    let n = 10_000u64;
    let mut group = c.benchmark_group("insert_10k");
    group.throughput(Throughput::Elements(n));

    group.bench_function("hyperminhash_fig6", |b| {
        b.iter(|| {
            let mut s = HyperMinHash::new(HmhParams::figure6());
            for i in 0..n {
                s.insert(black_box(&i));
            }
            s
        })
    });
    group.bench_function("hyperminhash_headline", |b| {
        b.iter(|| {
            let mut s = HyperMinHash::new(HmhParams::headline());
            for i in 0..n {
                s.insert(black_box(&i));
            }
            s
        })
    });
    group.bench_function("hyperminhash_splitmix_oracle", |b| {
        b.iter(|| {
            let oracle = RandomOracle::new(HashAlgorithm::SplitMix, 0);
            let mut s = HyperMinHash::with_oracle(HmhParams::figure6(), oracle);
            for i in 0..n {
                s.insert(black_box(&i));
            }
            s
        })
    });
    group.bench_function("hyperminhash_sha1_oracle", |b| {
        b.iter(|| {
            let oracle = RandomOracle::new(HashAlgorithm::Sha1, 0);
            let mut s = HyperMinHash::with_oracle(HmhParams::figure6(), oracle);
            for i in 0..n {
                s.insert(black_box(&i));
            }
            s
        })
    });
    group.bench_function("hyperloglog_p12", |b| {
        b.iter(|| {
            let mut s = HyperLogLog::new(12);
            for i in 0..n {
                s.insert(black_box(&i));
            }
            s
        })
    });
    group.bench_function("kpartition_256x8", |b| {
        b.iter(|| {
            let mut s = KPartitionMinHash::new(8, 8, RandomOracle::default());
            for i in 0..n {
                s.insert(black_box(&i));
            }
            s
        })
    });
    group.bench_function("bottomk_1024", |b| {
        b.iter(|| {
            let mut s = BottomK::new(1024, RandomOracle::default());
            for i in 0..n {
                s.insert(black_box(&i));
            }
            s
        })
    });
    group.bench_function("khash_256", |b| {
        b.iter(|| {
            let mut s = KHashMinHash::new(256, RandomOracle::default());
            for i in 0..n {
                s.insert(black_box(&i));
            }
            s
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("queries");
    for params in [HmhParams::figure6(), HmhParams::headline()] {
        let a = HyperMinHash::from_items(params, 0..100_000u64);
        let b = HyperMinHash::from_items(params, 50_000..150_000u64);
        group.bench_with_input(BenchmarkId::new("union", params.to_string()), &params, |bch, _| {
            bch.iter(|| black_box(&a).union(black_box(&b)).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("jaccard_approx_corrected", params.to_string()),
            &params,
            |bch, _| bch.iter(|| black_box(&a).jaccard(black_box(&b)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("cardinality", params.to_string()),
            &params,
            |bch, _| bch.iter(|| black_box(&a).cardinality()),
        );
    }
    group.finish();
}

/// Appendix A.1 ablation: packed single-word register compare vs unpacked
/// tuple compare for the Jaccard bucket scan.
fn bench_packed_vs_tuple(c: &mut Criterion) {
    let params = HmhParams::headline();
    let a = HyperMinHash::from_items(params, 0..200_000u64);
    let b = HyperMinHash::from_items(params, 100_000..300_000u64);
    let words_a: Vec<u32> = a.words().collect();
    let words_b: Vec<u32> = b.words().collect();
    let tuples_a: Vec<(u32, u32)> =
        (0..params.num_buckets()).map(|i| a.register(i).unwrap_or((0, 0))).collect();
    let tuples_b: Vec<(u32, u32)> =
        (0..params.num_buckets()).map(|i| b.register(i).unwrap_or((0, 0))).collect();

    let mut group = c.benchmark_group("jaccard_scan");
    group.throughput(Throughput::Elements(params.num_buckets() as u64));
    group.bench_function("packed_word", |bch| {
        bch.iter(|| {
            let mut matching = 0usize;
            let mut occupied = 0usize;
            for (&wa, &wb) in words_a.iter().zip(&words_b) {
                if wa != 0 || wb != 0 {
                    occupied += 1;
                    if wa == wb {
                        matching += 1;
                    }
                }
            }
            black_box((matching, occupied))
        })
    });
    group.bench_function("tuple_compare", |bch| {
        bch.iter(|| {
            let mut matching = 0usize;
            let mut occupied = 0usize;
            for (&ta, &tb) in tuples_a.iter().zip(&tuples_b) {
                if ta != (0, 0) || tb != (0, 0) {
                    occupied += 1;
                    if ta.0 == tb.0 && ta.1 == tb.1 {
                        matching += 1;
                    }
                }
            }
            black_box((matching, occupied))
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_insert, bench_queries, bench_packed_vs_tuple
);
criterion_main!(benches);
