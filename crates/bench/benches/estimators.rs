//! HLL estimator costs: FFGM07 vs Ertl-improved vs Poisson-MLE vs the
//! joint-MLE intersection machinery — the price column of the §1.3
//! comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hmh_hll::estimators::{ertl_improved, ertl_mle, ffgm};
use hmh_hll::{inclusion_exclusion, joint_mle, HyperLogLog};

fn build_pair() -> (HyperLogLog, HyperLogLog) {
    let mut a = HyperLogLog::new(12);
    let mut b = HyperLogLog::new(12);
    for i in 0..200_000u64 {
        a.insert(&i);
        b.insert(&(i + 100_000));
    }
    (a, b)
}

fn bench_estimators(c: &mut Criterion) {
    let (a, b) = build_pair();
    let hist = a.histogram();

    let mut group = c.benchmark_group("hll_estimators");
    group.bench_function("ffgm", |bch| bch.iter(|| ffgm(black_box(&hist))));
    group.bench_function("ertl_improved", |bch| bch.iter(|| ertl_improved(black_box(&hist))));
    group.bench_function("ertl_mle", |bch| bch.iter(|| ertl_mle(black_box(&hist))));
    group.finish();

    let mut group = c.benchmark_group("hll_intersection");
    group.sample_size(10);
    group.bench_function("inclusion_exclusion", |bch| {
        bch.iter(|| {
            inclusion_exclusion(
                black_box(&a),
                black_box(&b),
                hmh_hll::estimators::EstimatorKind::ErtlImproved,
            )
            .unwrap()
        })
    });
    group.bench_function("joint_mle", |bch| {
        bch.iter(|| joint_mle(black_box(&a), black_box(&b)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
