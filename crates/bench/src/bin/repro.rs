//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--trials N] [--seed S] [--quick] [--csv DIR]
//!
//! experiments:
//!   fig6         Figure 6 (256-byte sketches, J = 1/3 error vs cardinality)
//!   headline     Abstract/§5 claim (64 KiB, J = 0.01 at n = 10^19)
//!   collisions   Lemma 4 / Algorithm 5 / Theorem 1 collision accounting
//!   variance     Theorem 2 collision variance
//!   approx       Algorithm 6 vs Algorithm 5 accuracy
//!   ie-vs-hmh    §1.3 HLL inclusion-exclusion / joint-MLE vs HyperMinHash
//!   cnf-ie       CNF strategies: k-way registers vs inclusion-exclusion
//!   bbit         §1.3-1.4 b-bit MinHash accuracy and non-composability
//!   space-sweep  byte budget × r trade-off surface
//!   cardinality  Algorithm 3 decade sweep with estimator ablations
//!   all          everything above
//! ```

use hmh_bench::experiments::{
    approx, bbit, cardinality, cnf_ie, collisions, fig6, headline, ie_vs_hmh, ingest, route, space_sweep,
    variance, Config,
};
use hmh_bench::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut cfg = Config::default();
    let mut csv_dir: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" => {
                i += 1;
                cfg.trials = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--trials needs a positive integer"));
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--quick" => cfg.quick = true,
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i).cloned().unwrap_or_else(|| die("--csv needs a directory")),
                );
            }
            "--help" | "-h" => {
                print!("{}", USAGE);
                return;
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_string());
            }
            other => die(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    let Some(experiment) = experiment else {
        eprint!("{}", USAGE);
        std::process::exit(2);
    };

    let tables = run_experiment(&experiment, &cfg);
    let mut used_slugs = std::collections::HashSet::new();
    for table in &tables {
        println!("{}", table.render());
        if let Some(dir) = &csv_dir {
            write_csv(dir, table, &mut used_slugs);
        }
    }
    // The ingest sweep also publishes its machine-readable artifact.
    if let Some(table) =
        tables.iter().find(|t| t.title().starts_with("Parallel ingest throughput"))
    {
        let path = match &csv_dir {
            Some(dir) => format!("{dir}/BENCH_ingest.json"),
            None => "BENCH_ingest.json".to_string(),
        };
        std::fs::write(&path, ingest::to_json(table))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    // ... and the routing-tier overhead sweep publishes its own.
    if let Some(table) =
        tables.iter().find(|t| t.title().starts_with("Routed vs direct"))
    {
        let path = match &csv_dir {
            Some(dir) => format!("{dir}/BENCH_route.json"),
            None => "BENCH_route.json".to_string(),
        };
        std::fs::write(&path, route::to_json(table))
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}

fn run_experiment(name: &str, cfg: &Config) -> Vec<Table> {
    match name {
        "fig6" => vec![fig6::run(cfg)],
        "headline" => headline::run(cfg),
        "collisions" => vec![collisions::run(cfg)],
        "variance" => vec![variance::run(cfg)],
        "approx" => vec![approx::run(cfg)],
        "ie-vs-hmh" => vec![ie_vs_hmh::run(cfg)],
        "cnf-ie" => vec![cnf_ie::run(cfg)],
        "bbit" => bbit::run(cfg),
        "space-sweep" => vec![space_sweep::run(cfg)],
        "cardinality" => vec![cardinality::run(cfg)],
        "ingest" => vec![ingest::run(cfg)],
        "route" => vec![route::run(cfg)],
        "all" => {
            let mut out = vec![fig6::run(cfg)];
            out.extend(headline::run(cfg));
            out.push(collisions::run(cfg));
            out.push(variance::run(cfg));
            out.push(approx::run(cfg));
            out.push(ie_vs_hmh::run(cfg));
            out.push(cnf_ie::run(cfg));
            out.extend(bbit::run(cfg));
            out.push(space_sweep::run(cfg));
            out.push(cardinality::run(cfg));
            out.push(ingest::run(cfg));
            out.push(route::run(cfg));
            out
        }
        other => die(&format!("unknown experiment {other:?}\n{USAGE}")),
    }
}

fn write_csv(dir: &str, table: &Table, used_slugs: &mut std::collections::HashSet<String>) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("cannot create {dir}: {e}")));
    // Slug from the title's leading word(s); disambiguate repeats (e.g. the
    // two headline tables) with a numeric suffix.
    let base: String = table
        .title()
        .chars()
        .take_while(|c| *c != ':')
        .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect();
    let mut slug = base.clone();
    let mut n = 2;
    while !used_slugs.insert(slug.clone()) {
        slug = format!("{base}_{n}");
        n += 1;
    }
    let path = format!("{dir}/{slug}.csv");
    std::fs::write(&path, table.to_csv())
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    eprintln!("wrote {path}");
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

const USAGE: &str = "\
usage: repro <experiment> [--trials N] [--seed S] [--quick] [--csv DIR]

experiments:
  fig6         Figure 6 (256-byte sketches, J = 1/3 error vs cardinality)
  headline     Abstract/S5 claim (64 KiB, J = 0.01 at n = 10^19)
  collisions   Lemma 4 / Algorithm 5 / Theorem 1 collision accounting
  variance     Theorem 2 collision variance
  approx       Algorithm 6 vs Algorithm 5 accuracy
  ie-vs-hmh    S1.3 HLL inclusion-exclusion / joint-MLE vs HyperMinHash
  cnf-ie       CNF strategies: k-way registers vs inclusion-exclusion
  bbit         S1.3-1.4 b-bit MinHash accuracy and non-composability
  space-sweep  byte budget x r trade-off surface
  cardinality  Algorithm 3 decade sweep with estimator ablations
  ingest       parallel sharded ingest throughput vs. a sequential build
               (also writes BENCH_ingest.json)
  route        routed vs direct PUT/CARD overhead over a live 2-group
               cluster (also writes BENCH_route.json)
  all          everything above
";
