//! **Claim A (abstract / §5)** — with `p=15, q=6, r=10` (64 KiB per
//! sketch), HyperMinHash estimates "Jaccard indices of 0.01 for set
//! cardinalities on the order of 10^19 with relative error of around 10%
//! … MinHash can only estimate Jaccard indices for cardinalities of 10^10
//! with the same memory consumption."
//!
//! Both sketches get exactly 64 KiB: HyperMinHash `2^15 × 16` bits,
//! MinHash `2^15` buckets × 16-bit truncated registers (which exhausts
//! its 2^-16 truncation resolution near n ≈ 2^31 — the "10^10" order of
//! magnitude the paper quotes). Cardinalities sweep 10^8 … 10^19
//! (simulated; see `hmh-simulate`), J ∈ {0.01, 0.1}, collision-corrected
//! estimates for HyperMinHash (the paper's headline accuracy assumes
//! debiasing at J this small).

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::jaccard::{jaccard, CollisionCorrection};
use hmh_core::HmhParams;
use hmh_math::stats::relative_error;
use hmh_math::Welford;
use hmh_simulate::minhash_sim::simulate_kpartition_pair;
use hmh_simulate::{simulate_hmh_pair, simulate_hmh_single, SimSpec};

/// Run the experiment for one target Jaccard index.
pub fn run_for_jaccard(cfg: &Config, truth: f64) -> Table {
    let params = HmhParams::headline();
    let mut table = Table::new(
        format!("Headline: 64 KiB sketches, J = {truth}, relative errors vs cardinality"),
        &["n", "hmh_jaccard_re", "hmh_cardinality_re", "minhash64k_jaccard_re"],
    );
    let exponents: Vec<i32> = if cfg.quick { vec![8, 14, 19] } else { (8..=19).collect() };
    for (i, e) in exponents.into_iter().enumerate() {
        let n = 10f64.powi(e);
        let spec = SimSpec::equal_sized_with_jaccard(n, truth);
        let mut rng = cfg.rng(i as u64 + 1000);
        let (mut jerr, mut cerr, mut merr) = (Welford::new(), Welford::new(), Welford::new());
        for _ in 0..cfg.trials {
            let (a, b) = simulate_hmh_pair(params, spec, &mut rng);
            let est = jaccard(&a, &b, CollisionCorrection::Approx).expect("same params");
            jerr.add(relative_error(est.estimate, truth));

            let single = simulate_hmh_single(params, n, &mut rng);
            cerr.add(relative_error(single.cardinality(), n));

            let (ma, mb) = simulate_kpartition_pair(15, 16, spec, &mut rng);
            merr.add(relative_error(ma.jaccard(&mb).expect("same params"), truth));
        }
        table.push_row(vec![
            format!("1e{e}"),
            fnum(jerr.mean()),
            fnum(cerr.mean()),
            fnum(merr.mean()),
        ]);
    }
    table
}

/// Run both headline Jaccard targets.
pub fn run(cfg: &Config) -> Vec<Table> {
    vec![run_for_jaccard(cfg, 0.01), run_for_jaccard(cfg, 0.1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claim_holds_at_1e19() {
        let cfg = Config { trials: 10, seed: 7, quick: true };
        let t = run_for_jaccard(&cfg, 0.01);
        let last = t.num_rows() - 1;
        assert_eq!(t.cell(last, 0), "1e19");
        // "relative error of around 10%" — allow up to 25% at smoke scale.
        let hmh = t.cell_f64(last, t.col("hmh_jaccard_re"));
        assert!(hmh < 0.25, "HMH error at 1e19: {hmh}");
        // MinHash is long dead at 1e19 (all registers zero → J ≈ 1 →
        // relative error ≈ (1-0.01)/0.01 ≈ 99).
        let mh = t.cell_f64(last, t.col("minhash64k_jaccard_re"));
        assert!(mh > 10.0, "MinHash error at 1e19: {mh}");
        // Cardinality stays calibrated.
        let card = t.cell_f64(last, t.col("hmh_cardinality_re"));
        assert!(card < 0.05, "cardinality error at 1e19: {card}");
    }

    #[test]
    fn minhash_dies_between_1e8_and_1e19() {
        // The paper's contrast point: with 64 KiB, MinHash only reaches
        // ~10^9-10^10. 16-bit registers over 2^15 buckets → truncation
        // resolution 2^-16 and per-bucket minima ~2^15/n ⇒ workable until
        // n ≈ 2^31 ≈ 2e9. Check the collapse between 1e8 and 1e19 while
        // HyperMinHash stays flat.
        let cfg = Config { trials: 10, seed: 8, quick: true };
        let t = run_for_jaccard(&cfg, 0.1);
        let mh = t.col("minhash64k_jaccard_re");
        let at_1e8 = t.cell_f64(0, mh);
        let at_1e19 = t.cell_f64(t.num_rows() - 1, mh);
        assert!(at_1e8 < 0.3, "MinHash should still work at 1e8: {at_1e8}");
        assert!(at_1e19 > 2.0, "MinHash should be dead at 1e19: {at_1e19}");
        let hmh = t.col("hmh_jaccard_re");
        assert!(
            t.cell_f64(t.num_rows() - 1, hmh) < 3.0 * t.cell_f64(0, hmh).max(0.05),
            "HyperMinHash should stay flat across the sweep"
        );
    }
}
