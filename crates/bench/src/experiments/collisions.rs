//! **Lemma 4 / Algorithm 5 / Theorem 1** — expected accidental collisions:
//! empirical counts from simulated disjoint pairs vs the exact formula,
//! the fast approximation, and the closed-form bound; plus the implied
//! constant the paper calls "a gross overestimate (empirically, the
//! constant seems closer to 1)".

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::collisions::{
    approx_expected_collisions, expected_collisions, theorem1_bound,
};
use hmh_core::jaccard::{jaccard, CollisionCorrection};
use hmh_core::HmhParams;
use hmh_math::Welford;
use hmh_simulate::{simulate_hmh_pair, SimSpec};

/// Run the sweep for one parameterization.
pub fn run_for_params(cfg: &Config, params: HmhParams) -> Table {
    let mut table = Table::new(
        format!("Collisions between disjoint sets, {params}"),
        &["n", "empirical", "exact(Alg5)", "approx(Alg6)", "thm1_bound", "bound/exact", "implied_const"],
    );
    let exponents: Vec<i32> = if cfg.quick { vec![3, 6, 9] } else { (2..=14).collect() };
    for (i, e) in exponents.into_iter().enumerate() {
        let n = 10f64.powi(e);
        let mut rng = cfg.rng(i as u64 + 2000);
        let spec = SimSpec { a_only: n, b_only: n, shared: 0.0 };
        let mut emp = Welford::new();
        for _ in 0..cfg.trials {
            let (a, b) = simulate_hmh_pair(params, spec, &mut rng);
            let est = jaccard(&a, &b, CollisionCorrection::None).expect("same params");
            emp.add(est.matching as f64);
        }
        let exact = expected_collisions(params, n, n);
        let approx = approx_expected_collisions(params, n, n)
            .map(fnum)
            .unwrap_or_else(|_| "n/a".to_string());
        let bound = theorem1_bound(params, n);
        // The dominant bound term is 5·2^{p-r}; the exact value divided by
        // 2^{p-r} is the constant the paper discusses.
        let implied = exact / 2f64.powi(params.p() as i32 - params.r() as i32);
        table.push_row(vec![
            format!("1e{e}"),
            fnum(emp.mean()),
            fnum(exact),
            approx,
            fnum(bound),
            fnum(bound / exact),
            fnum(implied),
        ]);
    }
    table
}

/// Default parameterization (p=8, q=6, r=6 — small enough r that the
/// expected counts are clearly visible above trial noise).
pub fn run(cfg: &Config) -> Table {
    run_for_params(cfg, HmhParams::new(8, 6, 6).expect("valid"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_tracks_exact_and_bound_holds() {
        let cfg = Config { trials: 60, seed: 3, quick: true };
        let params = HmhParams::new(8, 6, 6).unwrap(); // r=6: visible counts
        let t = run_for_params(&cfg, params);
        for row in 0..t.num_rows() {
            let emp = t.cell_f64(row, t.col("empirical"));
            let exact = t.cell_f64(row, t.col("exact(Alg5)"));
            let bound = t.cell_f64(row, t.col("thm1_bound"));
            assert!(exact <= bound * 1.0001, "bound violated at row {row}");
            // Empirical within 5σ of exact (σ² ≤ EC² + EC per Thm 2).
            let sigma = ((exact * exact + exact) / cfg.trials as f64).sqrt();
            assert!(
                (emp - exact).abs() < 5.0 * sigma + 0.5,
                "row {row}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    fn implied_constant_is_near_one() {
        // The paper: "the constant 6 is a gross overestimate (empirically,
        // the constant seems closer to 1)".
        let cfg = Config { trials: 4, seed: 3, quick: true };
        let t = run(&cfg);
        // Plateau rows (n ≥ 1e6).
        let c = t.cell_f64(t.num_rows() - 1, t.col("implied_const"));
        assert!((0.05..2.0).contains(&c), "implied constant {c}");
    }
}
