//! **Space law** — the paper's error structure: MinHash-style sampling
//! noise `∝ 1/√(2^p)` plus the collision floor `∝ 1/2^r` (§5: variance
//! "on the order of k/t … it also introduces 1/l² variance, where
//! l = 2^r"). At a fixed byte budget, `p` and `r` trade off; this sweep
//! maps the trade-off surface.

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::jaccard::{jaccard, CollisionCorrection};
use hmh_core::HmhParams;
use hmh_math::stats::relative_error;
use hmh_math::Welford;
use hmh_simulate::{simulate_hmh_pair, SimSpec};

/// For a byte budget and register width `q + r`, the largest legal `p`.
fn p_for_budget(bytes: usize, word_bits: u32) -> Option<u32> {
    let total_bits = bytes * 8;
    let buckets = total_bits / word_bits as usize;
    if buckets == 0 {
        return None;
    }
    Some(buckets.ilog2())
}

/// Run the sweep at fixed `n = 10^6`, `J = 0.1`, `q = 6`.
pub fn run(cfg: &Config) -> Table {
    let q = 6u32;
    let n = 1e6;
    let truth = 0.1;
    let mut table = Table::new(
        "Space sweep: mean relative Jaccard error by byte budget and r (q=6, n=1e6, J=0.1)",
        &["bytes", "r", "p", "params", "mean_re"],
    );
    let budgets: Vec<usize> =
        if cfg.quick { vec![1024, 16384] } else { vec![256, 1024, 4096, 16384, 65536] };
    let rs: Vec<u32> = if cfg.quick { vec![4, 10] } else { vec![2, 4, 6, 8, 10, 12, 16] };
    let mut salt = 5000u64;
    for bytes in budgets {
        for &r in &rs {
            let Some(p) = p_for_budget(bytes, q + r) else { continue };
            let Ok(params) = HmhParams::new(p.min(24), q, r) else { continue };
            let spec = SimSpec::equal_sized_with_jaccard(n, truth);
            let mut err = Welford::new();
            let mut rng = cfg.rng(salt);
            salt += 1;
            for _ in 0..cfg.trials {
                let (a, b) = simulate_hmh_pair(params, spec, &mut rng);
                let est = jaccard(&a, &b, CollisionCorrection::Approx).expect("same params");
                err.add(relative_error(est.estimate, truth));
            }
            table.push_row(vec![
                format!("{bytes}"),
                format!("{r}"),
                format!("{}", params.p()),
                params.to_string(),
                fnum(err.mean()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_for_budget_math() {
        assert_eq!(p_for_budget(256, 8), Some(8)); // figure 6
        assert_eq!(p_for_budget(65536, 16), Some(15)); // headline
        assert_eq!(p_for_budget(0, 8), None);
    }

    #[test]
    fn more_bytes_help_and_extreme_r_hurts() {
        let cfg = Config { trials: 25, seed: 17, quick: false };
        let t = run(&cfg);
        let re = t.col("mean_re");
        // Group rows by (bytes, r).
        let lookup = |bytes: &str, r: &str| -> f64 {
            (0..t.num_rows())
                .find(|&row| t.cell(row, 0) == bytes && t.cell(row, 1) == r)
                .map(|row| t.cell_f64(row, re))
                .expect("row present")
        };
        // At r = 10, quadrupling the budget must reduce error.
        assert!(lookup("16384", "10") < lookup("1024", "10"));
        // At a fixed byte budget, extreme r wastes the budget: r = 12/16
        // widen the register word (q+r = 18/22 bits) and halve the bucket
        // count, while the extra mantissa bits buy nothing once the
        // collision floor sits below sampling noise — so their error must
        // exceed the mid-range r band. (Comparing r = 2 against r = 10
        // head-to-head is NOT a valid assertion here: with the Approx
        // collision correction the small-r floor is mostly subtracted
        // out, and at byte parity r = 2 buys 2× the buckets, so it wins;
        // band averages keep the check statistically robust at 25
        // trials.)
        let band = |rs: &[&str]| -> f64 {
            rs.iter().map(|r| lookup("16384", r)).sum::<f64>() / rs.len() as f64
        };
        let wide = band(&["12", "16"]);
        let mid = band(&["4", "6", "8", "10"]);
        assert!(wide > mid, "wide-r band {wide} should exceed mid-r band {mid}");
    }
}
