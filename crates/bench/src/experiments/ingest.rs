//! Parallel ingest throughput: items/sec through `hmh-ingest`'s sharded
//! pipeline vs. a plain sequential build, across worker counts.
//!
//! Because the union is lossless, the parallel result must equal the
//! sequential one bit for bit — the experiment asserts that on every
//! measurement, so a throughput number can never come from a wrong
//! sketch. Results also feed `BENCH_ingest.json` (see [`to_json`]), the
//! artifact CI publishes.

use std::time::Instant;

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::splitmix::SplitMix64;
use hmh_hash::RandomOracle;
use hmh_ingest::{ingest, IngestOptions};

/// Worker counts measured against the sequential baseline.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Items per measurement: ≥ 1M in the full configuration (the acceptance
/// bar for the published artifact), scaled down for smoke runs.
fn num_items(cfg: &Config) -> usize {
    if cfg.quick {
        100_000
    } else {
        2_000_000
    }
}

/// Measurement repeats per configuration: throughput is the best of
/// these, the standard antidote to scheduler noise. Deterministic in the
/// trial count, small enough that `all` stays tractable.
fn repeats(cfg: &Config) -> u64 {
    cfg.trials.clamp(1, 3)
}

/// Run the throughput sweep.
pub fn run(cfg: &Config) -> Table {
    let params = HmhParams::new(12, 6, 10).expect("valid parameters");
    let oracle = RandomOracle::with_seed(cfg.seed);
    let n = num_items(cfg);
    let mut gen = SplitMix64::new(cfg.seed ^ 0x1A6E57);
    let items: Vec<u64> = (0..n).map(|_| gen.next_u64()).collect();

    let mut table = Table::new(
        format!("Parallel ingest throughput, {params}, {n} items"),
        &["config", "workers", "elapsed_ms", "items_per_sec", "speedup_vs_seq"],
    );

    // Sequential baseline: one sketch, one thread, plain insert loop.
    let mut reference = HyperMinHash::with_oracle(params, oracle);
    let seq_elapsed = best_of(repeats(cfg), || {
        let mut s = HyperMinHash::with_oracle(params, oracle);
        for item in &items {
            s.insert(item);
        }
        reference = s;
    });
    let seq_rate = rate(n, seq_elapsed);
    table.push_row(vec![
        "sequential".to_string(),
        "0".to_string(),
        fnum(seq_elapsed * 1e3),
        fnum(seq_rate),
        fnum(1.0),
    ]);

    for workers in WORKER_COUNTS {
        let opts =
            IngestOptions { workers, queue_depth: 2 * workers, batch_size: 8 * 1024 };
        let mut result = None;
        let elapsed = best_of(repeats(cfg), || {
            result = Some(
                ingest(params, oracle, items.iter().copied(), opts.clone())
                    .expect("ingest pipeline failed"),
            );
        });
        // A throughput number from a wrong sketch would be worthless:
        // the merge-equivalence contract is asserted on every sweep.
        assert_eq!(
            result.as_ref().expect("at least one repeat ran"),
            &reference,
            "parallel ingest diverged from the sequential build at {workers} workers"
        );
        let r = rate(n, elapsed);
        table.push_row(vec![
            format!("engine-{workers}"),
            workers.to_string(),
            fnum(elapsed * 1e3),
            fnum(r),
            fnum(r / seq_rate),
        ]);
    }
    table
}

/// Wall-clock seconds for the best (fastest) of `repeats` runs of `f`.
fn best_of(repeats: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn rate(items: usize, elapsed: f64) -> f64 {
    items as f64 / elapsed.max(1e-9)
}

/// Render the throughput table as the `BENCH_ingest.json` artifact: one
/// object per configuration plus the item count the sweep ran at and the
/// machine's core count. The core count is what makes a flat speedup
/// column interpretable — on a single-core box the parallel engine cannot
/// beat the sequential build in wall-clock, only match it bit for bit.
pub fn to_json(table: &Table) -> String {
    let items: String = table
        .title()
        .split(',')
        .next_back()
        .and_then(|part| part.split_whitespace().next())
        .unwrap_or("0")
        .to_string();
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"ingest\",\n");
    out.push_str(&format!("  \"items\": {items},\n"));
    out.push_str(&format!("  \"cpus\": {cpus},\n"));
    out.push_str("  \"rows\": [\n");
    for row in 0..table.num_rows() {
        let config = table.cell(row, table.col("config"));
        let workers = table.cell(row, table.col("workers"));
        let rate = table.cell_f64(row, table.col("items_per_sec"));
        let speedup = table.cell_f64(row, table.col("speedup_vs_seq"));
        out.push_str(&format!(
            "    {{\"config\": \"{config}\", \"workers\": {workers}, \
             \"items_per_sec\": {rate}, \"speedup_vs_seq\": {speedup}}}{}\n",
            if row + 1 < table.num_rows() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_all_configurations() {
        let cfg = Config { trials: 1, seed: 7, quick: true };
        let t = run(&cfg);
        assert_eq!(t.num_rows(), 1 + WORKER_COUNTS.len());
        assert_eq!(t.cell(0, t.col("config")), "sequential");
        for (i, workers) in WORKER_COUNTS.iter().enumerate() {
            assert_eq!(t.cell(i + 1, t.col("config")), format!("engine-{workers}"));
            assert!(t.cell_f64(i + 1, t.col("items_per_sec")) > 0.0);
        }
    }

    #[test]
    fn json_artifact_is_well_formed() {
        let cfg = Config { trials: 1, seed: 7, quick: true };
        let t = run(&cfg);
        let json = to_json(&t);
        assert!(json.contains("\"experiment\": \"ingest\""));
        assert!(json.contains("\"items\": 100000"));
        assert!(json.contains("\"cpus\": "));
        assert!(json.contains("\"config\": \"sequential\""));
        assert!(json.contains("\"config\": \"engine-4\""));
        // Balanced braces/brackets as a cheap structural check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
