//! **Algorithm 6 accuracy** — the fast approximation vs the exact
//! Algorithm 5 across cardinalities and `n/m` skew ratios, including the
//! paper's note that it "generally underestimates collisions" and the
//! `φ = 4(n/m)/(1+n/m)²` skew law.

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::collisions::{approx_expected_collisions, expected_collisions};
use hmh_core::HmhParams;

/// Run the comparison grid.
pub fn run(cfg: &Config) -> Table {
    let params = HmhParams::new(12, 6, 10).expect("valid");
    let mut table = Table::new(
        format!("Algorithm 6 vs Algorithm 5, {params}"),
        &["n", "m", "exact(Alg5)", "approx(Alg6)", "approx/exact"],
    );
    let exps: Vec<i32> = if cfg.quick { vec![4, 10, 16] } else { vec![3, 4, 6, 8, 10, 12, 14, 16, 18] };
    for e in exps {
        for ratio_exp in [0, 2, 6] {
            let n = 10f64.powi(e);
            let m = n / 2f64.powi(ratio_exp);
            if m < 1.0 {
                continue;
            }
            let exact = expected_collisions(params, n, m);
            match approx_expected_collisions(params, n, m) {
                Ok(approx) => table.push_row(vec![
                    format!("1e{e}"),
                    fnum(m),
                    fnum(exact),
                    fnum(approx),
                    fnum(approx / exact),
                ]),
                Err(_) => table.push_row(vec![
                    format!("1e{e}"),
                    fnum(m),
                    fnum(exact),
                    "too-large".into(),
                    "-".into(),
                ]),
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximation_tracks_exact_within_35_percent() {
        let t = run(&Config::smoke());
        let mut checked = 0;
        for row in 0..t.num_rows() {
            if t.cell(row, t.col("approx/exact")) == "-" {
                continue;
            }
            let ratio = t.cell_f64(row, t.col("approx/exact"));
            assert!(
                (0.6..=1.4).contains(&ratio),
                "row {row}: approx/exact = {ratio}"
            );
            checked += 1;
        }
        assert!(checked >= 5);
    }
}
