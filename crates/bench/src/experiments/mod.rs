//! One module per experiment; each exposes `run(&Config) -> Table` (or a
//! small set of tables). EXPERIMENTS.md at the workspace root records the
//! paper's claims next to measured outputs of these functions.

pub mod approx;
pub mod bbit;
pub mod cardinality;
pub mod cnf_ie;
pub mod collisions;
pub mod fig6;
pub mod headline;
pub mod ie_vs_hmh;
pub mod ingest;
pub mod route;
pub mod space_sweep;
pub mod variance;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Trials per data point.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Scale factor ≤ 1.0 shrinks sweeps for smoke tests.
    pub quick: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self { trials: 40, seed: 0xA5E0, quick: false }
    }
}

impl Config {
    /// A fast configuration for integration tests.
    pub fn smoke() -> Self {
        Self { trials: 8, seed: 0xA5E0, quick: true }
    }

    /// Deterministic RNG for a data point.
    pub fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}
