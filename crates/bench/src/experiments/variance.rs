//! **Theorem 2** — `Var(C) ≤ (EC)² + EC`: empirical variance of the
//! collision count over many disjoint-pair trials vs the bound ("the
//! standard deviation in the number of collisions is approximately the
//! expectation").

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::collisions::{expected_collisions, theorem2_variance_bound};
use hmh_core::jaccard::{jaccard, CollisionCorrection};
use hmh_core::HmhParams;
use hmh_math::Welford;
use hmh_simulate::{simulate_hmh_pair, SimSpec};

/// Run the experiment across cardinalities.
pub fn run(cfg: &Config) -> Table {
    let params = HmhParams::new(8, 6, 6).expect("valid");
    let mut table = Table::new(
        format!("Theorem 2: collision-count variance, {params}"),
        &["n", "mean_C", "exact_EC", "var_C", "thm2_bound", "sd/mean"],
    );
    let exponents: Vec<i32> = if cfg.quick { vec![4, 8] } else { vec![3, 5, 7, 9, 11] };
    // Variance needs more trials than the mean.
    let trials = cfg.trials.max(100);
    for (i, e) in exponents.into_iter().enumerate() {
        let n = 10f64.powi(e);
        let mut rng = cfg.rng(i as u64 + 3000);
        let spec = SimSpec { a_only: n, b_only: n, shared: 0.0 };
        let mut stats = Welford::new();
        for _ in 0..trials {
            let (a, b) = simulate_hmh_pair(params, spec, &mut rng);
            let est = jaccard(&a, &b, CollisionCorrection::None).expect("same params");
            stats.add(est.matching as f64);
        }
        let ec = expected_collisions(params, n, n);
        let bound = theorem2_variance_bound(ec);
        let sd_over_mean =
            if stats.mean() > 0.0 { stats.std_dev() / stats.mean() } else { 0.0 };
        table.push_row(vec![
            format!("1e{e}"),
            fnum(stats.mean()),
            fnum(ec),
            fnum(stats.sample_variance()),
            fnum(bound),
            fnum(sd_over_mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_stays_under_the_bound() {
        let cfg = Config { trials: 150, seed: 5, quick: true };
        let t = run(&cfg);
        for row in 0..t.num_rows() {
            let var = t.cell_f64(row, t.col("var_C"));
            let bound = t.cell_f64(row, t.col("thm2_bound"));
            // Sample variance fluctuates ~ ±30% at 150 trials; the bound
            // has ≈ EC² slack, so 1.5× covers it comfortably.
            assert!(var <= bound * 1.5, "row {row}: var {var} vs bound {bound}");
        }
    }
}
