//! Routing-tier overhead: PUT and CARD through the scatter-gather
//! router vs. straight to the owning daemon, over a live 2-group
//! cluster on localhost.
//!
//! The router adds one network hop and one ring lookup per operation;
//! this experiment prices that hop. Correctness rides along: every
//! routed CARD is asserted equal to the owning daemon's direct answer,
//! so a throughput number can never come from a misrouted sketch.
//! Results feed `BENCH_route.json` (see [`to_json`]), the artifact CI
//! publishes alongside the ingest snapshot.

use std::time::Instant;

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::{HmhParams, HyperMinHash};
use hmh_route::{route, Ring, RingConfig, RouteOptions};
use hmh_serve::{serve, Client, ServeOptions};
use hmh_store::StoreOptions;

/// Operations per measured pass.
fn num_ops(cfg: &Config) -> usize {
    if cfg.quick {
        200
    } else {
        2_000
    }
}

/// Measured passes per mode; throughput is the best pass.
fn repeats(cfg: &Config) -> u64 {
    cfg.trials.clamp(1, 3)
}

struct TempDir(std::path::PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn temp_dir(tag: &str) -> TempDir {
    let dir = std::env::temp_dir().join(format!("hmh-bench-route-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    TempDir(dir)
}

fn daemon_opts() -> ServeOptions {
    ServeOptions { workers: 2, store: StoreOptions::no_sleep(), ..ServeOptions::default() }
}

/// Run the overhead measurement: a 2-group × 1-replica cluster, one
/// router, and the same operation stream driven both ways.
pub fn run(cfg: &Config) -> Table {
    let n = num_ops(cfg);
    let params = HmhParams::new(12, 6, 10).expect("valid parameters");
    let payload = HyperMinHash::from_items(params, 0u64..4096);
    let names: Vec<String> = (0..n).map(|i| format!("bench/s{i}")).collect();

    let (_dir_a, _dir_b) = (temp_dir("a"), temp_dir("b"));
    let node_a = serve(&_dir_a.0, "127.0.0.1:0", daemon_opts()).expect("start shard a");
    let node_b = serve(&_dir_b.0, "127.0.0.1:0", daemon_opts()).expect("start shard b");
    let ring = Ring::build(
        RingConfig::from_text(&format!(
            "hmh-ring v1\nepoch 1\nvnodes 128\ngroup a {}\ngroup b {}\n",
            node_a.addr(),
            node_b.addr()
        ))
        .expect("ring text"),
    )
    .expect("ring build");
    let router = route(ring.clone(), "127.0.0.1:0", RouteOptions::default())
        .expect("start router");

    let mut table = Table::new(
        format!("Routed vs direct operation overhead, {n} ops per pass"),
        &["op", "mode", "elapsed_ms", "ops_per_sec", "relative_to_direct"],
    );

    let shard_addrs = [node_a.addr(), node_b.addr()];
    let owner_addr = |name: &str| shard_addrs[ring.owner_index(name)];

    // PUT: direct to the owner vs through the router. Connections are
    // reused across the pass (the client holds its socket), so the
    // numbers price the protocol hop, not TCP setup.
    let direct_put = best_of(repeats(cfg), || {
        let mut clients: Vec<Client> = shard_addrs.iter().map(|&a| Client::connect(a)).collect();
        for name in &names {
            clients[ring.owner_index(name)].put(name, &payload).expect("direct put");
        }
        drop(clients);
    });
    let routed_put = best_of(repeats(cfg), || {
        let mut via = Client::connect(router.addr());
        for name in &names {
            via.put(name, &payload).expect("routed put");
        }
    });
    push_pair(&mut table, "put", n, direct_put, routed_put);

    // CARD: read path. Routed answers are asserted against the owner's.
    let mut via = Client::connect(router.addr());
    for name in names.iter().take(16) {
        let direct = Client::connect(owner_addr(name)).card(name).expect("direct card");
        let routed = via.card(name).expect("routed card");
        assert_eq!(routed, direct, "routed CARD of {name:?} diverges from the owner's");
    }
    drop(via);
    let direct_card = best_of(repeats(cfg), || {
        let mut clients: Vec<Client> = shard_addrs.iter().map(|&a| Client::connect(a)).collect();
        for name in &names {
            clients[ring.owner_index(name)].card(name).expect("direct card");
        }
    });
    let routed_card = best_of(repeats(cfg), || {
        let mut via = Client::connect(router.addr());
        for name in &names {
            via.card(name).expect("routed card");
        }
    });
    push_pair(&mut table, "card", n, direct_card, routed_card);

    router.join();
    node_a.shutdown();
    node_b.shutdown();
    node_a.join();
    node_b.join();
    table
}

fn push_pair(table: &mut Table, op: &str, n: usize, direct: f64, routed: f64) {
    let direct_rate = rate(n, direct);
    let routed_rate = rate(n, routed);
    table.push_row(vec![
        op.to_string(),
        "direct".to_string(),
        fnum(direct * 1e3),
        fnum(direct_rate),
        fnum(1.0),
    ]);
    table.push_row(vec![
        op.to_string(),
        "routed".to_string(),
        fnum(routed * 1e3),
        fnum(routed_rate),
        fnum(routed_rate / direct_rate),
    ]);
}

/// Wall-clock seconds for the best (fastest) of `repeats` runs of `f`.
fn best_of(repeats: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn rate(ops: usize, elapsed: f64) -> f64 {
    ops as f64 / elapsed.max(1e-9)
}

/// Render the overhead table as the `BENCH_route.json` artifact: the
/// machine's core count (routing is thread-bound; a single-core box
/// serializes router and daemons) plus one object per (op, mode) row.
pub fn to_json(table: &Table) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"route\",\n");
    out.push_str(&format!("  \"cpus\": {cpus},\n"));
    out.push_str("  \"rows\": [\n");
    for row in 0..table.num_rows() {
        let op = table.cell(row, table.col("op"));
        let mode = table.cell(row, table.col("mode"));
        let rate = table.cell_f64(row, table.col("ops_per_sec"));
        let relative = table.cell_f64(row, table.col("relative_to_direct"));
        out.push_str(&format!(
            "    {{\"op\": \"{op}\", \"mode\": \"{mode}\", \
             \"ops_per_sec\": {rate}, \"relative_to_direct\": {relative}}}{}\n",
            if row + 1 < table.num_rows() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_prices_both_ops_both_ways() {
        let cfg = Config { trials: 1, seed: 7, quick: true };
        let t = run(&cfg);
        assert_eq!(t.num_rows(), 4);
        for row in 0..t.num_rows() {
            assert!(t.cell_f64(row, t.col("ops_per_sec")) > 0.0);
        }
        assert_eq!(t.cell(0, t.col("mode")), "direct");
        assert_eq!(t.cell(1, t.col("mode")), "routed");

        let json = to_json(&t);
        assert!(json.contains("\"experiment\": \"route\""));
        assert!(json.contains("\"cpus\": "));
        assert!(json.contains("\"op\": \"card\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
