//! **§1.3 comparison** — intersection estimation from HLL sketches alone
//! (inclusion–exclusion, and Ertl's joint-MLE which the paper calls a
//! "constant order (< 3x) improvement") vs HyperMinHash, at matched byte
//! budgets.
//!
//! The claim reproduced: HLL-based errors are relative to the *union*
//! ("for small intersections, the error is often too great"), while
//! HyperMinHash error is relative to the Jaccard index, so the gap widens
//! as `t → 0`.

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::jaccard::{jaccard, CollisionCorrection};
use hmh_core::HmhParams;
use hmh_hll::estimators::EstimatorKind;
use hmh_hll::{inclusion_exclusion, joint_mle};
use hmh_math::stats::relative_error;
use hmh_math::Welford;
use hmh_simulate::hll_sim::simulate_hll_pair;
use hmh_simulate::{simulate_hmh_pair, SimSpec};

/// Run the Jaccard sweep at a fixed union size.
///
/// Budgets: HyperMinHash `p=12, q=6, r=10` → 8 KiB; HLL `p=13`, 6-bit
/// registers → 6 KiB (the nearest power-of-two register count below the
/// same budget — favouring the baseline is fine, the gap is orders of
/// magnitude).
pub fn run(cfg: &Config) -> Table {
    let union = 1e7;
    let hmh_params = HmhParams::new(12, 6, 10).expect("valid");
    let (hll_p, hll_cap) = (13u32, 63u32);
    let mut table = Table::new(
        format!("Intersection estimation vs Jaccard at |A∪B| = {union:.0e}: HLL-IE vs HLL-joint-MLE vs HyperMinHash"),
        &["jaccard", "intersection", "ie_re", "mle_re", "hmh_re"],
    );
    let targets: Vec<f64> =
        if cfg.quick { vec![0.003, 0.1] } else { vec![0.001, 0.003, 0.01, 0.03, 0.1, 0.3] };
    for (i, t) in targets.into_iter().enumerate() {
        // Solve the components for |A∪B| = union, |A| = |B|:
        // shared = t·union; a_only = b_only = (union − shared)/2.
        let shared = t * union;
        let only = (union - shared) / 2.0;
        let spec = SimSpec { a_only: only, b_only: only, shared };
        let mut rng = cfg.rng(i as u64 + 4000);
        let (mut ie_err, mut mle_err, mut hmh_err) =
            (Welford::new(), Welford::new(), Welford::new());
        for _ in 0..cfg.trials {
            let (ha, hb) = simulate_hll_pair(hll_p, hll_cap, spec, &mut rng);
            let ie = inclusion_exclusion(&ha, &hb, EstimatorKind::ErtlImproved)
                .expect("same params");
            ie_err.add(relative_error(ie.intersection, shared));
            let mle = joint_mle(&ha, &hb).expect("same params");
            mle_err.add(relative_error(mle.intersection, shared));

            let (a, b) = simulate_hmh_pair(hmh_params, spec, &mut rng);
            let est = jaccard(&a, &b, CollisionCorrection::Approx).expect("same params");
            let union_est = a.union(&b).expect("same params").cardinality();
            hmh_err.add(relative_error(est.estimate * union_est, shared));
        }
        table.push_row(vec![
            fnum(t),
            fnum(shared),
            fnum(ie_err.mean()),
            fnum(mle_err.mean()),
            fnum(hmh_err.mean()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmh_dominates_at_small_jaccard() {
        let cfg = Config { trials: 6, seed: 4, quick: true };
        let t = run(&cfg);
        // At J = 0.003 the HLL-IE error should be catastrophic relative
        // to HyperMinHash's.
        let ie = t.cell_f64(0, t.col("ie_re"));
        let hmh = t.cell_f64(0, t.col("hmh_re"));
        assert!(
            hmh < ie / 3.0,
            "HMH {hmh} should beat IE {ie} by a wide margin at J=0.003"
        );
        assert!(hmh < 0.5, "HMH error {hmh}");
    }
}
