//! **§1.3 at the query level** — CNF evaluation strategies compared:
//! the k-way register-agreement method (what HyperMinHash uniquely
//! enables) vs inclusion–exclusion over clause-union cardinalities (what
//! any mergeable count-distinct sketch can do).
//!
//! The paper: with inclusion–exclusion "the relative error is then in the
//! size of the union … and compounds when taking the intersections of
//! multiple sets". Both effects are measured: the error gap grows as the
//! result shrinks, and again when a third clause is added.

use super::Config;
use crate::table::{fnum, Table};
use hmh_cnf::ast::CnfQuery;
use hmh_cnf::eval::{evaluate, evaluate_inclusion_exclusion};
use hmh_cnf::SketchCatalog;
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::RandomOracle;
use hmh_math::stats::relative_error;
use hmh_math::Welford;

/// Two- and three-clause AND queries over inserted sets with controlled
/// overlap; relative error of each evaluation strategy.
pub fn run(cfg: &Config) -> Table {
    let params = HmhParams::new(11, 6, 10).expect("valid");
    let n = 100_000u64;
    let mut table = Table::new(
        "CNF evaluation: k-way registers vs inclusion-exclusion (|each set| = 100k)",
        &["clauses", "result_fraction", "truth", "kway_re", "ie_re"],
    );
    let fractions: Vec<f64> = if cfg.quick { vec![0.01, 0.1] } else { vec![0.003, 0.01, 0.03, 0.1, 0.3] };
    let trials = cfg.trials.min(8);
    for (fi, frac) in fractions.iter().enumerate() {
        for clauses in [2usize, 3] {
            // Sliding windows: clause i covers [i·d, i·d + n); the k-way
            // intersection is [ (k−1)·d, n ) with size n − (k−1)·d.
            // Choose d so the intersection is `frac` of each set.
            let inter = (*frac * n as f64) as u64;
            let d = (n - inter) / (clauses as u64 - 1);
            let truth = (n - (clauses as u64 - 1) * d) as f64;
            let (mut kway, mut ie) = (Welford::new(), Welford::new());
            for t in 0..trials {
                let oracle = RandomOracle::with_seed(cfg.seed ^ (fi as u64 * 100 + clauses as u64 * 10 + t));
                let mut cat = SketchCatalog::with_oracle(params, oracle);
                let mut names = Vec::new();
                for c in 0..clauses as u64 {
                    let mut s = HyperMinHash::with_oracle(params, oracle);
                    for x in (c * d)..(c * d + n) {
                        s.insert(&x);
                    }
                    let name = format!("s{c}");
                    cat.adopt(name.clone(), s).expect("compatible");
                    names.push(name);
                }
                let query = CnfQuery::new(names.iter().map(|n| vec![n.clone()])).expect("non-empty");
                kway.add(relative_error(evaluate(&cat, &query).expect("evaluates").count, truth));
                ie.add(relative_error(
                    evaluate_inclusion_exclusion(&cat, &query).expect("evaluates"),
                    truth,
                ));
            }
            table.push_row(vec![
                format!("{clauses}"),
                fnum(*frac),
                fnum(truth),
                fnum(kway.mean()),
                fnum(ie.mean()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kway_beats_ie_on_small_results_and_ie_compounds() {
        let cfg = Config { trials: 5, seed: 31, quick: true };
        let t = run(&cfg);
        let (kway, ie) = (t.col("kway_re"), t.col("ie_re"));
        // Smallest fraction, 2 clauses (row 0): k-way clearly better.
        assert!(
            t.cell_f64(0, kway) < t.cell_f64(0, ie),
            "kway {} vs ie {}",
            t.cell_f64(0, kway),
            t.cell_f64(0, ie)
        );
        // Compounding: 3-clause IE at the small fraction is no better
        // than 2-clause IE (more terms, each with union-scale error).
        assert!(t.cell_f64(1, ie) * 3.0 > t.cell_f64(0, ie));
        // k-way stays usable everywhere.
        for row in 0..t.num_rows() {
            assert!(t.cell_f64(row, kway) < 1.0, "row {row}");
        }
    }
}
