//! **Figure 6** — mean relative error of Jaccard estimation vs set
//! cardinality for three 256-byte sketches:
//!
//! * HyperMinHash, 256 buckets × 8 bits (p=8, q=4, r=4) — "Jaccard index
//!   estimation remains stable until cardinalities around 2^23";
//! * MinHash, 256 buckets × 8 bits — "fails once cardinalities approach
//!   2^14";
//! * MinHash, 128 buckets × 16 bits — "can access larger cardinalities of
//!   around 2^20, but … trades off on low-cardinality accuracy".
//!
//! Protocol per the caption: identically sized sets, Jaccard 1/3 (50%
//! overlap), raw estimates with no collision correction, mean relative
//! error (maximum possible value 2).

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::jaccard::{jaccard, CollisionCorrection};
use hmh_core::HmhParams;
use hmh_math::stats::relative_error;
use hmh_math::Welford;
use hmh_simulate::minhash_sim::simulate_kpartition_pair;
use hmh_simulate::{simulate_hmh_pair, SimSpec};

/// The cardinality sweep: powers of two, 2^4 … 2^24.
pub fn cardinalities(quick: bool) -> Vec<f64> {
    let step = if quick { 4 } else { 1 };
    (4..=24).step_by(step).map(|e| 2f64.powi(e)).collect()
}

/// Run the experiment.
pub fn run(cfg: &Config) -> Table {
    let truth = 1.0 / 3.0;
    let hmh_params = HmhParams::figure6(); // p=8, q=4, r=4 → 256 B
    let mut table = Table::new(
        "Figure 6: mean relative error of Jaccard(J=1/3) vs cardinality, 256-byte sketches",
        &["n", "hmh_p8_q4_r4", "minhash_256x8", "minhash_128x16"],
    );
    for (i, n) in cardinalities(cfg.quick).into_iter().enumerate() {
        let mut rng = cfg.rng(i as u64);
        let spec = SimSpec::equal_sized_with_jaccard(n, truth);
        let (mut e_hmh, mut e_mh8, mut e_mh16) = (Welford::new(), Welford::new(), Welford::new());
        for _ in 0..cfg.trials {
            let (a, b) = simulate_hmh_pair(hmh_params, spec, &mut rng);
            let est = jaccard(&a, &b, CollisionCorrection::None).expect("same params").raw;
            e_hmh.add(relative_error(est, truth));

            let (a, b) = simulate_kpartition_pair(8, 8, spec, &mut rng);
            e_mh8.add(relative_error(a.jaccard(&b).expect("same params"), truth));

            let (a, b) = simulate_kpartition_pair(7, 16, spec, &mut rng);
            e_mh16.add(relative_error(a.jaccard(&b).expect("same params"), truth));
        }
        table.push_row(vec![
            format!("2^{}", (n.log2()) as u32),
            fnum(e_hmh.mean()),
            fnum(e_mh8.mean()),
            fnum(e_mh16.mean()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        // Smoke-scale run; assert the qualitative claims, not absolutes.
        let cfg = Config { trials: 12, seed: 99, quick: false };
        let t = run(&cfg);
        let col_n = 0usize;
        let find = |power: &str| -> usize {
            (0..t.num_rows()).find(|&r| t.cell(r, col_n) == power).expect("row present")
        };
        let hmh = t.col("hmh_p8_q4_r4");
        let mh8 = t.col("minhash_256x8");
        let mh16 = t.col("minhash_128x16");

        // Low cardinality (2^8): all three behave, 8-bit variants similar.
        let r = find("2^8");
        assert!(t.cell_f64(r, hmh) < 0.25);
        assert!(t.cell_f64(r, mh8) < 0.25);

        // 2^16: the 8-bit MinHash has failed (error near the max of 2 —
        // "fails once cardinalities approach 2^14"), HMH fine.
        let r = find("2^16");
        assert!(t.cell_f64(r, mh8) > 0.6, "mh8 at 2^16: {}", t.cell_f64(r, mh8));
        assert!(t.cell_f64(r, hmh) < 0.3, "hmh at 2^16: {}", t.cell_f64(r, hmh));

        // 2^22: the 16-bit MinHash is degrading ("can access larger
        // cardinalities of around 2^20"); HMH still flat.
        let r = find("2^22");
        assert!(t.cell_f64(r, mh16) > 0.25, "mh16 at 2^22: {}", t.cell_f64(r, mh16));
        assert!(t.cell_f64(r, hmh) < 0.3, "hmh at 2^22: {}", t.cell_f64(r, hmh));

        // 2^24: the 16-bit MinHash has failed outright; HMH (cap = 15,
        // one octave below the paper's idealized 16) is past its own
        // plateau edge but still far better.
        let r = find("2^24");
        assert!(t.cell_f64(r, mh16) > 0.8, "mh16 at 2^24: {}", t.cell_f64(r, mh16));
        assert!(
            t.cell_f64(r, hmh) < t.cell_f64(r, mh16) / 2.0,
            "hmh at 2^24: {}",
            t.cell_f64(r, hmh)
        );
    }
}
