//! **Algorithm 3** — cardinality estimation across 19 decades, with the
//! design ablations DESIGN.md calls out: the HLL-head estimator choice
//! (FFGM07 vs Ertl-improved vs MLE) and the head→tail switch at
//! `1024·2^p`.

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::cardinality::{tail_estimate, CardinalityEstimator};
use hmh_core::HmhParams;
use hmh_hll::estimators::EstimatorKind;
use hmh_math::stats::relative_error;
use hmh_math::Welford;
use hmh_simulate::simulate_hmh_single;

/// Run the decade sweep with per-estimator columns.
pub fn run(cfg: &Config) -> Table {
    let params = HmhParams::headline();
    let mut table = Table::new(
        format!("Algorithm 3 cardinality accuracy, {params} (relative error)"),
        &["n", "ffgm", "ertl_improved", "ertl_mle", "tail_only", "alg3_default"],
    );
    let exponents: Vec<i32> = if cfg.quick { vec![2, 8, 14, 19] } else { (1..=19).collect() };
    for (i, e) in exponents.into_iter().enumerate() {
        let n = 10f64.powi(e);
        let mut rng = cfg.rng(i as u64 + 6000);
        let mut errs = [
            Welford::new(), // ffgm head only
            Welford::new(), // improved head only
            Welford::new(), // mle head only
            Welford::new(), // tail only
            Welford::new(), // full Algorithm 3 (default config)
        ];
        for _ in 0..cfg.trials {
            let sketch = simulate_hmh_single(params, n, &mut rng);
            let hist = sketch.counter_histogram();
            errs[0].add(relative_error(hmh_hll::estimators::ffgm(&hist), n));
            errs[1].add(relative_error(hmh_hll::estimators::ertl_improved(&hist), n));
            errs[2].add(relative_error(hmh_hll::estimators::ertl_mle(&hist), n));
            errs[3].add(relative_error(tail_estimate(&sketch), n));
            errs[4].add(relative_error(
                CardinalityEstimator { hll_estimator: EstimatorKind::ErtlImproved, tail_threshold_factor: 1024.0 }
                    .estimate(&sketch),
                n,
            ));
        }
        table.push_row(vec![
            format!("1e{e}"),
            fnum(errs[0].mean()),
            fnum(errs[1].mean()),
            fnum(errs[2].mean()),
            fnum(errs[3].mean()),
            fnum(errs[4].mean()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_is_calibrated_across_decades() {
        let cfg = Config { trials: 6, seed: 13, quick: true };
        let t = run(&cfg);
        let c = t.col("alg3_default");
        for row in 0..t.num_rows() {
            let re = t.cell_f64(row, c);
            assert!(re < 0.15, "row {row} ({}) error {re}", t.cell(row, 0));
        }
    }

    #[test]
    fn tail_only_is_poor_at_small_n_but_fine_at_huge_n() {
        let cfg = Config { trials: 6, seed: 14, quick: true };
        let t = run(&cfg);
        let tail = t.col("tail_only");
        let small = t.cell_f64(0, tail); // 1e2
        let huge = t.cell_f64(t.num_rows() - 1, tail); // 1e19
        assert!(huge < 0.05, "tail at 1e19: {huge}");
        assert!(small > huge * 3.0, "tail at 1e2 ({small}) should be much worse");
    }
}
