//! **§1.3–1.4 b-bit MinHash comparison** — two claims:
//!
//! 1. For plain two-set Jaccard, b-bit MinHash matches HyperMinHash at
//!    similar byte budgets (both are ~`O(ε⁻²)` fingerprints there).
//! 2. b-bit MinHash "sketches cannot be merged together" — composed
//!    queries like `|(A ∪ B) ∩ C|` are impossible. We demonstrate by
//!    evaluating that query with HyperMinHash (works) and with the naive
//!    register-wise-min "merge" of b-bit fingerprints (garbage): the
//!    low bits of two minima say nothing about the low bits of the min.

use super::Config;
use crate::table::{fnum, Table};
use hmh_core::HmhParams;
use hmh_hash::RandomOracle;
use hmh_math::stats::relative_error;
use hmh_math::Welford;
use hmh_minhash::{BBitMinHash, KHashMinHash};
use hmh_workloads::pairs::{pair_with_overlap, OverlapSpec};

/// Pairwise accuracy: b-bit (k=2048, b=2 → 512 B) vs HyperMinHash
/// (p=8, q=6, r=10 → 512 B), inserted sets (not simulated — b-bit needs
/// full-width construction, which is part of the point).
pub fn run_pairwise(cfg: &Config) -> Table {
    let hmh_params = HmhParams::new(8, 6, 10).expect("valid");
    let (k, b) = (2048usize, 2u32);
    let n = 20_000u64;
    let mut table = Table::new(
        "Pairwise Jaccard: b-bit MinHash (2048×2b = 512 B) vs HyperMinHash (2^8×16b = 512 B), n = 20k",
        &["jaccard", "bbit_re", "hmh_re"],
    );
    let targets: Vec<f64> = if cfg.quick { vec![0.1, 0.5] } else { vec![0.05, 0.1, 0.2, 0.333, 0.5, 0.8] };
    let trials = cfg.trials.min(8); // insertion-heavy (k-hash MinHash is Θ(nk))
    for (i, t) in targets.into_iter().enumerate() {
        let spec = OverlapSpec::equal_sized_with_jaccard(n, t);
        let truth = spec.jaccard();
        let (mut bb_err, mut hmh_err) = (Welford::new(), Welford::new());
        for trial in 0..trials {
            let seed = cfg.seed ^ (i as u64 * 131 + trial);
            let (items_a, items_b) = pair_with_overlap(spec, seed);
            let oracle = RandomOracle::with_seed(seed);

            let mut mh_a = KHashMinHash::new(k, oracle);
            let mut mh_b = KHashMinHash::new(k, oracle);
            let mut hmh_a = hmh_core::HyperMinHash::with_oracle(hmh_params, oracle);
            let mut hmh_b = hmh_core::HyperMinHash::with_oracle(hmh_params, oracle);
            for &x in &items_a {
                mh_a.insert(&x);
                hmh_a.insert(&x);
            }
            for &x in &items_b {
                mh_b.insert(&x);
                hmh_b.insert(&x);
            }
            let fa = BBitMinHash::from_minhash(&mh_a, b);
            let fb = BBitMinHash::from_minhash(&mh_b, b);
            bb_err.add(relative_error(fa.jaccard(&fb).expect("same build"), truth));
            let est = hmh_a.jaccard(&hmh_b).expect("same params");
            hmh_err.add(relative_error(est.estimate, truth));
        }
        table.push_row(vec![fnum(truth), fnum(bb_err.mean()), fnum(hmh_err.mean())]);
    }
    table
}

/// Composability: evaluate `|(A ∪ B) ∩ C|` with HyperMinHash vs the naive
/// b-bit "merge" (register-wise min of fingerprints — the only merge a
/// fingerprint admits, and a wrong one).
pub fn run_composition(cfg: &Config) -> Table {
    let hmh_params = HmhParams::new(10, 6, 10).expect("valid");
    let n = 30_000u64;
    // A = [0, n), B = [n/2, 3n/2), C = [n, 2n):
    // A∪B = [0, 3n/2); (A∪B) ∩ C = [n, 3n/2) → n/2.
    let truth = n as f64 / 2.0;
    let (k, b) = (2048usize, 4u32);
    let mut table = Table::new(
        "Composed query |(A∪B) ∩ C|, truth = n/2: HyperMinHash vs naive b-bit merge",
        &["trial", "hmh_estimate", "hmh_re", "bbit_naive_jaccard", "bbit_note"],
    );
    let trials = cfg.trials.min(6);
    for trial in 0..trials {
        let oracle = RandomOracle::with_seed(cfg.seed ^ (trial + 77));
        let mut hmh = [
            hmh_core::HyperMinHash::with_oracle(hmh_params, oracle),
            hmh_core::HyperMinHash::with_oracle(hmh_params, oracle),
            hmh_core::HyperMinHash::with_oracle(hmh_params, oracle),
        ];
        let mut mh = [
            KHashMinHash::new(k, oracle),
            KHashMinHash::new(k, oracle),
            KHashMinHash::new(k, oracle),
        ];
        let ranges = [(0, n), (n / 2, 3 * n / 2), (n, 2 * n)];
        for (idx, &(lo, hi)) in ranges.iter().enumerate() {
            for x in lo..hi {
                hmh[idx].insert(&x);
                mh[idx].insert(&x);
            }
        }
        // HyperMinHash: union then intersect — the supported path.
        let ab = hmh[0].union(&hmh[1]).expect("same params");
        let est = ab.intersection(&hmh[2]).expect("same params");

        // b-bit: fingerprints of A and B, then the only "merge" available
        // — register-wise min of the b-bit values — then Jaccard vs C's
        // fingerprint. The true Jaccard((A∪B), C) = (n/2)/2n = 0.25.
        let fa = BBitMinHash::from_minhash(&mh[0], b);
        let fb = BBitMinHash::from_minhash(&mh[1], b);
        let fc = BBitMinHash::from_minhash(&mh[2], b);
        let naive = naive_bbit_merge_jaccard(&fa, &fb, &fc);

        table.push_row(vec![
            format!("{trial}"),
            fnum(est.intersection),
            fnum(relative_error(est.intersection, truth)),
            fnum(naive),
            "true J((A∪B),C)=0.25".into(),
        ]);
    }
    table
}

/// The wrong merge a b-bit fingerprint forces: register-wise min of the
/// truncated values, compared against the third fingerprint.
fn naive_bbit_merge_jaccard(a: &BBitMinHash, b: &BBitMinHash, c: &BBitMinHash) -> f64 {
    // Reconstruct registers through the public API: jaccard() only gives
    // the corrected match rate, so recompute from a merged clone. The
    // BBitMinHash type deliberately offers no union; we model the naive
    // attempt here in the experiment instead.
    let k = a.k();
    let mut matches = 0usize;
    for i in 0..k {
        let merged = a.register(i).min(b.register(i));
        if merged == c.register(i) {
            matches += 1;
        }
    }
    let m = matches as f64 / k as f64;
    let coll = 2f64.powi(-(a.b() as i32));
    ((m - coll) / (1.0 - coll)).clamp(0.0, 1.0)
}

/// Run both parts.
pub fn run(cfg: &Config) -> Vec<Table> {
    vec![run_pairwise(cfg), run_composition(cfg)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbit_matches_hmh_pairwise_but_fails_composition() {
        let cfg = Config { trials: 4, seed: 21, quick: true };
        let pairwise = run_pairwise(&cfg);
        for row in 0..pairwise.num_rows() {
            let bb = pairwise.cell_f64(row, pairwise.col("bbit_re"));
            let hmh = pairwise.cell_f64(row, pairwise.col("hmh_re"));
            // Same ballpark pairwise (within 4x either way at smoke scale).
            assert!(bb < 4.0 * hmh.max(0.02) && hmh < 4.0 * bb.max(0.02),
                "row {row}: bbit {bb} vs hmh {hmh}");
        }

        let comp = run_composition(&cfg);
        for row in 0..comp.num_rows() {
            let hmh_re = comp.cell_f64(row, comp.col("hmh_re"));
            assert!(hmh_re < 0.15, "HMH composed query error {hmh_re}");
            let naive = comp.cell_f64(row, comp.col("bbit_naive_jaccard"));
            // Truth is 0.25; the naive merge lands systematically far off
            // (>20% relative error — the low bits of two minima carry no
            // information about the low bits of the min), while the HMH
            // path above stays within its sampling noise.
            assert!(
                (naive / 0.25 - 1.0).abs() > 0.2,
                "naive b-bit merge accidentally worked: {naive}"
            );
            assert!(hmh_re < (naive / 0.25 - 1.0).abs(),
                "HMH ({hmh_re}) must beat the naive merge ({naive})");
        }
    }
}
