//! Aligned text tables + CSV output for experiment results.

use std::fmt::Write as _;

/// A simple column-aligned results table that can also render as CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (row, column) as text.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Cell parsed as `f64` (panics on non-numeric cells — experiment
    /// assertions only).
    pub fn cell_f64(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col].parse().unwrap_or_else(|_| {
            panic!("cell ({row},{col}) = {:?} is not numeric", self.rows[row][col])
        })
    }

    /// Column index by header name.
    pub fn col(&self, header: &str) -> usize {
        self.headers
            .iter()
            .position(|h| h == header)
            .unwrap_or_else(|| panic!("no column {header:?}"))
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as CSV (RFC-4180-lite: quotes only when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Format a float compactly: scientific for extremes, fixed otherwise.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if !v.is_finite() {
        format!("{v}")
    } else if v.abs() >= 1e6 || v.abs() < 1e-4 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_aligns_columns() {
        let mut t = Table::new("demo", &["n", "error"]);
        t.push_row(vec!["16".into(), "0.05".into()]);
        t.push_row(vec!["1048576".into(), "0.5".into()]);
        let text = t.render();
        assert!(text.contains("# demo"));
        assert!(text.lines().count() >= 4);
        // Right-aligned numbers: the "16" line must pad to width 7.
        assert!(text.contains("     16"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn accessors() {
        let mut t = Table::new("x", &["n", "e"]);
        t.push_row(vec!["10".into(), "0.25".into()]);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.col("e"), 1);
        assert_eq!(t.cell(0, 0), "10");
        assert_eq!(t.cell_f64(0, 1), 0.25);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("x", &["a"]).push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234567), "0.1235");
        assert_eq!(fnum(1e19), "1.000e19");
        assert_eq!(fnum(3.2e-9), "3.200e-9");
        assert_eq!(fnum(123.456), "123.5");
    }
}
