//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see EXPERIMENTS.md at the workspace root for the index and
//! the recorded paper-vs-measured outcomes).
//!
//! The `repro` binary (in `src/bin/repro.rs`) exposes one subcommand per
//! experiment; each experiment lives in [`experiments`] as a pure function
//! from a config to a [`table::Table`], so integration tests can run
//! scaled-down versions and assert on the shapes the paper claims.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

pub use table::Table;
