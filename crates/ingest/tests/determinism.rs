//! The ingest engine's headline contract: parallel sharded ingest
//! serializes **byte-identical** to a sequential build — across seeds,
//! thread counts, and batch sizes.
//!
//! Union is a bucket-wise register max (Algorithm 2), which is associative,
//! commutative and idempotent, so no partitioning of the stream and no
//! scheduler interleaving can change the merged result. These tests pin
//! that down at the strongest possible level: equality of the canonical
//! HMH1 wire encoding, not just estimator agreement.
//!
//! CI runs this file once per worker count with `HMH_INGEST_WORKERS` set
//! (the determinism matrix); an unset variable sweeps all of {1, 2, 4, 8}.

use hmh_core::{format, HmhParams, HyperMinHash};
use hmh_hash::{HashAlgorithm, RandomOracle};
use hmh_ingest::{ingest, IngestOptions};

fn p(p: u32, q: u32, r: u32) -> HmhParams {
    HmhParams::new(p, q, r).expect("valid test parameters")
}

/// Parameter grid: small/typical/wide register shapes.
fn parameter_sets() -> [HmhParams; 3] {
    [p(4, 3, 4), p(8, 6, 6), p(11, 6, 10)]
}

/// Worker counts under test: the CI matrix pins one via the environment;
/// a local `cargo test` sweeps all of them.
fn worker_counts() -> Vec<usize> {
    match std::env::var("HMH_INGEST_WORKERS") {
        Ok(v) => {
            let n = v.parse().expect("HMH_INGEST_WORKERS must be a worker count");
            assert!((1..=64).contains(&n), "HMH_INGEST_WORKERS out of range: {n}");
            vec![n]
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Deterministic item stream for one (seed, case) pair. SplitMix-style
/// mixing keeps streams distinct across seeds without a RNG dependency.
fn items(seed: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| mix(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i))).collect()
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sequential(params: HmhParams, oracle: RandomOracle, items: &[u64]) -> HyperMinHash {
    let mut s = HyperMinHash::with_oracle(params, oracle);
    for item in items {
        s.insert(item);
    }
    s
}

#[test]
fn parallel_encoding_is_byte_identical_to_sequential() {
    const SEEDS: u64 = 8;
    const N: usize = 4_000;
    for params in parameter_sets() {
        for seed in 0..SEEDS {
            let oracle = RandomOracle::with_seed(seed);
            let stream = items(seed, N);
            let expected = format::encode(&sequential(params, oracle, &stream));
            for workers in worker_counts() {
                for batch_size in [1, 7, 512] {
                    let opts = IngestOptions { workers, queue_depth: 4, batch_size };
                    let got = ingest(params, oracle, stream.iter().copied(), opts)
                        .expect("ingest pipeline failed");
                    assert_eq!(
                        format::encode(&got),
                        expected,
                        "divergence at params={params:?} seed={seed} \
                         workers={workers} batch_size={batch_size}"
                    );
                }
            }
        }
    }
}

#[test]
fn duplicated_and_reordered_streams_converge() {
    // Idempotence + commutativity end-to-end: feeding the stream twice,
    // reversed the second time, through differently-shaped pipelines still
    // reproduces the sequential single-pass encoding.
    let params = p(8, 6, 6);
    for seed in [3u64, 11] {
        let oracle = RandomOracle::with_seed(seed);
        let stream = items(seed, 2_000);
        let expected = format::encode(&sequential(params, oracle, &stream));
        for workers in worker_counts() {
            let opts = IngestOptions { workers, queue_depth: 2, batch_size: 64 };
            let doubled = stream.iter().copied().chain(stream.iter().rev().copied());
            let got = ingest(params, oracle, doubled, opts).expect("ingest pipeline failed");
            assert_eq!(format::encode(&got), expected, "seed={seed} workers={workers}");
        }
    }
}

#[test]
fn every_oracle_algorithm_is_deterministic_under_parallel_ingest() {
    let params = p(6, 4, 6);
    let algorithms = [
        HashAlgorithm::Murmur3,
        HashAlgorithm::Sha1,
        HashAlgorithm::XxPair,
        HashAlgorithm::SplitMix,
    ];
    for algorithm in algorithms {
        let oracle = RandomOracle::new(algorithm, 42);
        let stream = items(99, 1_500);
        let expected = format::encode(&sequential(params, oracle, &stream));
        for workers in worker_counts() {
            let opts = IngestOptions { workers, queue_depth: 4, batch_size: 128 };
            let got = ingest(params, oracle, stream.iter().copied(), opts)
                .expect("ingest pipeline failed");
            assert_eq!(format::encode(&got), expected, "{algorithm:?} workers={workers}");
        }
    }
}
