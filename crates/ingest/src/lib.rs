//! Parallel sharded ingest for HyperMinHash sketches.
//!
//! The paper's union (Algorithm 2) is lossless: a bucket-wise register max.
//! Register max is associative, commutative and idempotent, so ingest is
//! embarrassingly data-parallel — partition the stream arbitrarily across
//! worker threads, let each build a private *shard* sketch, and merge the
//! shards at the end. The result is **bit-for-bit identical** to a
//! sequential build of the same items, no matter how the scheduler
//! interleaves the workers or how the stream is batched.
//!
//! [`IngestEngine`] is that pipeline: a bounded MPSC work queue (blocking
//! `submit` is the backpressure) feeding N `std::thread` workers, each
//! owning one shard and draining batches through the
//! [`insert_batch`](hmh_core::HyperMinHash::insert_batch) fast path.
//! [`IngestEngine::finish`] closes the queue, joins the workers, and folds
//! the shards with the lossless merge.
//!
//! ```
//! use hmh_core::{HmhParams, HyperMinHash};
//! use hmh_hash::RandomOracle;
//! use hmh_ingest::{ingest, IngestOptions};
//!
//! let params = HmhParams::new(8, 6, 6).unwrap();
//! let oracle = RandomOracle::with_seed(7);
//! let parallel = ingest(params, oracle, 0u64..10_000, IngestOptions::default()).unwrap();
//!
//! let mut sequential = HyperMinHash::with_oracle(params, oracle);
//! for item in 0u64..10_000 {
//!     sequential.insert(&item);
//! }
//! assert_eq!(parallel, sequential);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};

use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::{HashableItem, RandomOracle};

/// Tuning knobs for the ingest pipeline.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Worker threads, each owning one shard sketch. Clamped to ≥ 1.
    pub workers: usize,
    /// Maximum batches queued ahead of the workers. `submit` blocks once
    /// the queue is full — this bound is the producer backpressure and
    /// caps queue memory at `queue_depth × batch bytes`. Clamped to ≥ 1.
    pub queue_depth: usize,
    /// Items per batch used by the [`ingest`] convenience driver. Larger
    /// batches amortize queue locking; smaller ones spread short streams
    /// across more workers. Clamped to ≥ 1.
    pub batch_size: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self { workers: 4, queue_depth: 8, batch_size: 1024 }
    }
}

impl IngestOptions {
    /// Options with `workers` threads and the default queue bounds.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers, ..Self::default() }
    }
}

/// Why an ingest pipeline failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// A worker thread panicked; the pipeline is closed and its partial
    /// result discarded. (Sketch insertion itself never panics — this can
    /// only come from a panicking [`HashableItem`] encoding.)
    WorkerPanicked,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::WorkerPanicked => write!(f, "an ingest worker thread panicked"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Queue state behind the mutex: pending batches plus the two flags that
/// end the pipeline (`closed` = drain then exit; `failed` = a worker died).
struct State<T> {
    queue: VecDeque<Vec<T>>,
    closed: bool,
    failed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// Lock the queue, recovering from poisoning: the state is a plain
/// `VecDeque` plus two flags, valid at every instruction, so a panic while
/// holding the lock cannot leave it logically corrupt.
fn lock<T>(shared: &Shared<T>) -> MutexGuard<'_, State<T>> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Flags the pipeline as failed if the owning worker unwinds, so blocked
/// producers wake with an error instead of hanging on a queue that will
/// never drain.
struct FailGuard<T> {
    shared: Arc<Shared<T>>,
    armed: bool,
}

impl<T> Drop for FailGuard<T> {
    fn drop(&mut self) {
        if self.armed {
            let mut state = lock(&self.shared);
            state.failed = true;
            state.closed = true;
            drop(state);
            self.shared.not_full.notify_all();
            self.shared.not_empty.notify_all();
        }
    }
}

/// A running parallel ingest pipeline.
///
/// Producers call [`submit`](Self::submit) with batches of items (blocking
/// when the bounded queue is full); [`finish`](Self::finish) drains the
/// queue, joins the workers, and returns the merged sketch.
pub struct IngestEngine<T> {
    shared: Arc<Shared<T>>,
    workers: Vec<JoinHandle<HyperMinHash>>,
    params: HmhParams,
    oracle: RandomOracle,
}

impl<T: HashableItem + Send + 'static> IngestEngine<T> {
    /// Start a pipeline: spawn the worker threads, each with an empty
    /// private shard built from the same `(params, oracle)` pair.
    pub fn new(params: HmhParams, oracle: RandomOracle, opts: IngestOptions) -> Self {
        let workers = opts.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), closed: false, failed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: opts.queue_depth.max(1),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker(shared, params, oracle))
            })
            .collect();
        Self { shared, workers: handles, params, oracle }
    }

    /// Enqueue one batch, blocking while the queue is at capacity.
    ///
    /// Empty batches are dropped without queueing. Fails only if a worker
    /// has panicked — the queue would never drain, so blocking further
    /// producers would deadlock them.
    pub fn submit(&self, batch: Vec<T>) -> Result<(), IngestError> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut state = lock(&self.shared);
        while state.queue.len() >= self.shared.capacity && !state.failed {
            state = self.shared.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        if state.failed {
            return Err(IngestError::WorkerPanicked);
        }
        state.queue.push_back(batch);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Close the queue, wait for the workers to drain it, and fold their
    /// shards with the lossless register-max merge.
    ///
    /// The result is bit-for-bit identical to inserting every submitted
    /// item into one sketch sequentially, in any order.
    pub fn finish(self) -> Result<HyperMinHash, IngestError> {
        {
            let mut state = lock(&self.shared);
            state.closed = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        let mut merged = HyperMinHash::with_oracle(self.params, self.oracle);
        let mut failed = false;
        for handle in self.workers {
            match handle.join() {
                Ok(shard) => merged
                    .merge(&shard)
                    .expect("invariant: every shard shares this engine's params and oracle"),
                Err(_) => failed = true,
            }
        }
        if failed {
            return Err(IngestError::WorkerPanicked);
        }
        Ok(merged)
    }
}

/// Worker loop: pop batches until the queue is closed *and* empty, feeding
/// a private shard through the batch fast path.
fn worker<T: HashableItem>(
    shared: Arc<Shared<T>>,
    params: HmhParams,
    oracle: RandomOracle,
) -> HyperMinHash {
    let mut guard = FailGuard { shared: Arc::clone(&shared), armed: true };
    let mut shard = HyperMinHash::with_oracle(params, oracle);
    loop {
        let batch = {
            let mut state = lock(&shared);
            loop {
                if let Some(batch) = state.queue.pop_front() {
                    break Some(batch);
                }
                if state.closed {
                    break None;
                }
                state = shared.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        };
        match batch {
            Some(batch) => {
                shared.not_full.notify_one();
                shard.insert_batch(&batch);
            }
            None => break,
        }
    }
    guard.armed = false;
    shard
}

/// Ingest an item stream with `opts.workers` threads and return the merged
/// sketch: chunks the stream into `opts.batch_size` batches, submits them
/// under backpressure, and drains.
pub fn ingest<T, I>(
    params: HmhParams,
    oracle: RandomOracle,
    items: I,
    opts: IngestOptions,
) -> Result<HyperMinHash, IngestError>
where
    T: HashableItem + Send + 'static,
    I: IntoIterator<Item = T>,
{
    let batch_size = opts.batch_size.max(1);
    let engine = IngestEngine::new(params, oracle, opts);
    let mut batch = Vec::with_capacity(batch_size);
    for item in items {
        batch.push(item);
        if batch.len() == batch_size {
            engine.submit(std::mem::replace(&mut batch, Vec::with_capacity(batch_size)))?;
        }
    }
    engine.submit(batch)?;
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HmhParams {
        HmhParams::new(8, 6, 6).unwrap()
    }

    fn sequential(n: u64) -> HyperMinHash {
        let mut s = HyperMinHash::with_oracle(params(), RandomOracle::with_seed(1));
        for i in 0..n {
            s.insert(&i);
        }
        s
    }

    #[test]
    fn parallel_matches_sequential() {
        let got = ingest(
            params(),
            RandomOracle::with_seed(1),
            0u64..20_000,
            IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(got, sequential(20_000));
    }

    #[test]
    fn single_worker_and_tiny_queue_still_complete() {
        let opts = IngestOptions { workers: 1, queue_depth: 1, batch_size: 3 };
        let got = ingest(params(), RandomOracle::with_seed(1), 0u64..1_000, opts).unwrap();
        assert_eq!(got, sequential(1_000));
    }

    #[test]
    fn zero_worker_request_is_clamped_to_one() {
        let opts = IngestOptions { workers: 0, queue_depth: 0, batch_size: 0 };
        let got = ingest(params(), RandomOracle::with_seed(1), 0u64..100, opts).unwrap();
        assert_eq!(got, sequential(100));
    }

    #[test]
    fn empty_stream_yields_empty_sketch() {
        let got = ingest(
            params(),
            RandomOracle::with_seed(1),
            std::iter::empty::<u64>(),
            IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(got, HyperMinHash::with_oracle(params(), RandomOracle::with_seed(1)));
    }

    #[test]
    fn manual_submit_of_uneven_batches_matches_sequential() {
        let engine = IngestEngine::new(
            params(),
            RandomOracle::with_seed(1),
            IngestOptions { workers: 3, queue_depth: 2, batch_size: 1 },
        );
        let mut next = 0u64;
        for size in [1u64, 999, 7, 0, 2_000, 13] {
            engine.submit((next..next + size).collect()).unwrap();
            next += size;
        }
        assert_eq!(engine.finish().unwrap(), sequential(next));
    }

    /// An item whose byte encoding panics, to drive the worker-failure
    /// path: producers must error out, not hang on a dead queue.
    struct Bomb;

    impl HashableItem for Bomb {
        fn write_bytes(&self, _out: &mut Vec<u8>) -> usize {
            panic!("bomb item");
        }
    }

    #[test]
    fn worker_panic_surfaces_as_error_not_hang() {
        let engine = IngestEngine::<Bomb>::new(
            params(),
            RandomOracle::with_seed(1),
            IngestOptions { workers: 2, queue_depth: 1, batch_size: 1 },
        );
        // Feed bombs until the failure propagates back to submit; the
        // queue bound guarantees this terminates (each worker dies on its
        // first batch, after which nothing drains the queue).
        let mut saw_error = false;
        for _ in 0..64 {
            if engine.submit(vec![Bomb]).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "submit must fail once the workers are dead");
        assert_eq!(engine.finish(), Err(IngestError::WorkerPanicked));
    }

    #[test]
    fn error_displays() {
        assert!(IngestError::WorkerPanicked.to_string().contains("panicked"));
    }
}
