//! Two-phase rebalance: move sketches to their new ring owners without
//! ever leaving one unowned.
//!
//! A ring change (group added, removed, or re-weighted) reassigns some
//! names to new owner groups. Because the paper's union (Algorithm 2)
//! is an idempotent, commutative, associative per-register max, *moving*
//! a sketch is just *merging* it somewhere else and deleting the
//! original — and every step of that is safe to crash in and safe to
//! repeat:
//!
//! 1. **Copy.** For every name whose new owner differs from the group
//!    currently holding it, pull the payload from *each* source replica
//!    (replicas may be mid-anti-entropy and hold different register
//!    states; the union over all of them is the sketch) and MERGE it
//!    into *every* destination replica.
//! 2. **Verify.** A destination replica holds the move only when its
//!    stored payload *dominates* each source payload: folding the
//!    source bytes into the destination's decoded sketch and re-encoding
//!    must reproduce the destination's bytes exactly (encoding is
//!    canonical, so domination is byte-testable). Every destination
//!    replica must pass.
//! 3. **Release.** Only then delete the name from each source replica —
//!    and re-check, because the source group's own anti-entropy can
//!    resurrect a name deleted from one replica while it still lives on
//!    another. The release loop deletes until every source replica
//!    agrees the name is gone, bounded by attempts and paced by the
//!    store's backoff schedule.
//!
//! A crash at any point leaves every sketch owned by at least one
//! group: before release completes, the source still holds it; after,
//! the destination provably does. Re-running the whole rebalance is
//! idempotent — copied names re-verify trivially, released names no
//! longer appear in source digests. Duplicated handoffs (the same move
//! replayed concurrently or after a partial run) are absorbed by merge
//! idempotence; the chaos suite replays them on purpose.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::net::SocketAddr;
use std::time::Duration;

use hmh_core::format;
use hmh_replica::{fetch_digests, SyncError};
use hmh_serve::proto::{Request, Response};
use hmh_serve::{typed_response, Client, ClientError, ClientOptions, MAX_PIPELINE_DEPTH, MAX_SYNC_NAMES};
use hmh_store::RetryPolicy;

use crate::ring::{Ring, RingError};

/// Rebalance configuration.
#[derive(Debug, Clone)]
pub struct RebalanceOptions {
    /// Connection options for every shard client.
    pub client: ClientOptions,
    /// Attempts per name in the release loop before giving up (each
    /// attempt deletes from every source replica still holding it).
    pub release_attempts: u32,
    /// Pacing between release attempts (the store's jittered backoff
    /// schedule, so concurrent rebalances decorrelate).
    pub pacing: RetryPolicy,
}

impl Default for RebalanceOptions {
    fn default() -> Self {
        let mut pacing = RetryPolicy::default();
        pacing.base_delay = Duration::from_millis(20);
        pacing.max_delay = Duration::from_millis(200);
        Self { client: ClientOptions::default(), release_attempts: 8, pacing }
    }
}

/// What a completed rebalance did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Names whose owner changed and that were found on a source group.
    pub moved: u64,
    /// Copy-verify-release cycles fully completed (the `route_handoffs`
    /// HEALTH counter counts these).
    pub handoffs: u64,
    /// Names that vanished from the source between digest and pull
    /// (deleted concurrently); nothing to move.
    pub vanished: u64,
}

/// Why a rebalance failed. Every failure leaves the cluster in a state
/// the invariant covers (each name owned by ≥ 1 group) and a re-run
/// picks up where the crash left off.
#[derive(Debug)]
pub enum RebalanceError {
    /// The new ring is invalid, or its epoch does not advance the old
    /// one (two configs with the same epoch but different membership is
    /// exactly the split-brain the epoch exists to prevent).
    Ring(String),
    /// Walking a source group's digests failed on every replica.
    Digests {
        /// The group whose digests could not be read.
        group: String,
        /// The last replica's error.
        detail: String,
    },
    /// Transport or server failure mid-copy.
    Client(ClientError),
    /// A source replica violated the sync protocol.
    Protocol(String),
    /// A destination replica failed to dominate the source payload
    /// after the copy (store refused the write, or answered with bytes
    /// that do not contain the source state).
    Verify {
        /// The name that failed verification.
        name: String,
        /// The destination replica.
        replica: SocketAddr,
        /// What went wrong.
        detail: String,
    },
    /// A source replica still held the name after every release
    /// attempt.
    Release {
        /// The name that could not be released.
        name: String,
        /// The replica still holding it.
        replica: SocketAddr,
    },
}

impl fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebalanceError::Ring(detail) => write!(f, "ring change rejected: {detail}"),
            RebalanceError::Digests { group, detail } => {
                write!(f, "cannot read digests of group {group:?}: {detail}")
            }
            RebalanceError::Client(e) => write!(f, "rebalance exchange failed: {e}"),
            RebalanceError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            RebalanceError::Verify { name, replica, detail } => {
                write!(f, "verify failed for {name:?} on {replica}: {detail}")
            }
            RebalanceError::Release { name, replica } => {
                write!(f, "release failed: {replica} still holds {name:?}")
            }
        }
    }
}

impl std::error::Error for RebalanceError {}

impl From<ClientError> for RebalanceError {
    fn from(e: ClientError) -> Self {
        RebalanceError::Client(e)
    }
}

impl From<SyncError> for RebalanceError {
    fn from(e: SyncError) -> Self {
        match e {
            SyncError::Client(e) => RebalanceError::Client(e),
            SyncError::Protocol(detail) => RebalanceError::Protocol(detail),
        }
    }
}

impl From<RingError> for RebalanceError {
    fn from(e: RingError) -> Self {
        RebalanceError::Ring(e.to_string())
    }
}

/// The moves a ring change implies for one group's stored names: those
/// whose new owner is a different group. Pure — the planning half of
/// the rebalance, separated so the property suite can pin movement
/// bounds without any network.
pub fn plan_moves<'a>(
    new_ring: &Ring,
    source_group_id: &str,
    stored_names: impl IntoIterator<Item = &'a str>,
) -> Vec<(String, usize)> {
    stored_names
        .into_iter()
        .filter_map(|name| {
            let new_owner = new_ring.owner_index(name);
            (new_ring.groups()[new_owner].id != source_group_id)
                .then(|| (name.to_string(), new_owner))
        })
        .collect()
}

/// Rebalance the cluster from `old_ring` to `new_ring`: every name
/// stored on a group that `new_ring` no longer assigns it to is copied
/// to its new owner group, verified, and released. Idempotent — safe to
/// re-run after a crash, a SIGKILL, or a duplicated invocation.
pub fn rebalance(
    old_ring: &Ring,
    new_ring: &Ring,
    opts: &RebalanceOptions,
) -> Result<RebalanceReport, RebalanceError> {
    if new_ring.epoch() <= old_ring.epoch() {
        return Err(RebalanceError::Ring(format!(
            "new epoch {} must advance old epoch {}",
            new_ring.epoch(),
            old_ring.epoch()
        )));
    }
    let mut report = RebalanceReport::default();
    // Walk every group of the *old* ring: those are the places sketches
    // can currently live. A group present in both rings keeps its
    // unmoved names untouched; a group absent from the new ring has all
    // its names moved off.
    for group in old_ring.groups() {
        let moved = group_moves(new_ring, &group.id, &group.replicas, opts)?;
        report.moved = report.moved.saturating_add(moved.len() as u64);
        for (name, new_owner) in moved {
            match handoff(&name, &group.replicas, new_ring.groups()[new_owner].replicas.as_slice(), opts)? {
                Handoff::Completed => report.handoffs = report.handoffs.saturating_add(1),
                Handoff::Vanished => report.vanished = report.vanished.saturating_add(1),
            }
        }
    }
    Ok(report)
}

/// Union of one group's stored names (digest walk across every replica
/// that answers), planned against the new ring. At least one replica
/// must answer — a group that is entirely down cannot donate its names,
/// and pretending it holds nothing would *silently skip* moves.
fn group_moves(
    new_ring: &Ring,
    group_id: &str,
    replicas: &[SocketAddr],
    opts: &RebalanceOptions,
) -> Result<Vec<(String, usize)>, RebalanceError> {
    let mut names: BTreeSet<String> = BTreeSet::new();
    let mut answered = false;
    let mut last_error = String::new();
    for &addr in replicas {
        let mut client = Client::with_options(addr, opts.client.clone());
        match fetch_digests(&mut client) {
            Ok(digests) => {
                answered = true;
                names.extend(digests.into_keys());
            }
            Err(e) => last_error = e.to_string(),
        }
    }
    if !answered {
        return Err(RebalanceError::Digests { group: group_id.to_string(), detail: last_error });
    }
    Ok(plan_moves(new_ring, group_id, names.iter().map(String::as_str)))
}

enum Handoff {
    Completed,
    Vanished,
}

/// One copy-verify-release cycle for one name.
fn handoff(
    name: &str,
    src_replicas: &[SocketAddr],
    dst_replicas: &[SocketAddr],
    opts: &RebalanceOptions,
) -> Result<Handoff, RebalanceError> {
    // -- Copy: pull the payload from every source replica that has it.
    let src_payloads = source_payloads(name, src_replicas, opts)?;
    if src_payloads.is_empty() {
        return Ok(Handoff::Vanished);
    }
    // All source payloads stream to each destination as pipelined MERGE
    // batches: one vectored write and one reply drain per window instead
    // of a round trip per source replica. Safe to replay on failure —
    // merge folds into a max-register lattice.
    let merges: Vec<Request> = src_payloads
        .values()
        .map(|payload| Request::Merge { name: name.to_string(), sketch: payload.clone() })
        .collect();
    for &dst in dst_replicas {
        let mut client = Client::with_options(dst, opts.client.clone());
        for window in merges.chunks(MAX_PIPELINE_DEPTH) {
            for reply in client.pipeline(window)? {
                match typed_response(reply)? {
                    Response::Ok => {}
                    other => {
                        return Err(RebalanceError::Client(ClientError::BadReply(format!(
                            "unexpected MERGE reply during handoff of {name:?}: {other:?}"
                        ))))
                    }
                }
            }
        }
    }

    // -- Verify: every destination replica's stored bytes must dominate
    // every source payload before anything is deleted.
    for &dst in dst_replicas {
        let mut client = Client::with_options(dst, opts.client.clone());
        let stored = client.get_raw(name)?;
        verify_dominates(name, dst, &stored, src_payloads.values())?;
    }

    // -- Release: delete from each source replica, then re-check; the
    // group's anti-entropy may resurrect the name from a replica we had
    // not deleted yet, so loop (bounded, paced) until all agree.
    let mut pacing = opts.pacing.clone();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let mut survivors = Vec::new();
        for &src in src_replicas {
            let mut client = Client::with_options(src, opts.client.clone());
            match client.delete(name) {
                Ok(()) | Err(ClientError::NotFound(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        for &src in src_replicas {
            let mut client = Client::with_options(src, opts.client.clone());
            match client.get_raw(name) {
                Ok(_) => survivors.push(src),
                Err(ClientError::NotFound(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        if survivors.is_empty() {
            return Ok(Handoff::Completed);
        }
        if attempt >= opts.release_attempts.max(1) {
            return Err(RebalanceError::Release { name: name.to_string(), replica: survivors[0] });
        }
        std::thread::sleep(pacing.backoff_delay(attempt));
    }
}

/// Encoded payloads for `name` from every source replica that holds it,
/// keyed by replica address. A replica that answers NOT_FOUND simply
/// contributes nothing; a transport failure is an error — skipping an
/// unreachable source replica could release a register state that was
/// never copied.
fn source_payloads(
    name: &str,
    src_replicas: &[SocketAddr],
    opts: &RebalanceOptions,
) -> Result<BTreeMap<SocketAddr, Vec<u8>>, RebalanceError> {
    let mut payloads = BTreeMap::new();
    for &src in src_replicas {
        let mut client = Client::with_options(src, opts.client.clone());
        // SYNC answers an empty payload for a vanished name, which is
        // exactly the "contributes nothing" case.
        let entries = client.sync(&[name.to_string()])?;
        match entries.as_slice() {
            [] => {
                return Err(RebalanceError::Protocol(
                    "empty SYNC reply to a one-name request".into(),
                ))
            }
            [entry] if entry.name == name => {
                if !entry.payload.is_empty() {
                    payloads.insert(src, entry.payload.clone());
                }
            }
            _ => {
                return Err(RebalanceError::Protocol(format!(
                    "SYNC reply does not match the one-name request for {name:?}"
                )))
            }
        }
    }
    Ok(payloads)
}

/// `stored` dominates `payload` iff folding `payload` into the decoded
/// `stored` sketch and re-encoding reproduces `stored` byte-for-byte
/// (encoding is canonical, registers are a max-lattice: absorbing an
/// already-dominated state is the identity).
fn verify_dominates<'a>(
    name: &str,
    replica: SocketAddr,
    stored: &[u8],
    payloads: impl Iterator<Item = &'a Vec<u8>>,
) -> Result<(), RebalanceError> {
    let verify_err = |detail: String| RebalanceError::Verify {
        name: name.to_string(),
        replica,
        detail,
    };
    let decoded =
        format::decode(stored).map_err(|e| verify_err(format!("stored bytes: {e}")))?;
    for payload in payloads {
        let source =
            format::decode(payload).map_err(|e| verify_err(format!("source bytes: {e}")))?;
        let mut folded = decoded.clone();
        folded.merge(&source).map_err(|e| verify_err(format!("incompatible: {e}")))?;
        if format::encode(&folded) != stored {
            return Err(verify_err(
                "destination does not dominate the source payload".into(),
            ));
        }
    }
    Ok(())
}

/// `MAX_SYNC_NAMES` is re-exported so drill scripts computing chunk
/// sizes agree with the engine.
pub const SYNC_CHUNK: usize = MAX_SYNC_NAMES;
