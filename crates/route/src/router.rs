//! The scatter-gather router: one `HMS1` endpoint over a ring of
//! replica groups.
//!
//! The router speaks the same wire protocol as a plain daemon, so every
//! existing client works unchanged — it just answers from a cluster:
//!
//! * **Name-keyed ops** (PUT, MERGE, BATCH_PUT, GET, CARD) forward to
//!   the ring owner's replica group through a [`FailoverClient`]; a
//!   group whose every replica is down answers a typed `UNAVAILABLE`,
//!   never a hang.
//! * **JACCARD** spanning two groups pulls both sketches and computes
//!   the estimate in the router — the same arithmetic a daemon runs,
//!   fed by two GETs.
//! * **LIST/HEALTH** scatter-gather across all groups. The paginated
//!   LIST degrades to a partial page (marked `partial: true`) when a
//!   group is unreachable; the legacy whole-store LIST has no way to
//!   mark a gap, so it fails typed instead of lying by omission.
//! * **DELETE** fans out to *every* replica of the owning group —
//!   deleting from one replica of a group is undone by the group's own
//!   anti-entropy.
//! * **DIGEST/SYNC** are refused: they are replica-to-replica
//!   anti-entropy ops, and routing them to "the cluster" has no
//!   meaning.
//!
//! Group liveness reuses the replica crate's healthy → suspect → down
//! ladder, one tracker per group, with down-state attempts backed off
//! in request rounds — a dead group costs each scatter a skip, not a
//! connect timeout.

use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use hmh_replica::PeerTracker;
use hmh_serve::proto::{
    decode_request_budget, encode_response, write_frame, write_frames_vectored, ErrCode,
    FrameBuffer, FrameError, Health, Request, Response, ScrubReport, MAX_FRAME_LEN,
    MAX_LIST_NAMES, MAX_PIPELINE_DEPTH, MAX_SCRUB_PAGE,
};
use hmh_serve::{
    typed_response, Client, ClientError, ClientOptions, FailoverClient, RetryBudget,
};

use crate::ring::Ring;

/// How often blocked loops re-check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(5);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouteOptions {
    /// Worker threads handling client connections.
    pub workers: usize,
    /// Accept-queue depth; connections beyond it are shed with BUSY.
    pub queue_depth: usize,
    /// Per-connection read deadline on the client side.
    pub read_timeout: Duration,
    /// Per-connection write deadline on the client side.
    pub write_timeout: Duration,
    /// Frame body ceiling for client frames.
    pub max_frame: usize,
    /// Options for the shard-facing clients. These deadlines are the
    /// per-shard budget: a scatter-gather waits at most one failed
    /// shard exchange per group, never unboundedly.
    pub shard: ClientOptions,
    /// Failover attempt budget per group per operation.
    pub shard_attempts: u32,
    /// Ceiling in rounds on the down-group attempt backoff.
    pub backoff_cap: u64,
}

impl Default for RouteOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 16,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_frame: MAX_FRAME_LEN,
            shard: ClientOptions::default(),
            shard_attempts: 0, // 0 = one per replica plus one
            backoff_cap: hmh_replica::BACKOFF_CAP_ROUNDS,
        }
    }
}

/// Why the router could not start.
#[derive(Debug)]
pub enum RouteError {
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Io(e) => write!(f, "cannot start router: {e}"),
        }
    }
}

impl std::error::Error for RouteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouteError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for RouteError {
    fn from(e: std::io::Error) -> Self {
        RouteError::Io(e)
    }
}

/// Shared per-group liveness: one tracker per group, advanced in
/// request rounds (each handled request is one round, so a down group's
/// backoff expires after a bounded number of requests, not wall-clock).
struct Liveness {
    trackers: Vec<Mutex<PeerTracker>>,
    round: AtomicU64,
}

impl Liveness {
    fn new(ring: &Ring, backoff_cap: u64) -> Self {
        let trackers = ring
            .groups()
            .iter()
            .map(|g| Mutex::new(PeerTracker::new(g.id.clone()).with_backoff_cap(backoff_cap)))
            .collect();
        Self { trackers, round: AtomicU64::new(1) }
    }

    fn tracker(&self, group: usize) -> MutexGuard<'_, PeerTracker> {
        self.trackers[group].lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn should_attempt(&self, group: usize) -> bool {
        let round = self.round.load(Ordering::Relaxed);
        self.tracker(group).should_attempt(round)
    }

    fn record(&self, group: usize, ok: bool) {
        let round = self.round.load(Ordering::Relaxed);
        let mut tracker = self.tracker(group);
        if ok {
            tracker.record_success(round, 0);
        } else {
            tracker.record_failure(round);
        }
    }
}

struct Shared {
    ring: Ring,
    liveness: Liveness,
    /// Accepted connections stamped with their accept time, so dequeue
    /// can expire requests whose deadline died waiting for a worker.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    wake: Condvar,
    shutdown: AtomicBool,
    shed: AtomicU64,
    served: AtomicU64,
    /// Requests answered EXPIRED by the router itself (dequeue-time) or
    /// relayed from a shard's typed EXPIRED.
    expired: AtomicU64,
    active: AtomicU32,
    handoffs: Arc<AtomicU64>,
    /// Operations refused because a whole group's breakers were open;
    /// shared with every worker's `FailoverClient`s.
    breaker_refusals: Arc<AtomicU64>,
    /// The router-wide retry budget every shard client draws from (also
    /// present in `opts.shard.budget`; kept here for HEALTH reporting).
    budget: Arc<RetryBudget>,
    opts: RouteOptions,
}

impl Shared {
    fn queue(&self) -> MutexGuard<'_, VecDeque<(TcpStream, Instant)>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running router. Same lifecycle surface as the daemon's
/// `ServerHandle`: drop signals shutdown, [`RouterHandle::join`] drains.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The address actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown without waiting.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
    }

    /// Signal shutdown and wait for every thread to drain.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// True once every thread has exited (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.threads.iter().all(thread::JoinHandle::is_finished)
    }

    /// The handoff counter this router reports in HEALTH
    /// (`route_handoffs`). An in-process rebalance adds its completed
    /// copy-verify-release cycles here.
    pub fn handoffs(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.shared.handoffs)
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the router over `ring`, listening on `addr`.
pub fn route(
    ring: Ring,
    addr: impl ToSocketAddrs,
    opts: RouteOptions,
) -> Result<RouterHandle, RouteError> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // One retry budget for the whole router: every worker's shard
    // clients (and DELETE's per-replica clients) share it, so N workers
    // facing one sick group spend one bounded pool of retries.
    let mut opts = opts;
    let budget = opts
        .shard
        .budget
        .get_or_insert_with(|| Arc::new(RetryBudget::default()))
        .clone();

    let liveness = Liveness::new(&ring, opts.backoff_cap);
    let shared = Arc::new(Shared {
        ring,
        liveness,
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        shed: AtomicU64::new(0),
        served: AtomicU64::new(0),
        expired: AtomicU64::new(0),
        active: AtomicU32::new(0),
        handoffs: Arc::new(AtomicU64::new(0)),
        breaker_refusals: Arc::new(AtomicU64::new(0)),
        budget,
        opts: opts.clone(),
    });

    let mut threads = Vec::with_capacity(opts.workers + 1);
    let accept_shared = Arc::clone(&shared);
    threads.push(
        thread::Builder::new()
            .name("hmh-route-accept".into())
            .spawn(move || accept_loop(&accept_shared, &listener))?,
    );
    for i in 0..opts.workers.max(1) {
        let worker_shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name(format!("hmh-route-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared))?,
        );
    }
    Ok(RouterHandle { addr, shared, threads })
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => enqueue(shared, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL_TICK),
            Err(_) => thread::sleep(POLL_TICK),
        }
    }
    shared.wake.notify_all();
}

fn enqueue(shared: &Shared, stream: TcpStream) {
    let mut queue = shared.queue();
    if queue.len() >= shared.opts.queue_depth {
        drop(queue);
        shared.shed.fetch_add(1, Ordering::Relaxed);
        let deadline = shared.opts.write_timeout.min(Duration::from_millis(100));
        let _ = stream.set_write_timeout(Some(deadline));
        let mut stream = stream;
        let _ = write_frame(&mut stream, &encode_response(&Response::Busy));
        return;
    }
    queue.push_back((stream, Instant::now()));
    drop(queue);
    shared.wake.notify_one();
}

/// Per-worker shard connections: one failover client per group, built
/// once and reused across requests (reconnection after failures is the
/// client's own job). Each group's client layers a per-replica circuit
/// breaker and draws rotations from the router-wide retry budget
/// (shared via the options); breaker-open refusals land on the shared
/// counter for HEALTH.
struct ShardClients {
    groups: Vec<FailoverClient>,
    /// The caller deadline currently being propagated (set per request
    /// by `handle_connection`, read wherever a fresh shard client is
    /// built mid-request).
    deadline: Option<Instant>,
}

impl ShardClients {
    fn new(shared: &Shared) -> Self {
        let attempts = |n: usize| {
            if shared.opts.shard_attempts == 0 {
                u32::try_from(n).unwrap_or(u32::MAX).saturating_add(1)
            } else {
                shared.opts.shard_attempts
            }
        };
        let groups = shared
            .ring
            .groups()
            .iter()
            .map(|g| {
                FailoverClient::with_options(
                    &g.replicas,
                    shared.opts.shard.clone(),
                    attempts(g.replicas.len()),
                )
                .with_breaker_counter(Arc::clone(&shared.breaker_refusals))
            })
            .collect();
        Self { groups, deadline: None }
    }

    /// Propagate (or clear) the caller's deadline to every group.
    fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
        for group in &mut self.groups {
            group.set_deadline(deadline);
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut shards = ShardClients::new(shared);
    loop {
        let stream = {
            let mut queue = shared.queue();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = shared
                    .wake
                    .wait_timeout(queue, POLL_TICK)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some((stream, queued_at)) = stream else { return };
        shared.active.fetch_add(1, Ordering::SeqCst);
        handle_connection(shared, &mut shards, stream, queued_at);
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(
    shared: &Shared,
    shards: &mut ShardClients,
    mut stream: TcpStream,
    queued_at: Instant,
) {
    if stream.set_read_timeout(Some(shared.opts.read_timeout)).is_err()
        || stream.set_write_timeout(Some(shared.opts.write_timeout)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);

    // Pipelined inbound loop, mirroring the daemon's: gather a batch —
    // first frame blocking, then whatever else has already arrived, up
    // to MAX_PIPELINE_DEPTH — process strictly in receipt order, flush
    // all replies as one vectored write. A client that never pipelines
    // degenerates to batches of one. Bounded by the socket deadlines,
    // EOF, and the shutdown flag.
    let mut frames = FrameBuffer::new();
    let mut first_batch = true;
    loop {
        let first = match frames.read_frame_buffered(&mut stream, shared.opts.max_frame) {
            Ok(Some(body)) => body,
            Ok(None) | Err(FrameError::Io(_)) => return,
            Err(FrameError::TooLarge { got, max }) => {
                let resp = Response::Err {
                    code: ErrCode::TooLarge,
                    message: format!("frame length {got} exceeds maximum {max}"),
                };
                let _ = write_frame(&mut stream, &encode_response(&resp));
                return;
            }
        };

        // Deadline propagation. Every frame of the *first* batch started
        // burning at accept — a pipelined burst waits in the kernel
        // while the connection waits in the queue; later batches burn
        // from their own receipt, since inter-batch time is client
        // think-time, not queueing.
        let batch_epoch = if first_batch { queued_at } else { Instant::now() };
        first_batch = false;

        let mut batch = vec![first];
        let mut poison: Option<Response> = None;
        // Frames already buffered still deserve answers if this fails;
        // the error resurfaces on the flush or the next blocking read.
        let _ = frames.fill_nonblocking(&stream);
        while batch.len() < MAX_PIPELINE_DEPTH {
            match frames.take_frame(shared.opts.max_frame) {
                Ok(Some(body)) => batch.push(body),
                Ok(None) => break,
                Err(FrameError::TooLarge { got, max }) => {
                    // The lying prefix poisons the tail; earlier frames
                    // in the batch still get their replies below.
                    poison = Some(Response::Err {
                        code: ErrCode::TooLarge,
                        message: format!("frame length {got} exceeds maximum {max}"),
                    });
                    break;
                }
                // take_frame never touches the transport; satisfy the
                // type by treating an Io as "no more frames".
                Err(FrameError::Io(_)) => break,
            }
        }

        let mut replies: Vec<Vec<u8>> = Vec::with_capacity(batch.len());
        let mut close = false;
        for body in batch {
            shared.liveness.round.fetch_add(1, Ordering::Relaxed);
            match decode_request_budget(&body) {
                Ok((request, budget_ms)) => {
                    let total = Duration::from_millis(u64::from(budget_ms));
                    // Per-frame expiry at dispatch time: work done for
                    // earlier frames of the batch counts against this
                    // frame's budget, and an expired frame burns alone.
                    if budget_ms > 0 && batch_epoch.elapsed() >= total {
                        shared.expired.fetch_add(1, Ordering::Relaxed);
                        replies.push(encode_response(&Response::Expired));
                        continue;
                    }
                    // Every scatter-gather leg below stamps the caller's
                    // *remaining* time, so fan-out never outlives them.
                    let deadline = (budget_ms > 0).then(|| batch_epoch + total);
                    shards.set_deadline(deadline);
                    let (resp, close_after) = handle_request(shared, shards, request);
                    replies.push(encode_response(&resp));
                    if close_after {
                        close = true;
                        break;
                    }
                }
                Err(e) => {
                    // Parse failures poison the tail; replies already
                    // queued for earlier frames flush below.
                    poison =
                        Some(Response::Err { code: e.code(), message: e.to_string() });
                    break;
                }
            }
        }
        if let Some(resp) = poison {
            replies.push(encode_response(&resp));
            close = true;
        }

        let flushed = write_frames_vectored(&mut stream, &replies).is_ok();
        shared.served.fetch_add(replies.len() as u64, Ordering::Relaxed);
        if !flushed || close || shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Dispatch one request. The bool is "close the connection after
/// answering" (parse errors and SHUTDOWN).
fn handle_request(
    shared: &Shared,
    shards: &mut ShardClients,
    request: Request,
) -> (Response, bool) {
    // Name-keyed ops forward verbatim to the owner group over the
    // pipelined submission path — the request frame was just decoded
    // off this router's wire and goes back out byte-equivalent, so
    // there is nothing to re-derive per op.
    if let Some(name) = forward_key(&request) {
        let name = name.to_string();
        return (forward(shared, shards, &name, &request), false);
    }
    let resp = match request {
        Request::Jaccard { a, b } => jaccard(shared, shards, &a, &b),
        Request::List => scatter_list(shared, shards),
        Request::ListPage { after } => scatter_list_page(shared, shards, &after),
        Request::Delete { name } => delete(shared, shards, &name),
        Request::Health => Response::Health(scatter_health(shared, shards)),
        Request::Scrub { trigger, after } => scatter_scrub(shared, shards, trigger, &after),
        Request::Digest { .. } => Response::Err {
            code: ErrCode::UnknownOp,
            message: "DIGEST is replica-to-replica anti-entropy; routers do not serve it".into(),
        },
        Request::Sync { .. } => Response::Err {
            code: ErrCode::UnknownOp,
            message: "SYNC is replica-to-replica anti-entropy; routers do not serve it".into(),
        },
        Request::Shutdown => {
            // Stops the *router*, not the shards: the daemons behind it
            // have their own lifecycles and other routers may be using
            // them.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.wake.notify_all();
            return (Response::Ok, true);
        }
        // Name-keyed ops were forwarded above; the arm exists only to
        // keep the match exhaustive without a panic path.
        Request::Put { .. }
        | Request::Merge { .. }
        | Request::BatchPut { .. }
        | Request::Get { .. }
        | Request::Card { .. } => Response::Err {
            code: ErrCode::Other(0x7e),
            message: "name-keyed op fell through the forward path".into(),
        },
    };
    (resp, false)
}

/// The owner-keyed name of an op the router forwards verbatim to one
/// group, or `None` for scatter/local ops.
fn forward_key(request: &Request) -> Option<&str> {
    match request {
        Request::Put { name, .. }
        | Request::Merge { name, .. }
        | Request::BatchPut { name, .. }
        | Request::Get { name }
        | Request::Card { name } => Some(name),
        _ => None,
    }
}

/// Forward a name-keyed op to the owner group, with liveness gating and
/// typed degradation: a group in down-backoff, or one whose whole
/// failover budget failed, answers `UNAVAILABLE` instead of hanging.
///
/// The forwarded frame rides the pipelined submission path — a depth-1
/// batch per inbound frame today, but the same machinery
/// [`Client::pipeline`] uses, so the length prefix and body coalesce
/// into one vectored write and every per-slot reply maps back through
/// the same typed surface the single-shot client methods use.
fn forward(shared: &Shared, shards: &mut ShardClients, name: &str, request: &Request) -> Response {
    let group = shared.ring.owner_index(name);
    if !shared.liveness.should_attempt(group) {
        return unavailable(shared, group, "group is in down-backoff");
    }
    let result = shards.groups[group]
        .pipeline(std::slice::from_ref(request))
        .and_then(|mut replies| match replies.pop() {
            Some(reply) if replies.is_empty() => typed_response(reply),
            _ => Err(ClientError::BadReply("expected exactly one pipelined reply".into())),
        });
    respond(shared, group, result)
}

/// Map a shard-call result onto the client-facing wire, recording group
/// liveness: transport exhaustion marks the group failed, anything the
/// *servers* answered (including typed errors) marks it alive.
fn respond(shared: &Shared, group: usize, result: Result<Response, ClientError>) -> Response {
    match result {
        Ok(resp) => {
            shared.liveness.record(group, true);
            resp
        }
        Err(ClientError::AllReplicasDown { attempts, last_errors }) => {
            shared.liveness.record(group, false);
            unavailable(
                shared,
                group,
                &format!(
                    "all replicas down after {attempts} attempts (last: {})",
                    last_errors.last().map_or("none", String::as_str)
                ),
            )
        }
        Err(ClientError::Io(e)) => {
            shared.liveness.record(group, false);
            unavailable(shared, group, &format!("transport: {e}"))
        }
        Err(ClientError::NotFound(name)) => {
            shared.liveness.record(group, true);
            Response::Err { code: ErrCode::NotFound, message: format!("no sketch named {name:?}") }
        }
        Err(ClientError::ReadOnly) => {
            shared.liveness.record(group, true);
            Response::ReadOnly
        }
        Err(ClientError::Busy) => {
            shared.liveness.record(group, false);
            Response::Busy
        }
        // The shard (or the inner client, locally) judged the caller's
        // deadline spent. The group is alive — an EXPIRED frame is an
        // answer — and the refusal relays typed to the caller.
        Err(ClientError::Expired) => {
            shared.liveness.record(group, true);
            shared.expired.fetch_add(1, Ordering::Relaxed);
            Response::Expired
        }
        // Bounded refusals from the resilience layer: the group already
        // failed at least one attempt (budget) or every breaker is open.
        // Both degrade typed; the budget denial was already counted by
        // the budget itself, the breaker refusal by the shared counter.
        Err(e @ ClientError::RetryBudgetExhausted) => {
            shared.liveness.record(group, false);
            unavailable(shared, group, &e.to_string())
        }
        Err(e @ ClientError::BreakerOpen { .. }) => {
            shared.liveness.record(group, false);
            unavailable(shared, group, &e.to_string())
        }
        Err(ClientError::Server { code, message }) => {
            shared.liveness.record(group, true);
            Response::Err { code, message }
        }
        Err(other) => {
            shared.liveness.record(group, true);
            Response::Err { code: ErrCode::Other(0x7e), message: other.to_string() }
        }
    }
}

fn unavailable(shared: &Shared, group: usize, detail: &str) -> Response {
    let id = &shared.ring.groups()[group].id;
    Response::Err {
        code: ErrCode::Unavailable,
        message: format!("replica group {id:?} is unavailable: {detail}"),
    }
}

/// JACCARD across the ring: both sketches may live in different groups,
/// so pull both encoded payloads and run the paper's estimator locally —
/// the same `hmh_core` arithmetic a daemon runs, so a routed JACCARD and
/// a direct one agree bit-for-bit.
fn jaccard(shared: &Shared, shards: &mut ShardClients, a: &str, b: &str) -> Response {
    let ga = shared.ring.owner_index(a);
    let gb = shared.ring.owner_index(b);
    if ga == gb {
        // One group holds both: its daemon computes, one round-trip.
        let request = Request::Jaccard { a: a.to_string(), b: b.to_string() };
        return forward(shared, shards, a, &request);
    }
    let sa = match fetch_decoded(shared, shards, ga, a) {
        Ok(sketch) => sketch,
        Err(resp) => return resp,
    };
    let sb = match fetch_decoded(shared, shards, gb, b) {
        Ok(sketch) => sketch,
        Err(resp) => return resp,
    };
    match sa.jaccard(&sb) {
        Ok(j) => Response::Value(j.estimate),
        Err(e) => Response::Err { code: ErrCode::Incompatible, message: e.to_string() },
    }
}

// The Err variant is a ready-to-send Response (Health grew past the
// clippy size bar); it is written to the socket immediately, never
// propagated, so boxing would only add an allocation on the error path.
#[allow(clippy::result_large_err)]
fn fetch_decoded(
    shared: &Shared,
    shards: &mut ShardClients,
    group: usize,
    name: &str,
) -> Result<hmh_core::HyperMinHash, Response> {
    if !shared.liveness.should_attempt(group) {
        return Err(unavailable(shared, group, "group is in down-backoff"));
    }
    match shards.groups[group].get(name) {
        Ok(sketch) => {
            shared.liveness.record(group, true);
            Ok(sketch)
        }
        Err(e) => Err(respond(shared, group, Err(e))),
    }
}

/// Legacy whole-store LIST: scatter across every group and union. The
/// unpaginated form has no partial marker and no cursor, so it cannot
/// degrade honestly — any unreachable group, or a union too large for
/// one frame, is a typed error pointing at LIST_PAGE.
fn scatter_list(shared: &Shared, shards: &mut ShardClients) -> Response {
    let mut union = BTreeSet::new();
    for group in 0..shared.ring.group_count() {
        if !shared.liveness.should_attempt(group) {
            return unavailable(shared, group, "group is in down-backoff; use LIST_PAGE");
        }
        match shards.groups[group].list() {
            Ok(names) => {
                shared.liveness.record(group, true);
                union.extend(names);
            }
            Err(
                e @ (ClientError::AllReplicasDown { .. }
                | ClientError::Io(_)
                | ClientError::BreakerOpen { .. }
                | ClientError::RetryBudgetExhausted),
            ) => {
                shared.liveness.record(group, false);
                return unavailable(shared, group, &format!("{e}; use LIST_PAGE"));
            }
            Err(e) => return respond(shared, group, Err(e)),
        }
    }
    // Response::Names is encoded as status + u32 count + (u16+bytes)
    // per name; refuse to build a frame the protocol cannot carry.
    let encoded: usize = 5 + union.iter().map(|n| 2 + n.len()).sum::<usize>();
    if encoded > shared.opts.max_frame.min(MAX_FRAME_LEN) {
        return Response::Err {
            code: ErrCode::TooLarge,
            message: format!(
                "{} names exceed one LIST frame; page with LIST_PAGE",
                union.len()
            ),
        };
    }
    Response::Names(union.into_iter().collect())
}

/// Paginated LIST: ask every reachable group for its page after the
/// cursor, merge, and return the first [`MAX_LIST_NAMES`] of the union.
///
/// Correctness of the cut: each group's page is the smallest names that
/// group holds after the cursor. If the merged page is full, its last
/// name (the cut) is the `MAX_LIST_NAMES`-th smallest of the union; any
/// name a full group page *omitted* is greater than everything on that
/// page — and a full page alone already holds `MAX_LIST_NAMES` names
/// below the omitted name, pushing the cut below it. So nothing ≤ the
/// cut is ever missing: pagination is gapless, group by group.
///
/// Groups that are unreachable (or in down-backoff) are skipped and the
/// page is marked `partial: true` — degraded, visibly, instead of
/// failing entirely or silently.
fn scatter_list_page(shared: &Shared, shards: &mut ShardClients, after: &str) -> Response {
    let mut union = BTreeSet::new();
    let mut partial = false;
    for group in 0..shared.ring.group_count() {
        if !shared.liveness.should_attempt(group) {
            partial = true;
            continue;
        }
        match shards.groups[group].list_page(after) {
            Ok((names, shard_partial)) => {
                shared.liveness.record(group, true);
                partial |= shard_partial;
                union.extend(names);
            }
            Err(
                ClientError::AllReplicasDown { .. }
                | ClientError::Io(_)
                | ClientError::Busy
                | ClientError::BreakerOpen { .. }
                | ClientError::RetryBudgetExhausted,
            ) => {
                shared.liveness.record(group, false);
                partial = true;
            }
            Err(e) => {
                shared.liveness.record(group, true);
                return Response::Err { code: ErrCode::Other(0x7e), message: e.to_string() };
            }
        }
    }
    Response::NamesPage { names: union.into_iter().take(MAX_LIST_NAMES).collect(), partial }
}

/// DELETE fans out to every replica of the owning group directly — a
/// one-replica delete is resurrected by the group's anti-entropy, so
/// "delete" at the routing tier means "delete everywhere it is owned".
/// NOT_FOUND from a replica is fine (it never had it, or another pass
/// already released it); the op succeeds if at least one replica
/// deleted and none failed for transport reasons.
fn delete(shared: &Shared, shards: &mut ShardClients, name: &str) -> Response {
    let group = shared.ring.owner_index(name);
    if !shared.liveness.should_attempt(group) {
        return unavailable(shared, group, "group is in down-backoff");
    }
    let mut deleted = 0u64;
    let mut missing = 0u64;
    for &addr in &shared.ring.groups()[group].replicas {
        let mut client = Client::with_options(addr, shared.opts.shard.clone());
        client.set_deadline(shards.deadline);
        match client.delete(name) {
            Ok(()) => deleted += 1,
            Err(ClientError::NotFound(_)) => missing += 1,
            Err(ClientError::Io(e)) => {
                shared.liveness.record(group, false);
                return unavailable(shared, group, &format!("replica {addr}: {e}"));
            }
            Err(e) => {
                shared.liveness.record(group, true);
                return respond(shared, group, Err(e));
            }
        }
    }
    shared.liveness.record(group, true);
    if deleted == 0 && missing > 0 {
        return Response::Err {
            code: ErrCode::NotFound,
            message: format!("no sketch named {name:?}"),
        };
    }
    Response::Ok
}

/// SCRUB scatter-gather: fan the trigger (or status query) across every
/// group, sum the counters, and merge the quarantined-name pages.
///
/// The name cut is gapless for the same reason [`scatter_list_page`]'s
/// is: each group's page holds its smallest fenced names after the
/// cursor, so the merged page's cut is provably below anything a full
/// group page omitted. `last_scrub_age_ms` aggregates as the *oldest*
/// age across groups — the cluster has scrubbed only as recently as its
/// most-stale shard — so a shard that never completed a pass keeps the
/// cluster honest at `u64::MAX`. Like the legacy LIST, a report has no
/// partial marker, so an unreachable group fails the scatter typed
/// instead of understating the cluster's corruption.
fn scatter_scrub(
    shared: &Shared,
    shards: &mut ShardClients,
    trigger: bool,
    after: &str,
) -> Response {
    let mut report = ScrubReport::default();
    let mut union = BTreeSet::new();
    for group in 0..shared.ring.group_count() {
        if !shared.liveness.should_attempt(group) {
            return unavailable(shared, group, "group is in down-backoff");
        }
        match shards.groups[group].scrub(trigger, after) {
            Ok(page) => {
                shared.liveness.record(group, true);
                report.rounds = report.rounds.saturating_add(page.rounds);
                report.records = report.records.saturating_add(page.records);
                report.corrupt_found = report.corrupt_found.saturating_add(page.corrupt_found);
                report.repaired = report.repaired.saturating_add(page.repaired);
                report.quarantined = report.quarantined.saturating_add(page.quarantined);
                report.last_scrub_age_ms = report.last_scrub_age_ms.max(page.last_scrub_age_ms);
                union.extend(page.names);
            }
            Err(
                e @ (ClientError::AllReplicasDown { .. }
                | ClientError::Io(_)
                | ClientError::Busy
                | ClientError::BreakerOpen { .. }
                | ClientError::RetryBudgetExhausted),
            ) => {
                shared.liveness.record(group, false);
                return unavailable(shared, group, &e.to_string());
            }
            Err(e) => return respond(shared, group, Err(e)),
        }
    }
    report.names = union.into_iter().take(MAX_SCRUB_PAGE).collect();
    Response::Scrub(report)
}

/// HEALTH scatter-gather: liveness-gated health from every group,
/// aggregated into one snapshot. Per-group state rides the `peers`
/// slots (addr = group id); `route_epoch`/`route_handoffs` are the
/// router's own.
fn scatter_health(shared: &Shared, shards: &mut ShardClients) -> Health {
    let mut sketches = 0u64;
    let mut store_clean = true;
    let mut read_only = false;
    let mut expired_sum = 0u64;
    let mut retry_sum = 0u64;
    let mut breaker_sum = 0u64;
    let mut scrub_rounds = 0u64;
    let mut records_scrubbed = 0u64;
    let mut corrupt_found = 0u64;
    let mut repaired = 0u64;
    let mut scrub_quarantined = 0u64;
    // Oldest completed-pass age across shards: the cluster has scrubbed
    // only as recently as its most-stale shard, and a shard that never
    // finished a pass (or could not be asked) pins this at u64::MAX.
    let mut last_scrub_age_ms = 0u64;
    for group in 0..shared.ring.group_count() {
        if !shared.liveness.should_attempt(group) {
            store_clean = false;
            last_scrub_age_ms = u64::MAX;
            continue;
        }
        match shards.groups[group].health() {
            Ok(h) => {
                shared.liveness.record(group, true);
                sketches = sketches.saturating_add(h.sketches);
                store_clean &= h.store_clean;
                read_only |= h.read_only;
                expired_sum = expired_sum.saturating_add(h.expired);
                retry_sum = retry_sum.saturating_add(h.retry_exhausted);
                breaker_sum = breaker_sum.saturating_add(h.breaker_open);
                scrub_rounds = scrub_rounds.saturating_add(h.scrub_rounds);
                records_scrubbed = records_scrubbed.saturating_add(h.records_scrubbed);
                corrupt_found = corrupt_found.saturating_add(h.corrupt_found);
                repaired = repaired.saturating_add(h.repaired);
                scrub_quarantined = scrub_quarantined.saturating_add(h.scrub_quarantined);
                last_scrub_age_ms = last_scrub_age_ms.max(h.last_scrub_age_ms);
            }
            Err(_) => {
                shared.liveness.record(group, false);
                store_clean = false;
                last_scrub_age_ms = u64::MAX;
            }
        }
    }
    let round = shared.liveness.round.load(Ordering::Relaxed);
    let peers =
        (0..shared.ring.group_count()).map(|g| shared.liveness.tracker(g).health(round)).collect();
    Health {
        read_only,
        workers: u32::try_from(shared.opts.workers).unwrap_or(u32::MAX),
        queue_capacity: u32::try_from(shared.opts.queue_depth).unwrap_or(u32::MAX),
        queue_depth: u32::try_from(shared.queue().len()).unwrap_or(u32::MAX),
        active: shared.active.load(Ordering::SeqCst),
        shed: shared.shed.load(Ordering::Relaxed),
        served: shared.served.load(Ordering::Relaxed),
        sketches,
        store_clean,
        quarantined: 0,
        truncated_tail: false,
        rounds: 0,
        route_epoch: shared.ring.epoch(),
        route_handoffs: shared.handoffs.load(Ordering::Relaxed),
        expired: shared.expired.load(Ordering::Relaxed).saturating_add(expired_sum),
        retry_exhausted: shared.budget.exhausted().saturating_add(retry_sum),
        breaker_open: shared.breaker_refusals.load(Ordering::Relaxed).saturating_add(breaker_sum),
        scrub_rounds,
        records_scrubbed,
        corrupt_found,
        repaired,
        scrub_quarantined,
        last_scrub_age_ms,
        peers,
    }
}

