//! The consistent-hash ring: sketch names → replica groups.
//!
//! Ring points are xxHash64 values of `"{group-id}/{vnode}"` under a
//! fixed seed; a name is owned by the group whose ring point is the
//! successor (with wraparound) of the name's own hash. Everything is
//! derived deterministically from the committed [`RingConfig`] — two
//! processes parsing the same config file build byte-identical rings
//! and therefore agree on every ownership decision without
//! coordination. That determinism is what makes rebalance a *local*
//! computation: old ring, new ring, diff the owners.
//!
//! Vnodes (virtual nodes) scatter each group around the ring so that
//! adding or removing one group moves only ≈1/N of the keyspace, and
//! only between the affected group and its successors — names never
//! migrate between two groups that are both present in the old and new
//! rings. The ring property suite (`tests/ring_props.rs`) pins both
//! bounds across seeds.

use std::collections::BTreeMap;
use std::fmt;
use std::net::SocketAddr;

use hmh_hash::xxhash::xxh64;

/// Seed for ring-point and name hashing. Fixed forever: changing it
/// would silently move every name to a new owner.
pub const RING_SEED: u64 = 0x484d_5231_5249_4e47; // "HMR1RING"

/// Maximum replica groups in one ring.
pub const MAX_GROUPS: usize = 64;

/// Maximum replicas in one group.
pub const MAX_GROUP_REPLICAS: usize = 8;

/// Maximum vnodes per group. Lookup is O(log(groups × vnodes)); the cap
/// keeps ring construction and serialization bounded.
pub const MAX_VNODES: u32 = 1024;

/// Default vnodes per group: enough that a 2→3 group change moves close
/// to the ideal 1/3 of names (see the property suite's tolerance).
pub const DEFAULT_VNODES: u32 = 128;

/// Maximum byte length of a group id.
pub const MAX_GROUP_ID_LEN: usize = 64;

/// One replica group: an id (stable across config changes — renaming a
/// group IS a remove-plus-add and moves its names) and the addresses of
/// its replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupConfig {
    /// Stable group identifier; hashes onto the ring.
    pub id: String,
    /// Replica addresses, tried in order by the failover client.
    pub replicas: Vec<SocketAddr>,
}

/// The committed ring configuration: what operators edit and what every
/// router derives its ring from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingConfig {
    /// Monotone configuration epoch; a router serving epoch E refuses
    /// to silently mix state with epoch E' ≠ E.
    pub epoch: u64,
    /// Vnodes per group.
    pub vnodes: u32,
    /// The replica groups.
    pub groups: Vec<GroupConfig>,
}

/// Why a ring configuration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// No groups configured.
    Empty,
    /// More than [`MAX_GROUPS`] groups.
    TooManyGroups(usize),
    /// A group id is empty, too long, or contains whitespace.
    BadGroupId(String),
    /// Two groups share an id.
    DuplicateGroup(String),
    /// A group has no replicas or more than [`MAX_GROUP_REPLICAS`].
    BadReplicaCount {
        /// The offending group.
        group: String,
        /// Its replica count.
        count: usize,
    },
    /// Vnodes outside `1..=MAX_VNODES`.
    BadVnodes(u32),
    /// The serialized form failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong there.
        detail: String,
    },
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::Empty => write!(f, "ring config has no groups"),
            RingError::TooManyGroups(n) => {
                write!(f, "{n} groups exceeds the maximum of {MAX_GROUPS}")
            }
            RingError::BadGroupId(id) => write!(
                f,
                "group id {id:?} is empty, longer than {MAX_GROUP_ID_LEN} bytes, \
                 or contains whitespace"
            ),
            RingError::DuplicateGroup(id) => write!(f, "group id {id:?} appears twice"),
            RingError::BadReplicaCount { group, count } => write!(
                f,
                "group {group:?} has {count} replicas; need 1..={MAX_GROUP_REPLICAS}"
            ),
            RingError::BadVnodes(v) => write!(f, "vnodes {v} outside 1..={MAX_VNODES}"),
            RingError::Parse { line, detail } => write!(f, "ring config line {line}: {detail}"),
        }
    }
}

impl std::error::Error for RingError {}

impl RingConfig {
    /// Validate structural invariants: group count and id shape, replica
    /// counts, vnode bounds, uniqueness.
    pub fn validate(&self) -> Result<(), RingError> {
        if self.groups.is_empty() {
            return Err(RingError::Empty);
        }
        if self.groups.len() > MAX_GROUPS {
            return Err(RingError::TooManyGroups(self.groups.len()));
        }
        if self.vnodes == 0 || self.vnodes > MAX_VNODES {
            return Err(RingError::BadVnodes(self.vnodes));
        }
        let mut seen = std::collections::BTreeSet::new();
        for group in &self.groups {
            if group.id.is_empty()
                || group.id.len() > MAX_GROUP_ID_LEN
                || group.id.chars().any(char::is_whitespace)
            {
                return Err(RingError::BadGroupId(group.id.clone()));
            }
            if !seen.insert(group.id.as_str()) {
                return Err(RingError::DuplicateGroup(group.id.clone()));
            }
            if group.replicas.is_empty() || group.replicas.len() > MAX_GROUP_REPLICAS {
                return Err(RingError::BadReplicaCount {
                    group: group.id.clone(),
                    count: group.replicas.len(),
                });
            }
        }
        Ok(())
    }

    /// Serialize to the committed text form:
    ///
    /// ```text
    /// hmh-ring v1
    /// epoch 3
    /// vnodes 128
    /// group east 10.0.0.7:7700,10.0.0.8:7700
    /// group west 10.0.1.7:7700
    /// ```
    ///
    /// Line-oriented so ring changes diff cleanly in review — an epoch
    /// bump plus one `group` line is the whole story of a rebalance.
    pub fn to_text(&self) -> String {
        let mut out = format!("hmh-ring v1\nepoch {}\nvnodes {}\n", self.epoch, self.vnodes);
        for group in &self.groups {
            let addrs: Vec<String> = group.replicas.iter().map(SocketAddr::to_string).collect();
            out.push_str(&format!("group {} {}\n", group.id, addrs.join(",")));
        }
        out
    }

    /// Parse the committed text form (see [`RingConfig::to_text`]).
    /// Blank lines and `#` comments are ignored; the result is
    /// validated before it is returned.
    pub fn from_text(text: &str) -> Result<Self, RingError> {
        let parse_err = |line: usize, detail: String| RingError::Parse { line, detail };
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

        let (line, header) = lines.next().ok_or_else(|| parse_err(1, "empty config".into()))?;
        if header != "hmh-ring v1" {
            return Err(parse_err(line, format!("bad header {header:?}; want \"hmh-ring v1\"")));
        }
        let mut epoch = None;
        let mut vnodes = None;
        let mut groups = Vec::new();
        for (line, l) in lines {
            let (key, rest) = l.split_once(' ').ok_or_else(|| {
                parse_err(line, format!("bad line {l:?}; want \"key value\""))
            })?;
            match key {
                "epoch" => {
                    let v = rest
                        .parse::<u64>()
                        .map_err(|e| parse_err(line, format!("bad epoch {rest:?}: {e}")))?;
                    if epoch.replace(v).is_some() {
                        return Err(parse_err(line, "duplicate epoch line".into()));
                    }
                }
                "vnodes" => {
                    let v = rest
                        .parse::<u32>()
                        .map_err(|e| parse_err(line, format!("bad vnodes {rest:?}: {e}")))?;
                    if vnodes.replace(v).is_some() {
                        return Err(parse_err(line, "duplicate vnodes line".into()));
                    }
                }
                "group" => {
                    let (id, addrs) = rest.split_once(' ').ok_or_else(|| {
                        parse_err(line, format!("bad group line {rest:?}; want \"id addr,…\""))
                    })?;
                    let replicas = addrs
                        .split(',')
                        .map(|a| {
                            a.trim().parse::<SocketAddr>().map_err(|e| {
                                parse_err(line, format!("bad replica address {a:?}: {e}"))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    groups.push(GroupConfig { id: id.to_string(), replicas });
                }
                other => return Err(parse_err(line, format!("unknown key {other:?}"))),
            }
        }
        let config = Self {
            epoch: epoch.ok_or_else(|| parse_err(0, "missing epoch line".into()))?,
            vnodes: vnodes.unwrap_or(DEFAULT_VNODES),
            groups,
        };
        config.validate()?;
        Ok(config)
    }
}

/// The built ring: a sorted map of ring points to group indexes, ready
/// for O(log n) successor lookup. Construction is pure arithmetic over
/// the config — no I/O, no randomness — so every holder of the same
/// config agrees on every answer.
#[derive(Debug, Clone)]
pub struct Ring {
    config: RingConfig,
    /// Ring point → index into `config.groups`.
    points: BTreeMap<u64, usize>,
}

impl Ring {
    /// Build the ring from a validated config.
    pub fn build(config: RingConfig) -> Result<Self, RingError> {
        config.validate()?;
        let mut points: BTreeMap<u64, usize> = BTreeMap::new();
        for (index, group) in config.groups.iter().enumerate() {
            for vnode in 0..config.vnodes {
                let key = format!("{}/{vnode}", group.id);
                let point = xxh64(key.as_bytes(), RING_SEED);
                // Collisions across 64-bit points are vanishingly rare
                // but must still be deterministic: the lexicographically
                // smaller group id wins, independent of insertion order.
                match points.get(&point) {
                    Some(&held) if config.groups[held].id <= group.id => {}
                    _ => {
                        points.insert(point, index);
                    }
                }
            }
        }
        Ok(Self { config, points })
    }

    /// The configuration this ring was built from.
    pub fn config(&self) -> &RingConfig {
        &self.config
    }

    /// The configuration epoch.
    pub fn epoch(&self) -> u64 {
        self.config.epoch
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.config.groups.len()
    }

    /// The groups, in config order.
    pub fn groups(&self) -> &[GroupConfig] {
        &self.config.groups
    }

    /// The group that owns `name`: successor-with-wraparound of the
    /// name's hash among the ring points.
    pub fn owner(&self, name: &str) -> &GroupConfig {
        let index = self.owner_index(name);
        &self.config.groups[index]
    }

    /// Index (into [`Ring::groups`]) of the group that owns `name`.
    pub fn owner_index(&self, name: &str) -> usize {
        let hash = xxh64(name.as_bytes(), RING_SEED);
        let successor = self
            .points
            .range(hash..)
            .next()
            .or_else(|| self.points.iter().next())
            .expect("invariant: a validated config has ≥ 1 group, so ≥ 1 ring point");
        *successor.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn two_groups() -> RingConfig {
        RingConfig {
            epoch: 1,
            vnodes: 64,
            groups: vec![
                GroupConfig { id: "east".into(), replicas: vec![addr(7700), addr(7701)] },
                GroupConfig { id: "west".into(), replicas: vec![addr(7710)] },
            ],
        }
    }

    #[test]
    fn text_round_trip_is_identity() {
        let config = two_groups();
        let text = config.to_text();
        assert_eq!(RingConfig::from_text(&text).unwrap(), config);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# cluster ring\nhmh-ring v1\n\nepoch 9\n# two groups\nvnodes 16\n\
                    group a 127.0.0.1:1\ngroup b 127.0.0.1:2\n";
        let config = RingConfig::from_text(text).unwrap();
        assert_eq!(config.epoch, 9);
        assert_eq!(config.vnodes, 16);
        assert_eq!(config.groups.len(), 2);
    }

    #[test]
    fn vnodes_default_when_omitted() {
        let text = "hmh-ring v1\nepoch 1\ngroup a 127.0.0.1:1\n";
        assert_eq!(RingConfig::from_text(text).unwrap().vnodes, DEFAULT_VNODES);
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let cases: &[(&str, &str)] = &[
            ("", "empty config"),
            ("hms-ring v9\nepoch 1\ngroup a 127.0.0.1:1\n", "bad header"),
            ("hmh-ring v1\ngroup a 127.0.0.1:1\n", "missing epoch"),
            ("hmh-ring v1\nepoch x\ngroup a 127.0.0.1:1\n", "bad epoch"),
            ("hmh-ring v1\nepoch 1\nepoch 2\ngroup a 127.0.0.1:1\n", "duplicate epoch"),
            ("hmh-ring v1\nepoch 1\nvnodes 0\ngroup a 127.0.0.1:1\n", "vnodes 0"),
            ("hmh-ring v1\nepoch 1\ngroup a not-an-addr\n", "bad replica address"),
            ("hmh-ring v1\nepoch 1\nshard a 127.0.0.1:1\n", "unknown key"),
            ("hmh-ring v1\nepoch 1\n", "no groups"),
            ("hmh-ring v1\nepoch 1\ngroup a 127.0.0.1:1\ngroup a 127.0.0.1:2\n", "dup group"),
        ];
        for (text, why) in cases {
            assert!(RingConfig::from_text(text).is_err(), "{why}: {text:?}");
        }
    }

    #[test]
    fn validate_rejects_structural_breakage() {
        let mut config = two_groups();
        config.groups[0].id = "has space".into();
        assert!(matches!(config.validate(), Err(RingError::BadGroupId(_))));

        let mut config = two_groups();
        config.groups[1].replicas.clear();
        assert!(matches!(config.validate(), Err(RingError::BadReplicaCount { .. })));

        let mut config = two_groups();
        config.vnodes = MAX_VNODES + 1;
        assert!(matches!(config.validate(), Err(RingError::BadVnodes(_))));
    }

    #[test]
    fn every_name_has_exactly_one_owner() {
        let ring = Ring::build(two_groups()).unwrap();
        for i in 0..1000 {
            let name = format!("sketch-{i}");
            let index = ring.owner_index(&name);
            assert!(index < ring.group_count());
            assert_eq!(ring.owner(&name).id, ring.groups()[index].id);
        }
    }

    #[test]
    fn ownership_is_reasonably_balanced() {
        let ring = Ring::build(two_groups()).unwrap();
        let mut counts = [0usize; 2];
        for i in 0..10_000 {
            counts[ring.owner_index(&format!("key-{i}"))] += 1;
        }
        for (index, &count) in counts.iter().enumerate() {
            assert!(
                (2_500..=7_500).contains(&count),
                "group {index} owns {count} of 10000 names — wildly unbalanced"
            );
        }
    }

    #[test]
    fn epoch_does_not_affect_ownership() {
        // Ownership depends only on group ids and vnodes: bumping the
        // epoch without touching membership moves nothing.
        let ring_a = Ring::build(two_groups()).unwrap();
        let mut bumped = two_groups();
        bumped.epoch = 99;
        let ring_b = Ring::build(bumped).unwrap();
        for i in 0..1000 {
            let name = format!("stable-{i}");
            assert_eq!(ring_a.owner(&name).id, ring_b.owner(&name).id);
        }
    }

    #[test]
    fn replica_addresses_do_not_affect_ownership() {
        // Replacing a failed replica must not move names.
        let ring_a = Ring::build(two_groups()).unwrap();
        let mut swapped = two_groups();
        swapped.groups[0].replicas = vec![addr(9999)];
        let ring_b = Ring::build(swapped).unwrap();
        for i in 0..1000 {
            let name = format!("pinned-{i}");
            assert_eq!(ring_a.owner(&name).id, ring_b.owner(&name).id);
        }
    }
}
