//! Consistent-hash routing for `hmh-serve` clusters: partitioning on
//! top of PR 5's replication.
//!
//! Replication gave N full copies; this crate gives *sharding* — the
//! step the paper's merge algebra makes safe. Sketch names map onto a
//! consistent-hash [`ring::Ring`] of replica groups, a scatter-gather
//! [`router`] speaks the ordinary `HMS1` protocol over the whole
//! cluster, and ring changes are executed by a two-phase
//! [`rebalance()`] (copy, verify by domination, release) whose every
//! step is idempotent because the sketch union is a per-register max:
//! a crash mid-move leaves the sketch owned by at least one group, and
//! re-running the move converges instead of corrupting.
//!
//! ```no_run
//! use hmh_route::{rebalance, route, RebalanceOptions, Ring, RingConfig, RouteOptions};
//!
//! let config = RingConfig::from_text(
//!     "hmh-ring v1\nepoch 1\nvnodes 128\n\
//!      group east 10.0.0.7:7700,10.0.0.8:7700\n\
//!      group west 10.0.1.7:7700,10.0.1.8:7700\n",
//! )
//! .unwrap();
//! let ring = Ring::build(config).unwrap();
//! let handle = route(ring, "127.0.0.1:7800", RouteOptions::default()).unwrap();
//! // ... clients talk to 127.0.0.1:7800 exactly as to a single daemon ...
//! handle.join();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod rebalance;
pub mod ring;
pub mod router;

pub use rebalance::{
    plan_moves, rebalance, RebalanceError, RebalanceOptions, RebalanceReport,
};
pub use ring::{
    GroupConfig, Ring, RingConfig, RingError, DEFAULT_VNODES, MAX_GROUPS, MAX_GROUP_REPLICAS,
    MAX_VNODES, RING_SEED,
};
pub use router::{route, RouteError, RouteOptions, RouterHandle};
