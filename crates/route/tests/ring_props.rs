//! Seeded property suite for the consistent-hash ring (CASES = 64).
//!
//! Each case draws a random cluster shape (group count, vnode budget,
//! group ids) from a `SplitMix64` stream and pins the properties the
//! routing tier's correctness rests on:
//!
//! * **Determinism.** Two rings built from independently parsed copies
//!   of the same committed text agree on every ownership decision —
//!   the cross-process half of this claim is exercised for real by the
//!   CI shell drill, where three separate processes parse the file.
//! * **Bounded movement.** Adding one group to an N-group ring moves
//!   ≈ 1/(N+1) of the names (within a generous vnode-variance band),
//!   and *every* moved name moves TO the new group — no name migrates
//!   between two groups present in both rings. Removing a group moves
//!   exactly the names it owned, and every one moves FROM it.
//! * **Serialization stability.** `to_text` → `from_text` is the
//!   identity on configs, and ring lookups survive the round trip
//!   unchanged (vnode points are derived, not stored, so the text form
//!   is the whole truth).

use std::net::SocketAddr;

use hmh_hash::splitmix::SplitMix64;
use hmh_route::{plan_moves, GroupConfig, Ring, RingConfig};

const CASES: u64 = 64;
const NAMES: usize = 2_000;

fn addr(rng: &mut SplitMix64) -> SocketAddr {
    let port = 1024 + (rng.next_u64() % 60_000) as u16;
    format!("127.0.0.1:{port}").parse().unwrap()
}

/// A random valid cluster config: 2..=7 groups, 1..=3 replicas each,
/// vnodes from a small palette (low vnode counts have the worst
/// balance variance, so they stress the movement bounds hardest).
fn random_config(rng: &mut SplitMix64, case: u64) -> RingConfig {
    let group_count = 2 + (rng.next_u64() % 6) as usize;
    let vnodes = [32u32, 64, 128, 256][(rng.next_u64() % 4) as usize];
    let groups = (0..group_count)
        .map(|i| {
            let replica_count = 1 + (rng.next_u64() % 3) as usize;
            GroupConfig {
                id: format!("g{case}-{i}-{:x}", rng.next_u64() & 0xffff),
                replicas: (0..replica_count).map(|_| addr(rng)).collect(),
            }
        })
        .collect();
    RingConfig { epoch: 1 + (rng.next_u64() % 100), vnodes, groups }
}

fn names(case: u64) -> Vec<String> {
    (0..NAMES).map(|i| format!("case{case}/sketch-{i}")).collect()
}

#[test]
fn rings_from_the_same_text_agree_on_every_owner() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5249_4e47 ^ case.wrapping_mul(0x9E37_79B9));
        let config = random_config(&mut rng, case);
        let text = config.to_text();
        // Two independent parses of the committed text — the in-process
        // stand-in for two router processes reading the same file.
        let ring_a = Ring::build(RingConfig::from_text(&text).unwrap()).unwrap();
        let ring_b = Ring::build(RingConfig::from_text(&text).unwrap()).unwrap();
        for name in names(case) {
            assert_eq!(
                ring_a.owner(&name).id,
                ring_b.owner(&name).id,
                "case {case}: rings from identical text disagree on {name:?}"
            );
        }
    }
}

#[test]
fn adding_a_group_moves_about_one_nth_and_only_to_the_new_group() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xADD0_0000 ^ case.wrapping_mul(0x9E37_79B9));
        let config = random_config(&mut rng, case);
        let n = config.groups.len();
        let old = Ring::build(config.clone()).unwrap();

        let mut grown = config;
        grown.epoch += 1;
        grown.groups.push(GroupConfig {
            id: format!("g{case}-new-{:x}", rng.next_u64() & 0xffff),
            replicas: vec![addr(&mut rng)],
        });
        let new = Ring::build(grown).unwrap();
        let new_id = &new.groups()[n].id;

        let mut moved = 0usize;
        for name in names(case) {
            let before = old.owner(&name).id.clone();
            let after = new.owner(&name).id.clone();
            if before != after {
                moved += 1;
                // The exactness half: a surviving group never donates to
                // another surviving group when only an *add* happened.
                assert_eq!(
                    &after, new_id,
                    "case {case}: {name:?} moved {before:?} → {after:?}, \
                     not to the added group {new_id:?}"
                );
            }
        }
        // The quantity half: ≈ NAMES/(n+1), within a wide band that
        // accommodates vnode placement variance at 32 vnodes.
        let ideal = NAMES / (n + 1);
        let (lo, hi) = (ideal / 3, ideal * 5 / 2);
        assert!(
            (lo..=hi).contains(&moved),
            "case {case}: adding a group to {n} moved {moved} of {NAMES} names; \
             expected ≈{ideal} (band {lo}..={hi})"
        );
    }
}

#[test]
fn removing_a_group_moves_exactly_its_names_and_no_others() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xDE1E_0000 ^ case.wrapping_mul(0x9E37_79B9));
        let config = random_config(&mut rng, case);
        let old = Ring::build(config.clone()).unwrap();

        let victim = (rng.next_u64() % config.groups.len() as u64) as usize;
        let victim_id = config.groups[victim].id.clone();
        let mut shrunk = config;
        shrunk.epoch += 1;
        shrunk.groups.remove(victim);
        let new = Ring::build(shrunk).unwrap();

        let mut moved = 0usize;
        let mut orphaned = 0usize;
        for name in names(case) {
            let before = old.owner(&name).id.clone();
            let after = new.owner(&name).id.clone();
            if before == victim_id {
                orphaned += 1;
                assert_ne!(after, victim_id, "case {case}: removed group still owns {name:?}");
            } else {
                // Names owned by survivors do not move at all.
                assert_eq!(
                    before, after,
                    "case {case}: {name:?} moved between surviving groups on a remove"
                );
            }
            if before != after {
                moved += 1;
            }
        }
        assert_eq!(
            moved, orphaned,
            "case {case}: movement must be exactly the removed group's names"
        );
    }
}

#[test]
fn lookups_and_planning_survive_serialization_round_trip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x7E87_0000 ^ case.wrapping_mul(0x9E37_79B9));
        let config = random_config(&mut rng, case);
        let reparsed = RingConfig::from_text(&config.to_text()).unwrap();
        assert_eq!(reparsed, config, "case {case}: to_text/from_text is not the identity");

        let direct = Ring::build(config.clone()).unwrap();
        let round_tripped = Ring::build(reparsed).unwrap();
        let all = names(case);
        for name in &all {
            assert_eq!(
                direct.owner_index(name),
                round_tripped.owner_index(name),
                "case {case}: owner of {name:?} changed across serialization"
            );
        }

        // plan_moves against an identical-membership ring is empty for
        // every group: serialization introduces no phantom moves.
        for group in direct.groups() {
            let owned: Vec<&str> = all
                .iter()
                .filter(|n| direct.owner(n).id == group.id)
                .map(String::as_str)
                .collect();
            assert!(
                plan_moves(&round_tripped, &group.id, owned).is_empty(),
                "case {case}: round-trip ring plans moves for unchanged membership"
            );
        }
    }
}
