//! Router and rebalance chaos: real daemons on real localhost sockets
//! behind a real router, with partitions, a simulated crash
//! mid-rebalance, and deliberately duplicated handoffs — asserting the
//! routing tier's contract:
//!
//! * routed operations answer exactly what the owning daemon would;
//! * a group whose replicas are all down earns a typed `UNAVAILABLE`
//!   (and a partial LIST_PAGE) within the shard deadline budget — the
//!   router degrades, it never hangs and never panics;
//! * rebalance moves every reassigned name losslessly, leaves each name
//!   owned by exactly one group after release, and absorbs both a crash
//!   between copy and release and a fully duplicated invocation.
//!
//! The process-level version — SIGKILL of a shard daemon mid-rebalance,
//! restart, re-run — is the CI `routing` job's shell drill; here the
//! crash is simulated in-process by stopping after the copy phase.

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use hmh_core::{HmhParams, HyperMinHash};
use hmh_route::{
    rebalance, route, RebalanceOptions, Ring, RingConfig, RouteOptions, RouterHandle,
};
use hmh_serve::{
    serve, Client, ClientError, ClientOptions, ErrCode, ServeOptions, ServerHandle,
};
use hmh_store::{RetryPolicy, StoreOptions};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hmh-route-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start(dir: &TempDir) -> ServerHandle {
    serve(
        &dir.0,
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            queue_depth: 32,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            store: StoreOptions::no_sleep(),
            ..ServeOptions::default()
        },
    )
    .unwrap()
}

/// Shard-facing options with tight deadlines and no retry sleep: a dead
/// group must cost the router a bounded, small amount of time.
fn shard_opts() -> ClientOptions {
    ClientOptions {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        retry: RetryPolicy::none(),
        ..ClientOptions::default()
    }
}

fn start_router(ring: Ring) -> RouterHandle {
    route(
        ring,
        "127.0.0.1:0",
        RouteOptions { shard: shard_opts(), ..RouteOptions::default() },
    )
    .unwrap()
}

fn client(addr: SocketAddr) -> Client {
    Client::with_options(
        addr,
        ClientOptions {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry: RetryPolicy::none(),
            ..ClientOptions::default()
        },
    )
}

/// Ring over already-running daemons, one address per `(id, addrs)`.
fn ring_of(epoch: u64, groups: &[(&str, &[SocketAddr])]) -> Ring {
    let text = format!(
        "hmh-ring v1\nepoch {epoch}\nvnodes 64\n{}",
        groups
            .iter()
            .map(|(id, addrs)| format!(
                "group {id} {}\n",
                addrs.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
            ))
            .collect::<String>()
    );
    Ring::build(RingConfig::from_text(&text).unwrap()).unwrap()
}

fn sketch(lo: u64, hi: u64) -> HyperMinHash {
    let params = HmhParams::new(8, 6, 6).unwrap();
    HyperMinHash::from_items(params, lo..hi)
}

fn rebalance_opts() -> RebalanceOptions {
    RebalanceOptions {
        client: shard_opts(),
        pacing: RetryPolicy::no_sleep(),
        ..RebalanceOptions::default()
    }
}

/// Walk the router's paginated LIST to exhaustion; returns the union
/// and whether any page was partial.
fn list_all(router: &mut Client) -> (BTreeSet<String>, bool) {
    let mut names = BTreeSet::new();
    let mut partial = false;
    let mut cursor = String::new();
    loop {
        let (page, page_partial) = router.list_page(&cursor).unwrap();
        partial |= page_partial;
        let Some(last) = page.last().cloned() else { break };
        names.extend(page);
        cursor = last;
    }
    (names, partial)
}

#[test]
fn routed_ops_answer_what_the_owning_daemon_would() {
    let (dir_a, dir_b) = (TempDir::new("ops-a"), TempDir::new("ops-b"));
    let (node_a, node_b) = (start(&dir_a), start(&dir_b));
    let ring = ring_of(1, &[("a", &[node_a.addr()]), ("b", &[node_b.addr()])]);
    let router = start_router(ring.clone());
    let mut via = client(router.addr());

    // PUT + MERGE through the router, spread across both groups.
    let names: Vec<String> = (0..40).map(|i| format!("ops/s{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        let lo = i as u64 * 100;
        via.put(name, &sketch(lo, lo + 500)).unwrap();
        via.merge(name, &sketch(lo + 400, lo + 900)).unwrap();
    }
    let owners: BTreeSet<String> =
        names.iter().map(|n| ring.owner(n).id.clone()).collect();
    assert_eq!(owners.len(), 2, "40 names landed on one group; ring is degenerate");

    // GET and CARD via the router agree bit-for-bit with the owning
    // daemon, and the name exists on *only* that daemon.
    for name in &names {
        let owner_addr = ring.owner(name).replicas[0];
        let other_addr =
            if owner_addr == node_a.addr() { node_b.addr() } else { node_a.addr() };
        let direct = client(owner_addr).get(name).unwrap();
        let routed = via.get(name).unwrap();
        assert_eq!(
            hmh_core::format::encode(&routed),
            hmh_core::format::encode(&direct),
            "routed GET of {name:?} differs from the owner's copy"
        );
        assert_eq!(via.card(name).unwrap(), client(owner_addr).card(name).unwrap());
        assert!(matches!(client(other_addr).get(name), Err(ClientError::NotFound(_))));
    }

    // JACCARD across groups equals the local estimator over the two
    // routed GETs (the router runs the same arithmetic).
    let (na, nb) = {
        let mut split = (None, None);
        for name in &names {
            match ring.owner(name).id.as_str() {
                "a" if split.0.is_none() => split.0 = Some(name.clone()),
                "b" if split.1.is_none() => split.1 = Some(name.clone()),
                _ => {}
            }
        }
        (split.0.unwrap(), split.1.unwrap())
    };
    let expected =
        via.get(&na).unwrap().jaccard(&via.get(&nb).unwrap()).unwrap().estimate;
    assert_eq!(via.jaccard(&na, &nb).unwrap(), expected);

    // LIST and the paginated walk both cover exactly the put names.
    let listed: BTreeSet<String> = via.list().unwrap().into_iter().collect();
    assert_eq!(listed, names.iter().cloned().collect::<BTreeSet<_>>());
    let (paged, partial) = list_all(&mut via);
    assert_eq!(paged, listed);
    assert!(!partial, "no group is down; the page walk must not be partial");

    // DELETE through the router removes the name from its group.
    via.delete(&na).unwrap();
    assert!(matches!(via.get(&na), Err(ClientError::NotFound(_))));
    assert!(matches!(via.delete(&na), Err(ClientError::NotFound(_))));

    // Anti-entropy ops are refused, typed.
    match via.sync(std::slice::from_ref(&nb)) {
        Err(ClientError::Server { code: ErrCode::UnknownOp, message }) => {
            assert!(message.contains("anti-entropy"), "unhelpful refusal: {message}");
        }
        other => panic!("routed SYNC must be refused, got {other:?}"),
    }

    // HEALTH aggregates the cluster and carries the routing fields.
    let health = via.health().unwrap();
    assert_eq!(health.route_epoch, 1);
    assert_eq!(health.peers.len(), 2, "one liveness slot per group");
    assert_eq!(health.sketches, names.len() as u64 - 1, "one name was deleted");
    assert!(health.store_clean);

    router.join();
    node_a.join();
    node_b.join();
}

#[test]
fn partitioned_group_degrades_typed_and_bounded_never_hanging() {
    let (dir_a, dir_b) = (TempDir::new("part-a"), TempDir::new("part-b"));
    let (node_a, node_b) = (start(&dir_a), start(&dir_b));
    let ring = ring_of(1, &[("a", &[node_a.addr()]), ("b", &[node_b.addr()])]);
    let router = start_router(ring.clone());
    let mut via = client(router.addr());

    let names: Vec<String> = (0..40).map(|i| format!("part/s{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        via.put(name, &sketch(i as u64, i as u64 + 50)).unwrap();
    }
    let (on_a, on_b): (Vec<&String>, Vec<&String>) =
        names.iter().partition(|n| ring.owner(n).id == "a");
    assert!(!on_a.is_empty() && !on_b.is_empty());

    // Partition: group b's only replica goes away entirely.
    node_b.join();

    // Name-keyed ops owned by the dead group: typed UNAVAILABLE, inside
    // a wall-clock budget that proves the router sheds rather than
    // hangs (connect timeout 250ms × small failover budget, per op).
    let started = Instant::now();
    for name in on_b.iter().take(3) {
        match via.get(name) {
            Err(ClientError::Server { code: ErrCode::Unavailable, message }) => {
                assert!(message.contains("\"b\""), "which group? {message}");
            }
            other => panic!("GET {name:?} against a dead group: {other:?}"),
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "three dead-group GETs took {:?}; the router is hanging",
        started.elapsed()
    );

    // The surviving group still answers through the same router.
    for name in on_a.iter().take(3) {
        via.get(name).unwrap();
    }

    // Legacy LIST cannot mark a gap, so it fails typed...
    match via.list() {
        Err(ClientError::Server { code: ErrCode::Unavailable, message }) => {
            assert!(message.contains("LIST_PAGE"), "no pagination hint: {message}");
        }
        other => panic!("whole-store LIST with a group down: {other:?}"),
    }
    // ...while the paginated walk degrades to exactly the survivor's
    // names, visibly marked partial.
    let (paged, partial) = list_all(&mut via);
    assert!(partial, "a skipped group must mark the page partial");
    assert_eq!(paged, on_a.iter().map(|n| (*n).clone()).collect::<BTreeSet<_>>());

    // HEALTH still answers, reports the cluster dirty, and the dead
    // group's liveness slot has left the healthy state.
    let health = via.health().unwrap();
    assert!(!health.store_clean, "a dead group must not report a clean cluster");
    assert_eq!(health.peers.len(), 2);
    let slot_b = health.peers.iter().find(|p| p.addr == "b").unwrap();
    assert_ne!(slot_b.state, hmh_serve::PeerState::Healthy);

    // Writes to the dead group are refused typed too — and the router
    // survives all of this to serve the next request.
    assert!(matches!(
        via.put(on_b[0], &sketch(0, 10)),
        Err(ClientError::Server { code: ErrCode::Unavailable, .. })
    ));
    via.card(on_a[0]).unwrap();
    assert!(!router.is_finished(), "router threads died under partition");

    router.join();
    node_a.join();
}

#[test]
fn rebalance_is_lossless_exclusive_and_visible_in_health() {
    let dirs: Vec<TempDir> = ["reb-a", "reb-b", "reb-c1", "reb-c2"]
        .iter()
        .map(|t| TempDir::new(t))
        .collect();
    let nodes: Vec<ServerHandle> = dirs.iter().map(start).collect();
    let (a, b, c1, c2) = (nodes[0].addr(), nodes[1].addr(), nodes[2].addr(), nodes[3].addr());

    // Seed the 2-group cluster through a router over the old ring.
    let old = ring_of(1, &[("a", &[a]), ("b", &[b])]);
    let seed_router = start_router(old.clone());
    let mut via = client(seed_router.addr());
    let names: Vec<String> = (0..120).map(|i| format!("reb/s{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        via.put(name, &sketch(i as u64 * 10, i as u64 * 10 + 300)).unwrap();
    }
    let direct_cards: Vec<f64> = names.iter().map(|n| via.card(n).unwrap()).collect();
    seed_router.join();

    // Grow: add group c (two replicas — the copy and verify phases must
    // cover every destination replica, not just the first).
    let new = ring_of(2, &[("a", &[a]), ("b", &[b]), ("c", &[c1, c2])]);
    let report = rebalance(&old, &new, &rebalance_opts()).unwrap();
    assert!(report.moved > 0, "growing 2→3 groups must move something");
    assert_eq!(report.handoffs, report.moved, "every planned move must complete");
    assert_eq!(report.vanished, 0);

    // Exclusivity: each name lives on exactly one group (both replicas
    // of group c count as one owner), and the union is everything.
    let lists: Vec<BTreeSet<String>> = [a, b, c1]
        .iter()
        .map(|&addr| client(addr).list().unwrap().into_iter().collect())
        .collect();
    let mut union = BTreeSet::new();
    for name in &names {
        let holders = lists.iter().filter(|l| l.contains(name)).count();
        assert_eq!(holders, 1, "{name:?} is owned by {holders} groups after release");
        assert_eq!(new.owner(name).replicas[0] == a, lists[0].contains(name));
    }
    lists.iter().for_each(|l| union.extend(l.iter().cloned()));
    assert_eq!(union, names.iter().cloned().collect::<BTreeSet<_>>(), "names lost or invented");

    // Both replicas of the new group hold identical bytes for its names.
    for name in lists[2].iter() {
        assert_eq!(
            client(c1).get_raw(name).unwrap(),
            client(c2).get_raw(name).unwrap(),
            "destination replicas diverge on {name:?}"
        );
    }

    // A router over the new ring serves every name with unchanged
    // cardinalities, and surfaces the handoff count in HEALTH.
    let router = start_router(new.clone());
    router.handoffs().fetch_add(report.handoffs, Ordering::Relaxed);
    let mut via = client(router.addr());
    for (name, expected) in names.iter().zip(direct_cards) {
        assert_eq!(via.card(name).unwrap(), expected, "CARD of {name:?} changed in flight");
    }
    let health = via.health().unwrap();
    assert_eq!(health.route_epoch, 2);
    assert_eq!(health.route_handoffs, report.handoffs);
    // Each group is counted once (through whichever replica answered
    // the scatter), so the cluster sum is exactly the name count.
    assert_eq!(health.sketches, names.len() as u64);

    router.join();
    nodes.into_iter().for_each(ServerHandle::join);
}

#[test]
fn crashed_and_duplicated_handoffs_are_absorbed() {
    let dirs: Vec<TempDir> =
        ["dup-a", "dup-b", "dup-c"].iter().map(|t| TempDir::new(t)).collect();
    let nodes: Vec<ServerHandle> = dirs.iter().map(start).collect();
    let (a, b, c) = (nodes[0].addr(), nodes[1].addr(), nodes[2].addr());

    let old = ring_of(1, &[("a", &[a]), ("b", &[b])]);
    let names: Vec<String> = (0..80).map(|i| format!("dup/s{i}")).collect();
    {
        let seed_router = start_router(old.clone());
        let mut via = client(seed_router.addr());
        for (i, name) in names.iter().enumerate() {
            via.put(name, &sketch(i as u64 * 7, i as u64 * 7 + 200)).unwrap();
        }
        seed_router.join();
    }
    let new = ring_of(2, &[("a", &[a]), ("b", &[b]), ("c", &[c])]);
    let moving: Vec<String> =
        names.iter().filter(|n| new.owner(n).id == "c").cloned().collect();
    assert!(!moving.is_empty());

    // Simulate a rebalancer crash between copy and release: the moving
    // names are merged into their new owner, but never released. Every
    // such name is now owned by TWO groups — the state the two-phase
    // order guarantees instead of zero-owner loss.
    let payloads: Vec<Vec<u8>> = moving
        .iter()
        .map(|name| {
            let src = if old.owner(name).id == "a" { a } else { b };
            let payload = client(src).get_raw(name).unwrap();
            client(c).merge_raw(name, &payload).unwrap();
            payload
        })
        .collect();

    // Recovery is simply re-running the rebalance: the copy phase
    // re-merges (idempotent), verify re-passes, release completes.
    let report = rebalance(&old, &new, &rebalance_opts()).unwrap();
    assert_eq!(report.handoffs + report.vanished, report.moved);

    // A *fully duplicated invocation* after success finds nothing left
    // to move: sources no longer list the moved names.
    let replay = rebalance(&old, &new, &rebalance_opts()).unwrap();
    assert_eq!(replay, hmh_route::RebalanceReport::default(), "replayed rebalance must be a no-op");

    // Duplicated handoff *deliveries* (the same payload merged again
    // long after release) are absorbed byte-identically by the union.
    for (name, payload) in moving.iter().zip(&payloads) {
        let before = client(c).get_raw(name).unwrap();
        client(c).merge_raw(name, payload).unwrap();
        assert_eq!(client(c).get_raw(name).unwrap(), before, "replayed handoff changed {name:?}");
    }

    // Nothing lost, nothing double-owned.
    let lists: Vec<BTreeSet<String>> = [a, b, c]
        .iter()
        .map(|&addr| client(addr).list().unwrap().into_iter().collect())
        .collect();
    for name in &names {
        assert_eq!(lists.iter().filter(|l| l.contains(name)).count(), 1, "{name:?}");
    }
    for name in &moving {
        assert!(lists[2].contains(name), "{name:?} must have landed on group c");
    }

    // An epoch that fails to advance is refused before any I/O.
    let stale = ring_of(1, &[("a", &[a]), ("b", &[b]), ("c", &[c])]);
    assert!(matches!(
        rebalance(&old, &stale, &rebalance_opts()),
        Err(hmh_route::RebalanceError::Ring(_))
    ));

    nodes.into_iter().for_each(ServerHandle::join);
}
