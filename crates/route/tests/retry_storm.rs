//! Retry-storm chaos: one group of a routed cluster flaps (its replica
//! accepts connections and immediately drops them — the worst failure
//! shape for retry amplification, because every dial "succeeds" before
//! failing). The contract under the storm:
//!
//! * dials to the flapping group are **bounded** — the shared retry
//!   budget and the per-replica circuit breaker convert would-be
//!   amplification (2 dials per op, forever) into a probe cadence;
//! * every refused operation fails **typed** (UNAVAILABLE), quickly;
//! * the surviving groups serve normally *through the same router*
//!   while the storm rages;
//! * when the flapping stops, probes close the breaker and the group
//!   serves again — no operator intervention, no restart.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use hmh_core::{HmhParams, HyperMinHash};
use hmh_route::{route, Ring, RingConfig, RouteOptions};
use hmh_serve::{
    serve, Client, ClientError, ClientOptions, ErrCode, FailoverClient, Request, Response,
    ServeOptions, ServerHandle,
};
use hmh_store::{RetryPolicy, StoreOptions};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hmh-storm-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start(dir: &TempDir) -> ServerHandle {
    serve(
        &dir.0,
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            queue_depth: 32,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            store: StoreOptions::no_sleep(),
            ..ServeOptions::default()
        },
    )
    .unwrap()
}

const FORWARD: u8 = 0;
const FLAP: u8 = 1;

/// A counting TCP proxy with two modes: FORWARD pipes bytes to the
/// upstream daemon; FLAP accepts and immediately drops — the
/// accept-then-reset shape of a crash-looping replica. Every accept is
/// counted, which is exactly the "dials" the storm contract bounds.
struct Proxy {
    addr: SocketAddr,
    mode: Arc<AtomicU8>,
    accepts: Arc<AtomicU64>,
    live: Arc<std::sync::Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Proxy {
    fn start(upstream: SocketAddr) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mode = Arc::new(AtomicU8::new(FORWARD));
        let accepts = Arc::new(AtomicU64::new(0));
        let live: Arc<std::sync::Mutex<Vec<TcpStream>>> = Default::default();
        let stop = Arc::new(AtomicBool::new(false));
        let (m, a, l, s) = (mode.clone(), accepts.clone(), live.clone(), stop.clone());
        let thread = thread::spawn(move || {
            while !s.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        a.fetch_add(1, Ordering::SeqCst);
                        if m.load(Ordering::SeqCst) == FLAP {
                            drop(conn); // accept-then-drop: the flap
                        } else {
                            let l = l.clone();
                            thread::spawn(move || pipe(conn, upstream, &l));
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(2)),
                }
            }
        });
        Self { addr, mode, accepts, live, stop, thread: Some(thread) }
    }

    /// Switch modes. Entering FLAP also resets every live forwarded
    /// connection — a crash-looping replica kills established
    /// connections, it does not grandfather them in.
    fn set_mode(&self, mode: u8) {
        self.mode.store(mode, Ordering::SeqCst);
        if mode == FLAP {
            for conn in self.live.lock().unwrap().drain(..) {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    fn accepts(&self) -> u64 {
        self.accepts.load(Ordering::SeqCst)
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Bidirectional byte pump for FORWARD mode; both ends are registered
/// in `live` so a mode flip can reset them.
fn pipe(client: TcpStream, upstream: SocketAddr, live: &std::sync::Mutex<Vec<TcpStream>>) {
    let Ok(server) = TcpStream::connect(upstream) else { return };
    for conn in [&client, &server] {
        let _ = conn.set_read_timeout(Some(Duration::from_secs(1)));
        let _ = conn.set_write_timeout(Some(Duration::from_secs(1)));
    }
    if let (Ok(c), Ok(s), Ok(mut reg)) = (client.try_clone(), server.try_clone(), live.lock()) {
        reg.push(c);
        reg.push(s);
    }
    let (Ok(mut c_read), Ok(mut s_write)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let up = thread::spawn(move || {
        let mut buf = [0u8; 4096];
        while let Ok(n) = c_read.read(&mut buf) {
            if n == 0 || std::io::Write::write_all(&mut s_write, &buf[..n]).is_err() {
                break;
            }
        }
        let _ = s_write.shutdown(std::net::Shutdown::Write);
    });
    let mut server = server;
    let mut client = client;
    let mut buf = [0u8; 4096];
    while let Ok(n) = server.read(&mut buf) {
        if n == 0 || std::io::Write::write_all(&mut client, &buf[..n]).is_err() {
            break;
        }
    }
    let _ = up.join();
}

fn ring_of(groups: &[(&str, SocketAddr)]) -> Ring {
    let text = format!(
        "hmh-ring v1\nepoch 1\nvnodes 64\n{}",
        groups.iter().map(|(id, addr)| format!("group {id} {addr}\n")).collect::<String>()
    );
    Ring::build(RingConfig::from_text(&text).unwrap()).unwrap()
}

fn sketch(lo: u64, hi: u64) -> HyperMinHash {
    let params = HmhParams::new(8, 6, 6).unwrap();
    HyperMinHash::from_items(params, lo..hi)
}

#[test]
fn flapping_group_costs_bounded_dials_and_recovers() {
    let dirs: Vec<TempDir> = ["a", "b", "c"].iter().map(|t| TempDir::new(t)).collect();
    let nodes: Vec<ServerHandle> = dirs.iter().map(start).collect();
    let proxy = Proxy::start(nodes[1].addr());

    // Group b's only replica is reached through the proxy.
    let ring = ring_of(&[("a", nodes[0].addr()), ("b", proxy.addr), ("c", nodes[2].addr())]);
    let router = route(
        ring.clone(),
        "127.0.0.1:0",
        RouteOptions {
            shard: ClientOptions {
                connect_timeout: Duration::from_millis(250),
                read_timeout: Duration::from_millis(500),
                write_timeout: Duration::from_millis(500),
                retry: RetryPolicy::none(),
                ..ClientOptions::default()
            },
            ..RouteOptions::default()
        },
    )
    .unwrap();
    let mut via = Client::with_options(
        router.addr(),
        ClientOptions { retry: RetryPolicy::none(), ..ClientOptions::default() },
    );

    // Sort names by owning group; preload every group through the
    // (currently forwarding) proxy so reads have something to read.
    let names: Vec<String> = (0..60).map(|i| format!("storm/s{i}")).collect();
    let mut by_group: std::collections::BTreeMap<&str, Vec<&String>> = Default::default();
    for name in &names {
        by_group.entry(ring.owner(name).id.as_str()).or_default().push(name);
    }
    for (i, name) in names.iter().enumerate() {
        via.put(name, &sketch(i as u64, i as u64 + 40)).unwrap();
    }
    let on_b = by_group.get("b").expect("some names hash to group b").clone();
    let on_a = by_group.get("a").expect("some names hash to group a").clone();
    assert!(on_b.len() >= 5, "need a few b-owned names, got {}", on_b.len());
    via.card(on_b[0]).unwrap(); // baseline: b serves through the proxy

    // ---- The storm. ----
    proxy.set_mode(FLAP);
    let dials_before = proxy.accepts();
    const STORM_OPS: usize = 50;
    let started = Instant::now();
    let mut refusals = 0usize;
    for i in 0..STORM_OPS {
        let name = on_b[i % on_b.len()];
        match via.card(name) {
            Err(ClientError::Server { code: ErrCode::Unavailable, .. }) => refusals += 1,
            Ok(_) => panic!("CARD {name:?} succeeded while its only replica flaps"),
            Err(other) => panic!("untyped failure under the storm: {other:?}"),
        }
        // Survivors answer normally *between* refused ops — the storm
        // on b never starves a or c.
        if i % 10 == 0 {
            via.card(on_a[i / 10 % on_a.len()]).unwrap();
        }
    }
    let storm_elapsed = started.elapsed();
    let dials = proxy.accepts() - dials_before;
    assert_eq!(refusals, STORM_OPS);

    // The bound. Unmitigated, 50 failing ops cost 2 dials each (one
    // per failover attempt) = 100+. With the breaker (opens after 3
    // consecutive failures, probe spacing doubling up to a 16-op cap)
    // and the shared retry budget (10 tokens, only successes refill),
    // the first ops pay a handful of dials and the rest are refused
    // from memory, leaving only spaced half-open probes: comfortably
    // under 30.
    assert!(
        (1..=30).contains(&dials),
        "flapping group cost {dials} dials over {STORM_OPS} ops; the storm is not bounded"
    );
    // Typed refusal must be fast — memory-speed, not timeout-speed.
    assert!(
        storm_elapsed < Duration::from_secs(10),
        "{STORM_OPS} refused ops took {storm_elapsed:?}"
    );

    // The refusals are visible in the router's HEALTH counters.
    let health = via.health().unwrap();
    assert!(
        health.breaker_open + health.retry_exhausted >= 1,
        "storm left no trace in HEALTH: {health:?}"
    );

    // ---- Recovery. ----
    proxy.set_mode(FORWARD);
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut recovered = false;
    while Instant::now() < deadline {
        if via.card(on_b[0]).is_ok() {
            recovered = true;
            break;
        }
        thread::sleep(Duration::from_millis(100));
    }
    assert!(recovered, "group b never recovered after the flapping stopped");
    // The breaker is closed, not merely half-open: several consecutive
    // ops all succeed without a refusal.
    for (i, name) in on_b.iter().take(5).enumerate() {
        via.card(name).unwrap_or_else(|e| panic!("post-recovery op {i} failed: {e}"));
    }

    router.join();
    proxy.stop();
    for node in nodes {
        node.shutdown();
        node.join();
    }
}

/// The pipelined variant of the storm contract: a replica that drops
/// the connection with a pipeline half-drained fails the *whole batch*
/// over to the next replica (safe: every HMS1 op is idempotent), and
/// batch depth buys no dial amplification — a depth-8 batch pays the
/// same bounded failover costs as a single op, not 8× them.
#[test]
fn flapping_replica_drops_a_half_full_pipeline_without_dial_amplification() {
    let dirs: Vec<TempDir> = ["pipe-a", "pipe-b"].iter().map(|t| TempDir::new(t)).collect();
    let nodes: Vec<ServerHandle> = dirs.iter().map(start).collect();
    // Replica 0 is reached through the flappable proxy; replica 1 is
    // direct and stays healthy.
    let proxy = Proxy::start(nodes[0].addr());

    // Both replicas (independent stores) carry the same names.
    let names: Vec<String> = (0..8).map(|i| format!("pipe/s{i}")).collect();
    for node in &nodes {
        let mut c = Client::connect(node.addr());
        for (i, name) in names.iter().enumerate() {
            c.put(name, &sketch(i as u64, i as u64 + 50)).unwrap();
        }
    }

    let shard_opts = ClientOptions {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        retry: RetryPolicy::none(),
        ..ClientOptions::default()
    };
    let mut fc =
        FailoverClient::with_options(&[proxy.addr, nodes[1].addr()], shard_opts.clone(), 3);
    let batch: Vec<Request> = names.iter().map(|n| Request::Card { name: n.clone() }).collect();

    // Baseline: the full window rides the forwarding proxy.
    let replies = fc.pipeline(&batch).unwrap();
    assert_eq!(replies.len(), batch.len());
    assert!(replies.iter().all(|r| matches!(r, Response::Value(_))), "{replies:?}");

    // The flap. Entering FLAP resets the live pipe, so the very next
    // batch is written into a dying connection — the half-drained
    // pipeline shape — and every reconnect is accept-then-dropped.
    proxy.set_mode(FLAP);
    let dials_before = proxy.accepts();
    let started = Instant::now();
    const STORM_BATCHES: usize = 30;
    let mut served = 0usize;
    for round in 0..STORM_BATCHES {
        match fc.pipeline(&batch) {
            Ok(replies) => {
                // Whole-batch failover: never a short window, never a
                // stale slot from the dead replica spliced in.
                assert_eq!(replies.len(), batch.len(), "round {round}: short batch");
                assert!(
                    replies.iter().all(|r| matches!(r, Response::Value(_))),
                    "round {round}: wrong replies {replies:?}"
                );
                served += 1;
            }
            Err(
                ClientError::RetryBudgetExhausted | ClientError::BreakerOpen { .. },
            ) => {}
            Err(other) => panic!("round {round}: untyped pipelined failure: {other}"),
        }
    }
    let dials = proxy.accepts() - dials_before;
    assert!(served >= STORM_BATCHES / 2, "healthy replica served only {served} batches");
    // The bound: unmitigated, 30 batches × (1 dial + 8 frames) could
    // re-dial the flapper every round — or worse, once per undrained
    // frame. The breaker pins it to the first failures plus spaced
    // probes, exactly as for single ops.
    assert!(
        dials <= 15,
        "flapping replica cost {dials} dials over {STORM_BATCHES} pipelined batches"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "{STORM_BATCHES} batches took {:?} under the flap",
        started.elapsed()
    );

    // Recovery: once the flapping stops, a client pointed *only* at the
    // recovered replica drains full windows again.
    proxy.set_mode(FORWARD);
    let mut direct = FailoverClient::with_options(&[proxy.addr], shard_opts, 2);
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut recovered = false;
    while Instant::now() < deadline {
        if let Ok(replies) = direct.pipeline(&batch) {
            assert_eq!(replies.len(), batch.len());
            recovered = true;
            break;
        }
        thread::sleep(Duration::from_millis(100));
    }
    assert!(recovered, "the flapped replica never served a pipeline after recovery");

    proxy.stop();
    for node in nodes {
        node.shutdown();
        node.join();
    }
}
