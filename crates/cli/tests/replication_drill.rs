//! Process-level replication drill: a real 3-node `hmh serve` cluster —
//! separate processes, real sockets, `--peer` anti-entropy — takes
//! disjoint writes on every node, converges byte-identically, survives a
//! SIGKILL of one node mid-sync (no destructors, stale lock left
//! behind), salvages on restart, rejoins, and re-converges including the
//! writes that happened during the outage. The failover client rides
//! through a dead address on the way.
//!
//! This is the drill the in-process suite (`hmh-serve`'s
//! `tests/replication.rs`) cannot run: `Child::kill()` is SIGKILL on
//! Unix, so the killed replica gets no Drop, no flush, no lock release.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use hmh_core::format;
use hmh_core::{HmhParams, HyperMinHash};
use hmh_serve::proto::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, MAX_FRAME_LEN,
};
use hmh_serve::Client;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hmh-drill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Reserve a localhost port by binding to :0 and immediately releasing
/// it. Replicas need to know each other's addresses *before* any of
/// them has started, so OS-assigned readiness addresses are not enough.
fn reserve_port() -> u16 {
    TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap().port()
}

/// Spawn one cluster node on a fixed port with the given peers, and
/// wait for its readiness line.
fn spawn_node(store_dir: &str, port: u16, peers: &[u16]) -> (Child, SocketAddr) {
    let mut args = vec![
        "serve".to_string(),
        store_dir.to_string(),
        "--addr".to_string(),
        format!("127.0.0.1:{port}"),
        "--sync-interval-ms".to_string(),
        "30".to_string(),
    ];
    for peer in peers {
        args.push("--peer".to_string());
        args.push(format!("127.0.0.1:{peer}"));
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_hmh"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hmh serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines.next().expect("daemon prints a readiness line").expect("readable stdout");
    let addr: SocketAddr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected readiness line: {first:?}"))
        .parse()
        .expect("parseable address");
    (child, addr)
}

fn hmh(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hmh")).args(args).output().expect("run hmh")
}

fn sketch(lo: u64, hi: u64) -> HyperMinHash {
    let params = HmhParams::new(8, 6, 6).unwrap();
    HyperMinHash::from_items(params, lo..hi)
}

/// Raw encoded bytes of one name on one node (the byte-identity oracle),
/// or None while the name has not replicated there yet.
fn encoded(addr: SocketAddr, name: &str) -> Option<Vec<u8>> {
    let mut conn = TcpStream::connect(addr).ok()?;
    conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    conn.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
    write_frame(&mut conn, &encode_request(&Request::Get { name: name.into() })).ok()?;
    let body = read_frame(&mut conn, MAX_FRAME_LEN).ok()??;
    match decode_response(&body).ok()? {
        Response::Sketch(bytes) => Some(bytes),
        _ => None,
    }
}

/// Poll until every node serves every expected name with exactly the
/// expected bytes.
fn await_convergence(addrs: &[SocketAddr], expect: &[(String, Vec<u8>)], tag: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let converged = addrs.iter().all(|&addr| {
            expect.iter().all(|(name, bytes)| encoded(addr, name).as_ref() == Some(bytes))
        });
        if converged {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{tag}: cluster did not converge byte-identically within 20s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn three_node_cluster_converges_survives_sigkill_and_rejoins() {
    let dir = TempDir::new("cluster");
    let stores: Vec<String> = (0..3).map(|i| dir.path(&format!("node{i}"))).collect();
    let ports: Vec<u16> = (0..3).map(|_| reserve_port()).collect();
    let peers_of =
        |i: usize| -> Vec<u16> { (0..3).filter(|&j| j != i).map(|j| ports[j]).collect() };

    let mut nodes: Vec<(Child, SocketAddr)> =
        (0..3).map(|i| spawn_node(&stores[i], ports[i], &peers_of(i))).collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(|(_, a)| *a).collect();

    // Disjoint writes on every node, plus contended shards of "shared".
    let shards = [sketch(0, 3_000), sketch(3_000, 6_000), sketch(6_000, 9_000)];
    for (i, shard) in shards.iter().enumerate() {
        let mut c = Client::connect(addrs[i]);
        c.put(&format!("node{i}-only"), shard).unwrap();
        c.merge("shared", shard).unwrap();
    }
    let mut union = shards[0].clone();
    union.merge(&shards[1]).unwrap();
    union.merge(&shards[2]).unwrap();
    let mut expect: Vec<(String, Vec<u8>)> = shards
        .iter()
        .enumerate()
        .map(|(i, s)| (format!("node{i}-only"), format::encode(s)))
        .collect();
    expect.push(("shared".to_string(), format::encode(&union)));

    await_convergence(&addrs, &expect, "initial");

    // The CLI health view names the peers and the replication round.
    let health_out = hmh(&["client", &addrs[0].to_string(), "health"]);
    assert!(health_out.status.success(), "health: {health_out:?}");
    let health = String::from_utf8(health_out.stdout).unwrap();
    assert!(health.contains("replication_rounds:"), "{health}");
    for peer in peers_of(0) {
        assert!(health.contains(&format!("peer 127.0.0.1:{peer}:")), "{health}");
    }
    assert!(health.contains("healthy"), "{health}");

    // SIGKILL node 2 mid-sync: push a fresh divergence onto node 0 so
    // sync traffic toward node 2 is in flight, then kill without
    // ceremony. The stale lock file stays behind.
    Client::connect(addrs[0]).put("pre-kill", &sketch(9_000, 12_000)).unwrap();
    nodes[2].0.kill().expect("SIGKILL node 2");
    nodes[2].0.wait().expect("reap node 2");
    assert!(
        std::path::Path::new(&stores[2]).join(hmh_store::LOCK_FILE).exists(),
        "SIGKILL leaves the lock file behind"
    );

    // Life goes on for the survivors: writes land and replicate between
    // nodes 0 and 1 while node 2 is dead.
    Client::connect(addrs[1]).put("during-outage", &sketch(12_000, 15_000)).unwrap();
    expect.push(("pre-kill".to_string(), format::encode(&sketch(9_000, 12_000))));
    expect.push(("during-outage".to_string(), format::encode(&sketch(12_000, 15_000))));
    await_convergence(&addrs[..2], &expect, "during-outage");

    // The failover client rotates past the dead replica: node 2's
    // address first in the ring, survivors behind it.
    let ring = format!("{},{},{}", addrs[2], addrs[0], addrs[1]);
    let card_out = hmh(&["client", &ring, "card", "shared"]);
    assert!(card_out.status.success(), "failover card: {card_out:?}");
    let card_line = String::from_utf8(card_out.stdout).unwrap();
    let card: f64 = card_line
        .trim()
        .strip_prefix("shared: ")
        .unwrap_or_else(|| panic!("unexpected card output: {card_line:?}"))
        .parse()
        .unwrap();
    assert!((card / 9_000.0 - 1.0).abs() < 0.15, "failover estimate: {card}");

    // Salvage contract on the killed store: clean (0) or salvaged (1),
    // never unrecoverable — fsck also steals the stale lock.
    let fsck = hmh(&["store", &stores[2], "fsck"]);
    let code = fsck.status.code().expect("fsck exit code");
    assert!(code == 0 || code == 1, "clean-or-salvaged after SIGKILL, got {code}");

    // Rejoin: node 2 restarts on its old port, from its old directory,
    // with the same peers — and the whole cluster re-converges on
    // everything, including the writes it slept through.
    nodes[2] = spawn_node(&stores[2], ports[2], &peers_of(2));
    let addrs: Vec<SocketAddr> = nodes.iter().map(|(_, a)| *a).collect();
    await_convergence(&addrs, &expect, "rejoin");

    // Orderly teardown: every node drains on protocol shutdown.
    for (i, (child, addr)) in nodes.iter_mut().enumerate() {
        Client::connect(*addr).shutdown().unwrap();
        let status = child.wait().expect("node exits after shutdown");
        assert!(status.success(), "node {i} clean exit: {status:?}");
    }
}
