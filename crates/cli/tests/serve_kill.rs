//! Process-level crash drill: a real `hmh serve` daemon, SIGKILLed with
//! a PUT half-written into its socket, must leave a store the next open
//! salvages — and the next daemon must steal the dead process's lock
//! file and serve normally.
//!
//! This is the part of the chaos harness an in-process test cannot
//! reach: `Child::kill()` is SIGKILL on Unix, so the daemon gets no
//! destructors, no Drop-released lock, no flush — exactly the failure
//! the store's recovery discipline exists for.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use hmh_core::format;
use hmh_core::{HmhParams, HyperMinHash};
use hmh_serve::proto::{encode_request, write_frame, Request};
use hmh_serve::Client;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hmh-kill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Spawn `hmh serve DIR --addr 127.0.0.1:0` and wait for its readiness
/// line ("listening on ADDR").
fn spawn_daemon(store_dir: &str) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hmh"))
        .args(["serve", store_dir, "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hmh serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines.next().expect("daemon prints a readiness line").expect("readable stdout");
    let addr: SocketAddr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected readiness line: {first:?}"))
        .parse()
        .expect("parseable address");
    (child, addr)
}

fn hmh(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hmh")).args(args).output().expect("run hmh")
}

fn sketch(lo: u64, hi: u64) -> HyperMinHash {
    let params = HmhParams::new(8, 6, 6).unwrap();
    HyperMinHash::from_items(params, lo..hi)
}

#[test]
fn sigkill_mid_put_then_restart_salvages_and_steals_the_lock() {
    let dir = TempDir::new("midput");
    let store_dir = dir.path("db");

    let (mut child, addr) = spawn_daemon(&store_dir);

    // An acknowledged write the crash must not lose.
    let durable = sketch(0, 5_000);
    let mut client = Client::connect(addr);
    client.put("durable", &durable).unwrap();

    // Start a PUT but stop half-way through the frame, then SIGKILL the
    // daemon while the worker is blocked mid-read. No destructors run:
    // the lock file stays behind with a dead PID in it.
    let body = encode_request(&Request::Put {
        name: "torn".into(),
        sketch: format::encode(&sketch(0, 3_000)),
    });
    let mut framed = Vec::new();
    write_frame(&mut framed, &body).unwrap();
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&framed[..framed.len() / 2]).unwrap();
    conn.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let a worker pick the read up

    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap");
    drop(conn);

    // The dead daemon's lock file is still on disk...
    let lock_path = std::path::Path::new(&store_dir).join(hmh_store::LOCK_FILE);
    assert!(lock_path.exists(), "SIGKILL leaves the lock file behind");

    // ...yet fsck opens the store (stealing the stale lock) and reports
    // the contract: 0 clean or 1 salvaged — never 2 after a mere kill.
    let out = hmh(&["store", &store_dir, "fsck", "--json"]);
    let code = out.status.code().expect("exit code");
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(code == 0 || code == 1, "clean-or-salvaged after SIGKILL, got {code}: {report}");
    assert!(
        report.contains("\"status\":\"clean\"") || report.contains("\"status\":\"salvaged\""),
        "{report}"
    );

    // A fresh daemon steals the stale lock too, and the acknowledged
    // write is still there, bit-exact.
    let (mut child2, addr2) = spawn_daemon(&store_dir);
    let mut client2 = Client::connect(addr2);
    assert_eq!(client2.get("durable").unwrap(), durable, "acknowledged write survived SIGKILL");
    assert!(client2.get("torn").is_err(), "the half-sent PUT must not have been applied");

    // Normal service continues: write, estimate, clean shutdown.
    client2.merge("durable", &sketch(2_500, 7_500)).unwrap();
    let estimate = client2.card("durable").unwrap();
    assert!((estimate / 7_500.0 - 1.0).abs() < 0.15, "estimate after recovery: {estimate}");
    client2.shutdown().unwrap();
    let status = child2.wait().expect("daemon exits after protocol shutdown");
    assert!(status.success(), "clean drain-then-exit: {status:?}");

    // After a *clean* exit the lock is gone and the store is clean.
    assert!(!lock_path.exists(), "orderly shutdown removes the lock");
    assert_eq!(hmh(&["store", &store_dir, "fsck"]).status.code(), Some(0));
}

#[test]
fn second_daemon_on_a_live_store_fails_fast() {
    let dir = TempDir::new("second");
    let store_dir = dir.path("db");
    let (mut child, _addr) = spawn_daemon(&store_dir);

    // While the first daemon lives, a second one must refuse to start —
    // fast, with a message naming the holder.
    let out = hmh(&["serve", &store_dir, "--addr", "127.0.0.1:0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("locked"), "names the conflict: {stderr}");
    assert!(
        stderr.contains(&child.id().to_string()),
        "names the holder pid {}: {stderr}",
        child.id()
    );

    // So must direct store access.
    let out = hmh(&["store", &store_dir, "list"]);
    assert!(!out.status.success());

    child.kill().unwrap();
    child.wait().unwrap();
}
