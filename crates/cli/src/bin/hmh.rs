//! Thin binary wrapper over `hmh_cli::run`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = hmh_cli::run(&args, &mut out) {
        eprintln!("hmh: {}", e.message);
        std::process::exit(e.code);
    }
}
