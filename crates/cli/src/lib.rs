//! `hmh` — a command-line tool for HyperMinHash sketches.
//!
//! Builds sketches from line-oriented data (one set element per line),
//! stores them in the compact binary format (`hmh-core::format`), and
//! answers the paper's query repertoire from the sketches alone:
//!
//! ```text
//! hmh sketch -p 12 -q 6 -r 10 -o day1.hmh access-day1.log
//! hmh sketch -p 12 -q 6 -r 10 -o day2.hmh access-day2.log
//! hmh card day1.hmh day2.hmh
//! hmh jaccard day1.hmh day2.hmh
//! hmh union -o both.hmh day1.hmh day2.hmh
//! hmh query '(a | b) & c' a=day1.hmh b=day2.hmh c=day3.hmh
//! ```
//!
//! All command logic lives in [`run`] (taking the output stream as a
//! parameter) so the test suite drives the real code paths; the binary is
//! a thin wrapper.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use hmh_cnf::{eval, SketchCatalog};
use hmh_core::format::{decode, encode};
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::{HashAlgorithm, RandomOracle};
use std::io::{BufRead, Write};
use std::path::Path;

/// CLI failure: a message and a suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code to use.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self { message: message.into(), code: 2 }
    }

    fn runtime(message: impl Into<String>) -> Self {
        Self { message: message.into(), code: 1 }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
usage: hmh <command> [options]

commands:
  sketch  [-p P] [-q Q] [-r R] [--seed S] [--alg A] -o OUT [FILE]
          build a sketch from lines of FILE (or stdin); A in
          murmur3|sha1|xxpair|splitmix (default murmur3)
  info    FILE...             print parameters and occupancy
  card    FILE...             print cardinality estimates
  union   -o OUT FILE...      merge sketches losslessly
  jaccard A B                 Jaccard index of two sketches
  intersect A B               intersection cardinality of two sketches
  query   EXPR NAME=FILE...   CNF query, e.g. '(a | b) & c'
  store   DIR OP [ARG...]     crash-safe named sketch store; OP is one of
            put NAME FILE     store sketch FILE under NAME
            get NAME OUT      extract sketch NAME to file OUT
            list              list stored sketches with estimates
            remove NAME       remove a sketch (durable tombstone)
            compact           rewrite the snapshot, reset the log
            fsck [--json]     report on-disk health (salvage scan) with
                              per-record corruption spans; exits 0
                              clean, 1 salvaged, 2 unrecoverable
            scrub             re-verify every committed record's
                              checksum, repair from surviving copies,
                              quarantine the rest; exits 0 clean, 1 when
                              repair or quarantine work was done, 2
                              unrecoverable
  serve   DIR [--addr A] [--workers N] [--queue-depth N]
              [--peer ADDR]... [--sync-interval-ms N]
          serve the store at DIR over TCP (default 127.0.0.1:7700);
          holds the store lock until a client sends shutdown. Each
          --peer names another replica; the daemon then runs periodic
          anti-entropy (digest exchange + lossless merge pull) against
          its peers and reports per-peer health
  client  ADDR[,ADDR...] [--budget-ms B] OP [ARG...]
          talk to a running daemon; several comma-separated addresses
          form an ordered failover list (BUSY, timeouts and refusals
          rotate to the next replica). --budget-ms stamps a deadline
          budget on the request: servers refuse it typed (EXPIRED)
          instead of serving it late. OP is one of
            put NAME FILE / merge NAME FILE / get NAME OUT
            batch NAME FILE [-p P] [-q Q] [-r R] [--seed S] [--alg A]
                              ingest lines of FILE into NAME server-side
            card NAME / jaccard A B / list / health / shutdown
            scrub [--status]  trigger a full scrub pass on the server
                              (--status only reads the counters) and
                              list the quarantined names
  route   OP [ARG...]         consistent-hash routing tier; OP is one of
            serve RING [--addr A] [--workers N] [--queue-depth N]
                              route the cluster described by ring file
                              RING (default 127.0.0.1:7800); clients
                              talk to the router exactly as to a daemon
            owner RING NAME...
                              print the replica group owning each NAME
            rebalance OLD NEW
                              move sketches from ring file OLD to ring
                              file NEW (copy, verify, release); safe to
                              re-run after a crash or SIGKILL
  loadgen OP ADDR [flags]     seeded load generator for a daemon or a
          router; OP is one of
            run ADDR [--seed S] [--connections N] [--duty-ms D]
                     [--rate OPS_PER_SEC] [--budget-ms B] [--keys K]
                     [--pipeline P]
                     [--mix put=20,card=70,jaccard=9,list=1]
                              one load phase: closed loop, or an
                              open-loop schedule when --rate is set;
                              --pipeline keeps P frames in flight per
                              connection; prints goodput, p50/p99 and
                              the outcome taxonomy (ok/busy/expired/...)
            sweep ADDR [--seed S] [--connections N] [--duty-ms D]
                       [--budget-ms B] [--keys K] [--band F]
                       [--pipeline P] [--min-speedup R] [--json FILE]
                              closed-loop peak, then 1x/2x/4x offered
                              overload; fails unless goodput at 4x
                              stays >= F of peak (default 0.7) with
                              typed rejections; with --pipeline P > 1 a
                              second calibration prices pipelining and
                              --min-speedup fails the run unless
                              pipelined peak >= R x serial peak; --json
                              writes the BENCH_serve.json artifact
";

/// Run the CLI with pre-split arguments (no program name), writing results
/// to `out`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::usage(USAGE));
    };
    match command.as_str() {
        "sketch" => cmd_sketch(rest, out),
        "info" => cmd_info(rest, out),
        "card" => cmd_card(rest, out),
        "union" => cmd_union(rest, out),
        "jaccard" => cmd_pairwise(rest, out, Pairwise::Jaccard),
        "intersect" => cmd_pairwise(rest, out, Pairwise::Intersect),
        "query" => cmd_query(rest, out),
        "store" => cmd_store(rest, out),
        "serve" => cmd_serve(rest, out),
        "client" => cmd_client(rest, out),
        "route" => cmd_route(rest, out),
        "loadgen" => cmd_loadgen(rest, out),
        "--help" | "-h" | "help" => {
            write_out(out, USAGE)?;
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

fn write_out(out: &mut dyn Write, text: impl AsRef<str>) -> Result<(), CliError> {
    out.write_all(text.as_ref().as_bytes())
        .map_err(|e| CliError::runtime(format!("write failed: {e}")))
}

fn load(path: &str) -> Result<HyperMinHash, CliError> {
    let bytes = std::fs::read(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    decode(&bytes).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

fn save(path: &str, sketch: &HyperMinHash) -> Result<(), CliError> {
    // Write-temp + fsync + rename: a crash (or failed/short write) mid-save
    // must never replace an existing sketch file with a torn one.
    hmh_store::atomic_write_file(Path::new(path), &encode(sketch))
        .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))
}

fn parse_algorithm(name: &str) -> Result<HashAlgorithm, CliError> {
    Ok(match name {
        "murmur3" => HashAlgorithm::Murmur3,
        "sha1" => HashAlgorithm::Sha1,
        "xxpair" => HashAlgorithm::XxPair,
        "splitmix" => HashAlgorithm::SplitMix,
        other => return Err(CliError::usage(format!("unknown algorithm {other:?}"))),
    })
}

/// Parse the shared sketch-configuration flags (`-p/-q/-r/--seed/--alg`)
/// with the same defaults as `sketch`, for operations that create a
/// sketch elsewhere (the daemon's batched ingest).
fn parse_sketch_config(args: &[String]) -> Result<(HmhParams, RandomOracle), CliError> {
    let (mut p, mut q, mut r) = (12u32, 6u32, 10u32);
    let mut seed = 0u64;
    let mut algorithm = HashAlgorithm::Murmur3;
    let mut i = 0;
    let need = |args: &[String], i: usize, flag: &str| -> Result<String, CliError> {
        args.get(i).cloned().ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "-p" => {
                i += 1;
                p = need(args, i, "-p")?.parse().map_err(|e| CliError::usage(format!("-p: {e}")))?;
            }
            "-q" => {
                i += 1;
                q = need(args, i, "-q")?.parse().map_err(|e| CliError::usage(format!("-q: {e}")))?;
            }
            "-r" => {
                i += 1;
                r = need(args, i, "-r")?.parse().map_err(|e| CliError::usage(format!("-r: {e}")))?;
            }
            "--seed" => {
                i += 1;
                seed = need(args, i, "--seed")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--seed: {e}")))?;
            }
            "--alg" => {
                i += 1;
                algorithm = parse_algorithm(&need(args, i, "--alg")?)?;
            }
            other => return Err(CliError::usage(format!("unexpected argument {other:?}"))),
        }
        i += 1;
    }
    let params =
        HmhParams::new(p, q, r).map_err(|e| CliError::usage(format!("bad parameters: {e}")))?;
    Ok((params, RandomOracle::new(algorithm, seed)))
}

fn cmd_sketch(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (mut p, mut q, mut r) = (12u32, 6u32, 10u32);
    let mut seed = 0u64;
    let mut algorithm = HashAlgorithm::Murmur3;
    let mut output: Option<String> = None;
    let mut input: Option<String> = None;

    let mut i = 0;
    let need = |args: &[String], i: usize, flag: &str| -> Result<String, CliError> {
        args.get(i).cloned().ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "-p" => {
                i += 1;
                p = need(args, i, "-p")?.parse().map_err(|e| CliError::usage(format!("-p: {e}")))?;
            }
            "-q" => {
                i += 1;
                q = need(args, i, "-q")?.parse().map_err(|e| CliError::usage(format!("-q: {e}")))?;
            }
            "-r" => {
                i += 1;
                r = need(args, i, "-r")?.parse().map_err(|e| CliError::usage(format!("-r: {e}")))?;
            }
            "--seed" => {
                i += 1;
                seed = need(args, i, "--seed")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--seed: {e}")))?;
            }
            "--alg" => {
                i += 1;
                algorithm = parse_algorithm(&need(args, i, "--alg")?)?;
            }
            "-o" => {
                i += 1;
                output = Some(need(args, i, "-o")?);
            }
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(other.to_string());
            }
            other => return Err(CliError::usage(format!("unexpected argument {other:?}"))),
        }
        i += 1;
    }
    let output = output.ok_or_else(|| CliError::usage("sketch needs -o OUT"))?;
    let params =
        HmhParams::new(p, q, r).map_err(|e| CliError::usage(format!("bad parameters: {e}")))?;
    let mut sketch = HyperMinHash::with_oracle(params, RandomOracle::new(algorithm, seed));

    let mut lines = 0u64;
    let mut feed = |reader: &mut dyn BufRead| -> Result<(), CliError> {
        for line in reader.lines() {
            let line = line.map_err(|e| CliError::runtime(format!("read failed: {e}")))?;
            let item = line.trim();
            if !item.is_empty() {
                sketch.insert(&item);
                lines += 1;
            }
        }
        Ok(())
    };
    match &input {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?;
            feed(&mut std::io::BufReader::new(file))?;
        }
        None => feed(&mut std::io::stdin().lock())?,
    }
    save(&output, &sketch)?;
    write_out(
        out,
        format!(
            "{output}: {params}, {} lines consumed, {} buckets occupied, estimate {:.0}\n",
            lines,
            sketch.occupied(),
            sketch.cardinality()
        ),
    )
}

fn cmd_info(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    if args.is_empty() {
        return Err(CliError::usage("info needs at least one sketch file"));
    }
    for path in args {
        let s = load(path)?;
        let params = s.params();
        write_out(
            out,
            format!(
                "{path}: {params}, {} bytes, oracle {:?}/seed {}, {}/{} buckets occupied\n",
                params.byte_size(),
                s.oracle().algorithm(),
                s.oracle().seed(),
                s.occupied(),
                params.num_buckets()
            ),
        )?;
    }
    Ok(())
}

fn cmd_card(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    if args.is_empty() {
        return Err(CliError::usage("card needs at least one sketch file"));
    }
    for path in args {
        let s = load(path)?;
        write_out(out, format!("{path}: {:.0}\n", s.cardinality()))?;
    }
    Ok(())
}

fn cmd_union(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut output: Option<String> = None;
    let mut inputs: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "-o" {
            i += 1;
            output = Some(
                args.get(i)
                    .cloned()
                    .ok_or_else(|| CliError::usage("-o needs a value"))?,
            );
        } else {
            inputs.push(&args[i]);
        }
        i += 1;
    }
    let output = output.ok_or_else(|| CliError::usage("union needs -o OUT"))?;
    let [first, rest @ ..] = inputs.as_slice() else {
        return Err(CliError::usage("union needs at least one input sketch"));
    };
    let mut acc = load(first)?;
    for path in rest {
        let next = load(path)?;
        acc.merge(&next).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    }
    save(&output, &acc)?;
    write_out(out, format!("{output}: union of {} sketches, estimate {:.0}\n", inputs.len(), acc.cardinality()))
}

enum Pairwise {
    Jaccard,
    Intersect,
}

fn cmd_pairwise(args: &[String], out: &mut dyn Write, kind: Pairwise) -> Result<(), CliError> {
    let [a, b] = args else {
        return Err(CliError::usage("expected exactly two sketch files"));
    };
    let (sa, sb) = (load(a)?, load(b)?);
    match kind {
        Pairwise::Jaccard => {
            let j = sa.jaccard(&sb).map_err(|e| CliError::runtime(e.to_string()))?;
            write_out(
                out,
                format!(
                    "jaccard {:.6} (raw {:.6}, {} of {} buckets matching)\n",
                    j.estimate, j.raw, j.matching, j.occupied
                ),
            )
        }
        Pairwise::Intersect => {
            let est = sa.intersection(&sb).map_err(|e| CliError::runtime(e.to_string()))?;
            write_out(
                out,
                format!(
                    "intersection {:.0} (jaccard {:.6}, union {:.0})\n",
                    est.intersection, est.jaccard, est.union
                ),
            )
        }
    }
}

fn cmd_query(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let [expr, bindings @ ..] = args else {
        return Err(CliError::usage("query needs an expression and NAME=FILE bindings"));
    };
    if bindings.is_empty() {
        return Err(CliError::usage("query needs at least one NAME=FILE binding"));
    }
    let mut catalog: Option<SketchCatalog> = None;
    for binding in bindings {
        let Some((name, path)) = binding.split_once('=') else {
            return Err(CliError::usage(format!("binding {binding:?} is not NAME=FILE")));
        };
        let sketch = load(path)?;
        let cat = catalog.get_or_insert_with(|| SketchCatalog::new(sketch.params()));
        cat.adopt(name, sketch).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    }
    let catalog = catalog.expect("bindings checked non-empty");
    let answer =
        eval::query(&catalog, expr).map_err(|e| CliError::runtime(format!("query failed: {e}")))?;
    write_out(
        out,
        format!(
            "count {:.0} (jaccard {:.6}, clause union {:.0})\n",
            answer.count, answer.jaccard, answer.union
        ),
    )
}

fn cmd_store(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let [dir, op, rest @ ..] = args else {
        return Err(CliError::usage("store needs DIR and an operation\n(see `hmh help`)"));
    };
    // fsck and scrub reserve exit code 2 for "unrecoverable": a store
    // that cannot even open (I/O failure, or another process — a daemon
    // or CLI — holds the lock). Other ops use the generic failure code.
    // They also open with auto-heal off: fsck is read-only by contract
    // (the corrupt spans must still be on disk for it to report), and
    // scrub does its own detection and healing — letting the open
    // compact first would leave both nothing to find.
    let diagnostic = op == "fsck" || op == "scrub";
    let open_code = if diagnostic { 2 } else { 1 };
    let options =
        hmh_store::StoreOptions { auto_heal: !diagnostic, ..hmh_store::StoreOptions::default() };
    let mut store = hmh_store::SketchStore::open_opts(dir, options)
        .map_err(|e| CliError { message: format!("cannot open store {dir}: {e}"), code: open_code })?;
    let opened = store.recovery_report().clone();
    match (op.as_str(), rest) {
        ("put", [name, file]) => {
            let sketch = load(file)?;
            store
                .put(name, &sketch)
                .map_err(|e| CliError::runtime(format!("put {name}: {e}")))?;
            write_out(out, format!("{dir}: stored {name} ({})\n", sketch.params()))
        }
        ("get", [name, output]) => {
            let sketch = store
                .get(name)
                .map_err(|e| CliError::runtime(format!("get {name}: {e}")))?
                .ok_or_else(|| CliError::runtime(format!("no sketch named {name:?} in {dir}")))?;
            save(output, &sketch)?;
            write_out(out, format!("{output}: {} (estimate {:.0})\n", sketch.params(), sketch.cardinality()))
        }
        ("list", []) => {
            for name in store.names().map(str::to_string).collect::<Vec<_>>() {
                let sketch = store
                    .get(&name)
                    .map_err(|e| CliError::runtime(format!("{name}: {e}")))?
                    .expect("listed names exist");
                write_out(
                    out,
                    format!("{name}: {}, estimate {:.0}\n", sketch.params(), sketch.cardinality()),
                )?;
            }
            write_out(out, format!("{} sketches\n", store.len()))
        }
        ("remove", [name]) => {
            let removed = store
                .remove(name)
                .map_err(|e| CliError::runtime(format!("remove {name}: {e}")))?;
            if !removed {
                return Err(CliError::runtime(format!("no sketch named {name:?} in {dir}")));
            }
            write_out(out, format!("{dir}: removed {name}\n"))
        }
        ("compact", []) => {
            store.compact().map_err(|e| CliError::runtime(format!("compact: {e}")))?;
            write_out(out, format!("{dir}: compacted to {} sketches\n", store.len()))
        }
        ("fsck", rest) => {
            let json = match rest {
                [] => false,
                [flag] if flag == "--json" => true,
                _ => return Err(CliError::usage("fsck takes at most --json")),
            };
            let detail = store
                .fsck_detail()
                .map_err(|e| CliError { message: format!("fsck: {e}"), code: 2 })?;
            let now = &detail.report;
            // "Salvaged" means recovery had to do work anywhere along the
            // way: the open found damage (quarantine or a torn tail), or
            // the disk is dirty right now.
            let salvaged = !opened.is_clean() || !now.is_clean();
            if json {
                write_out(
                    out,
                    format!(
                        "{{\"dir\":{},\"open\":{},\"disk\":{},\"spans\":[{}],\"status\":\"{}\"}}\n",
                        json_string(dir),
                        json_report(&opened),
                        json_report(now),
                        detail
                            .spans
                            .iter()
                            .map(json_span)
                            .collect::<Vec<_>>()
                            .join(","),
                        if salvaged { "salvaged" } else { "clean" },
                    ),
                )?;
            } else {
                write_out(
                    out,
                    format!(
                        "{dir}: open recovered {} record(s), quarantined {} region(s), torn tail: {}\n\
                         {dir}: on disk now: {} record(s), {} corrupt region(s), torn tail: {} — {}\n",
                        opened.recovered,
                        opened.quarantined,
                        opened.truncated_tail,
                        now.recovered,
                        now.quarantined,
                        now.truncated_tail,
                        if now.is_clean() { "clean" } else { "DIRTY" },
                    ),
                )?;
                for finding in &detail.spans {
                    let span = &finding.span;
                    let name = span.name.as_deref().unwrap_or("<unattributed>");
                    write_out(
                        out,
                        format!(
                            "{dir}: corrupt span in {} at offset {}, {} byte(s), record {name}, \
                             checksum expected {:#018x} actual {:#018x}\n",
                            finding.file, span.offset, span.len, span.expected, span.actual,
                        ),
                    )?;
                }
            }
            if salvaged {
                // Report already written; the code tells scripts what
                // happened: 1 = recovered with salvage work done.
                return Err(CliError { message: format!("{dir}: salvage was needed"), code: 1 });
            }
            Ok(())
        }
        ("scrub", []) => {
            // One full offline pass: every committed record's checksum
            // re-verified. Corruption with a surviving valid copy is
            // repaired in place (the in-memory map is authoritative);
            // corruption without one is fenced in quarantine. The exit
            // code is the contract scripts script against: 0 = every
            // record verified clean, 1 = repair or quarantine work was
            // done, 2 = the scrub itself could not run.
            let pass = store
                .scrub_full(hmh_store::SCRUB_SLICE_BYTES)
                .map_err(|e| CliError { message: format!("scrub: {e}"), code: 2 })?;
            let fenced = store.quarantined_page("", usize::MAX);
            // "Repaired" for display means spans this pass rewrote from
            // a surviving copy — not spans whose record is fenced (the
            // store's cumulative counter can attribute those to the
            // open-time fence instead and would double-count them here).
            let repaired = pass
                .findings
                .iter()
                .filter(|f| match f.span.name.as_deref() {
                    Some(name) => !fenced.iter().any(|q| q == name),
                    None => true,
                })
                .count();
            write_out(
                out,
                format!(
                    "{dir}: scrubbed {} record(s), {} corrupt span(s) found, \
                     {} repaired, {} quarantined\n",
                    pass.records,
                    pass.findings.len(),
                    repaired,
                    fenced.len(),
                ),
            )?;
            for finding in &pass.findings {
                let span = &finding.span;
                let name = span.name.as_deref().unwrap_or("<unattributed>");
                write_out(
                    out,
                    format!(
                        "{dir}: corrupt span in {} at offset {}, {} byte(s), record {name}\n",
                        finding.file, span.offset, span.len,
                    ),
                )?;
            }
            for name in &fenced {
                write_out(out, format!("{dir}: quarantined {name}\n"))?;
            }
            let worked = !pass.findings.is_empty() || !fenced.is_empty() || !opened.is_clean();
            if worked {
                return Err(CliError {
                    message: format!("{dir}: scrub found corruption"),
                    code: 1,
                });
            }
            Ok(())
        }
        (op, _) => Err(CliError::usage(format!(
            "bad store operation {op:?} (or wrong arguments)\n(see `hmh help`)"
        ))),
    }
}

/// One fsck corruption span as a JSON object.
fn json_span(finding: &hmh_store::ScrubFinding) -> String {
    let span = &finding.span;
    let name = span.name.as_ref().map_or_else(|| "null".to_string(), |n| json_string(n));
    format!(
        "{{\"file\":{},\"offset\":{},\"length\":{},\"name\":{name},\
         \"checksum_expected\":{},\"checksum_actual\":{}}}",
        json_string(finding.file),
        span.offset,
        span.len,
        span.expected,
        span.actual,
    )
}

fn json_report(r: &hmh_store::RecoveryReport) -> String {
    format!(
        "{{\"recovered\":{},\"quarantined\":{},\"truncated_tail\":{}}}",
        r.recovered, r.quarantined, r.truncated_tail
    )
}

fn json_string(s: &str) -> String {
    let mut escaped = String::with_capacity(s.len() + 2);
    escaped.push('"');
    for c in s.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped.push('"');
    escaped
}

/// Resolve one `HOST:PORT` argument to a socket address.
fn resolve_addr(addr: &str) -> Result<std::net::SocketAddr, CliError> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()
        .map_err(|e| CliError::usage(format!("bad address {addr:?}: {e}")))?
        .next()
        .ok_or_else(|| CliError::usage(format!("address {addr:?} resolves to nothing")))
}

fn cmd_serve(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let [dir, rest @ ..] = args else {
        return Err(CliError::usage("serve needs a store DIR"));
    };
    let mut addr = "127.0.0.1:7700".to_string();
    let mut opts = hmh_serve::ServeOptions::default();
    let mut peers: Vec<std::net::SocketAddr> = Vec::new();
    let mut sync_interval = std::time::Duration::from_secs(1);
    let need = |args: &[String], i: usize, flag: &str| -> Result<String, CliError> {
        args.get(i).cloned().ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" => {
                i += 1;
                addr = need(rest, i, "--addr")?;
            }
            "--workers" => {
                i += 1;
                opts.workers = need(rest, i, "--workers")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--workers: {e}")))?;
            }
            "--queue-depth" => {
                i += 1;
                opts.queue_depth = need(rest, i, "--queue-depth")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--queue-depth: {e}")))?;
            }
            "--peer" => {
                i += 1;
                peers.push(resolve_addr(&need(rest, i, "--peer")?)?);
            }
            "--sync-interval-ms" => {
                i += 1;
                let ms: u64 = need(rest, i, "--sync-interval-ms")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--sync-interval-ms: {e}")))?;
                sync_interval = std::time::Duration::from_millis(ms.max(1));
            }
            other => return Err(CliError::usage(format!("unexpected argument {other:?}"))),
        }
        i += 1;
    }
    let handle = hmh_serve::serve(dir, addr.as_str(), opts)
        .map_err(|e| CliError::runtime(format!("serve: {e}")))?;
    // With peers configured, run the anti-entropy engine alongside the
    // daemon. The jitter seed folds in the bound port so co-hosted
    // replicas started the same instant still decorrelate their rounds.
    let engine = if peers.is_empty() {
        None
    } else {
        let replica_opts = hmh_replica::ReplicaOptions {
            interval: sync_interval,
            jitter_seed: u64::from(handle.addr().port())
                ^ (u64::from(std::process::id()) << 16),
            // Anti-entropy is repair traffic: give it a shared retry
            // budget so its rounds yield (visible as HEALTH
            // retry_budget_exhausted) instead of competing with
            // client traffic when peers are struggling.
            retry_budget: Some(std::sync::Arc::new(hmh_serve::RetryBudget::default())),
            ..hmh_replica::ReplicaOptions::default()
        };
        Some(
            hmh_replica::AntiEntropy::spawn(
                handle.addr(),
                &peers,
                handle.replication(),
                replica_opts,
            )
            .map_err(|e| CliError::runtime(format!("replication engine: {e}")))?,
        )
    };
    // The "listening on" line is the readiness signal scripts (and the
    // chaos harness) wait for; flush so it lands before we block.
    write_out(out, format!("listening on {}\n", handle.addr()))?;
    out.flush().map_err(|e| CliError::runtime(format!("write failed: {e}")))?;
    // Block until a client's SHUTDOWN drains the pool. No signal handler:
    // std has none, and SIGKILL-robustness is the store's salvage scan's
    // job, not the process's.
    while !handle.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    if let Some(engine) = engine {
        engine.stop();
    }
    handle.join();
    // Best effort: whoever was reading our stdout may be long gone by
    // now (`hmh serve | head -1`), and a vanished log pipe must not turn
    // a clean drain into a failing exit status.
    let _ = write_out(out, "shutdown complete\n");
    Ok(())
}

fn cmd_client(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    // `--budget-ms B` may appear between the address and the operation;
    // strip it before positional matching.
    let mut budget: Option<std::time::Duration> = None;
    let mut positional: Vec<String> = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--budget-ms" {
            i += 1;
            let ms: u64 = args
                .get(i)
                .ok_or_else(|| CliError::usage("--budget-ms needs a value"))?
                .parse()
                .map_err(|e| CliError::usage(format!("--budget-ms: {e}")))?;
            if ms == 0 || ms > u64::from(hmh_serve::MAX_BUDGET_MS) {
                return Err(CliError::usage(format!(
                    "--budget-ms must be in 1..={}",
                    hmh_serve::MAX_BUDGET_MS
                )));
            }
            budget = Some(std::time::Duration::from_millis(ms));
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }
    let [addr_list, op, rest @ ..] = positional.as_slice() else {
        return Err(CliError::usage("client needs ADDR and an operation\n(see `hmh help`)"));
    };
    // One address talks to one daemon; a comma-separated list is an
    // ordered failover ring (a single entry is just a ring of one).
    let addrs = addr_list
        .split(',')
        .filter(|part| !part.is_empty())
        .map(resolve_addr)
        .collect::<Result<Vec<_>, _>>()?;
    if addrs.is_empty() {
        return Err(CliError::usage("client needs at least one address"));
    }
    let addr = addrs[0];
    let attempts = u32::try_from(addrs.len()).unwrap_or(u32::MAX).saturating_add(1);
    let mut client = hmh_serve::FailoverClient::with_options(
        &addrs,
        hmh_serve::ClientOptions { op_budget: budget, ..hmh_serve::ClientOptions::default() },
        attempts,
    );
    let fail = |op: &str, e: hmh_serve::ClientError| CliError::runtime(format!("{op}: {e}"));
    match (op.as_str(), rest) {
        ("put", [name, file]) => {
            let sketch = load(file)?;
            client.put(name, &sketch).map_err(|e| fail("put", e))?;
            write_out(out, format!("{addr}: stored {name} ({})\n", sketch.params()))
        }
        ("merge", [name, file]) => {
            let sketch = load(file)?;
            client.merge(name, &sketch).map_err(|e| fail("merge", e))?;
            write_out(out, format!("{addr}: merged into {name}\n"))
        }
        ("batch", [name, file, flags @ ..]) => {
            let (params, oracle) = parse_sketch_config(flags)?;
            let content = std::fs::read_to_string(file)
                .map_err(|e| CliError::runtime(format!("cannot read {file}: {e}")))?;
            // Same item discipline as `sketch`: trimmed, non-empty lines.
            // A string and its bytes hash identically, so batch-ingesting
            // a file server-side equals sketching it locally.
            let items: Vec<&[u8]> = content
                .lines()
                .map(str::trim)
                .filter(|line| !line.is_empty())
                .map(str::as_bytes)
                .collect();
            client.batch_put(name, params, oracle, &items).map_err(|e| fail("batch", e))?;
            write_out(
                out,
                format!("{addr}: ingested {} items into {name} ({params})\n", items.len()),
            )
        }
        ("get", [name, output]) => {
            let sketch = client.get(name).map_err(|e| fail("get", e))?;
            save(output, &sketch)?;
            write_out(
                out,
                format!("{output}: {} (estimate {:.0})\n", sketch.params(), sketch.cardinality()),
            )
        }
        ("card", [name]) => {
            let estimate = client.card(name).map_err(|e| fail("card", e))?;
            write_out(out, format!("{name}: {estimate:.0}\n"))
        }
        ("jaccard", [a, b]) => {
            let estimate = client.jaccard(a, b).map_err(|e| fail("jaccard", e))?;
            write_out(out, format!("jaccard {estimate:.6}\n"))
        }
        ("list", []) => {
            let names = client.list().map_err(|e| fail("list", e))?;
            for name in &names {
                write_out(out, format!("{name}\n"))?;
            }
            write_out(out, format!("{} sketches\n", names.len()))
        }
        ("health", []) => {
            let h = client.health().map_err(|e| fail("health", e))?;
            write_out(
                out,
                format!(
                    "read_only: {}\nworkers: {}\nqueue: {}/{}\nactive: {}\nshed: {}\nserved: {}\n\
                     sketches: {}\nstore_clean: {}\nquarantined: {}\ntruncated_tail: {}\n\
                     replication_rounds: {}\nroute_epoch: {}\nroute_handoffs: {}\n\
                     expired: {}\nretry_budget_exhausted: {}\nbreaker_open: {}\n\
                     scrub_rounds: {}\nrecords_scrubbed: {}\ncorrupt_found: {}\n\
                     repaired: {}\nscrub_quarantined: {}\nlast_scrub: {}\npeers: {}\n",
                    h.read_only,
                    h.workers,
                    h.queue_depth,
                    h.queue_capacity,
                    h.active,
                    h.shed,
                    h.served,
                    h.sketches,
                    h.store_clean,
                    h.quarantined,
                    h.truncated_tail,
                    h.rounds,
                    h.route_epoch,
                    h.route_handoffs,
                    h.expired,
                    h.retry_exhausted,
                    h.breaker_open,
                    h.scrub_rounds,
                    h.records_scrubbed,
                    h.corrupt_found,
                    h.repaired,
                    h.scrub_quarantined,
                    scrub_age(h.last_scrub_age_ms),
                    h.peers.len(),
                ),
            )?;
            for peer in &h.peers {
                let age = if peer.last_sync_age == u64::MAX {
                    "never synced".to_string()
                } else {
                    format!("last sync {} round(s) ago", peer.last_sync_age)
                };
                write_out(
                    out,
                    format!(
                        "peer {}: {}, {age}, {} mismatch(es) repaired\n",
                        peer.addr, peer.state, peer.mismatches
                    ),
                )?;
            }
            Ok(())
        }
        ("scrub", rest) if rest.is_empty() || rest == ["--status".to_string()] => {
            // Bare `scrub` triggers one full synchronous pass server-side;
            // `--status` only reads the counters and the quarantine page
            // (safe against a read-only daemon, which refuses the trigger).
            let trigger = rest.is_empty();
            let report = client.scrub(trigger, "").map_err(|e| fail("scrub", e))?;
            write_out(
                out,
                format!(
                    "scrub_rounds: {}\nrecords_scrubbed: {}\ncorrupt_found: {}\n\
                     repaired: {}\nquarantined: {}\nlast_scrub: {}\n",
                    report.rounds,
                    report.records,
                    report.corrupt_found,
                    report.repaired,
                    report.quarantined,
                    scrub_age(report.last_scrub_age_ms),
                ),
            )?;
            for name in &report.names {
                write_out(out, format!("quarantined {name}\n"))?;
            }
            Ok(())
        }
        ("shutdown", []) => {
            client.shutdown().map_err(|e| fail("shutdown", e))?;
            write_out(out, format!("{addr}: shutdown requested\n"))
        }
        (op, _) => Err(CliError::usage(format!(
            "bad client operation {op:?} (or wrong arguments)\n(see `hmh help`)"
        ))),
    }
}

/// Render a `last_scrub_age_ms` wire value: `u64::MAX` is the sentinel
/// for "no pass has completed yet" (on a routing tier, "on at least one
/// shard").
fn scrub_age(age_ms: u64) -> String {
    if age_ms == u64::MAX {
        "never completed".to_string()
    } else {
        format!("{age_ms} ms ago")
    }
}

/// Load and build a ring from a committed ring-config file.
fn load_ring(path: &str) -> Result<hmh_route::Ring, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let config = hmh_route::RingConfig::from_text(&text)
        .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    hmh_route::Ring::build(config).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

fn cmd_route(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((op, rest)) = args.split_first() else {
        return Err(CliError::usage("route needs an operation\n(see `hmh help`)"));
    };
    match (op.as_str(), rest) {
        ("serve", [ring_file, flags @ ..]) => {
            let ring = load_ring(ring_file)?;
            let mut addr = "127.0.0.1:7800".to_string();
            let mut opts = hmh_route::RouteOptions::default();
            let need = |args: &[String], i: usize, flag: &str| -> Result<String, CliError> {
                args.get(i)
                    .cloned()
                    .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
            };
            let mut i = 0;
            while i < flags.len() {
                match flags[i].as_str() {
                    "--addr" => {
                        i += 1;
                        addr = need(flags, i, "--addr")?;
                    }
                    "--workers" => {
                        i += 1;
                        opts.workers = need(flags, i, "--workers")?
                            .parse()
                            .map_err(|e| CliError::usage(format!("--workers: {e}")))?;
                    }
                    "--queue-depth" => {
                        i += 1;
                        opts.queue_depth = need(flags, i, "--queue-depth")?
                            .parse()
                            .map_err(|e| CliError::usage(format!("--queue-depth: {e}")))?;
                    }
                    other => return Err(CliError::usage(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            let epoch = ring.epoch();
            let groups = ring.group_count();
            let handle = hmh_route::route(ring, addr.as_str(), opts)
                .map_err(|e| CliError::runtime(format!("route serve: {e}")))?;
            // Same readiness contract as `hmh serve`: scripts wait for
            // this line, so flush it before blocking.
            write_out(
                out,
                format!("listening on {} (epoch {epoch}, {groups} groups)\n", handle.addr()),
            )?;
            out.flush().map_err(|e| CliError::runtime(format!("write failed: {e}")))?;
            while !handle.is_finished() {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            handle.join();
            let _ = write_out(out, "shutdown complete\n");
            Ok(())
        }
        ("owner", [ring_file, names @ ..]) if !names.is_empty() => {
            let ring = load_ring(ring_file)?;
            for name in names {
                let group = ring.owner(name);
                let addrs: Vec<String> =
                    group.replicas.iter().map(ToString::to_string).collect();
                write_out(out, format!("{name}: {} ({})\n", group.id, addrs.join(",")))?;
            }
            Ok(())
        }
        ("rebalance", [old_file, new_file]) => {
            let old_ring = load_ring(old_file)?;
            let new_ring = load_ring(new_file)?;
            let report =
                hmh_route::rebalance(&old_ring, &new_ring, &hmh_route::RebalanceOptions::default())
                    .map_err(|e| CliError::runtime(format!("rebalance: {e}")))?;
            write_out(
                out,
                format!(
                    "rebalanced epoch {} -> {}: {} moved, {} handoffs, {} vanished\n",
                    old_ring.epoch(),
                    new_ring.epoch(),
                    report.moved,
                    report.handoffs,
                    report.vanished
                ),
            )
        }
        (op, _) => Err(CliError::usage(format!(
            "bad route operation {op:?} (or wrong arguments)\n(see `hmh help`)"
        ))),
    }
}

/// Parse the flags shared by `loadgen run` and `loadgen sweep` into a
/// base [`hmh_loadgen::LoadOptions`], plus the flags only one of them
/// understands (returned raw for the caller to interpret).
struct LoadgenFlags {
    base: hmh_loadgen::LoadOptions,
    rate: Option<f64>,
    band: f64,
    min_speedup: Option<f64>,
    json: Option<String>,
}

fn parse_loadgen_flags(args: &[String]) -> Result<LoadgenFlags, CliError> {
    let mut flags = LoadgenFlags {
        base: hmh_loadgen::LoadOptions::default(),
        rate: None,
        band: 0.7,
        min_speedup: None,
        json: None,
    };
    let need = |args: &[String], i: usize, flag: &str| -> Result<String, CliError> {
        args.get(i).cloned().ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                flags.base.seed = need(args, i, "--seed")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--seed: {e}")))?;
            }
            "--connections" => {
                i += 1;
                flags.base.connections = need(args, i, "--connections")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--connections: {e}")))?;
            }
            "--duty-ms" => {
                i += 1;
                let ms: u64 = need(args, i, "--duty-ms")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--duty-ms: {e}")))?;
                flags.base.duty = std::time::Duration::from_millis(ms.max(1));
            }
            "--keys" => {
                i += 1;
                flags.base.keys = need(args, i, "--keys")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--keys: {e}")))?;
            }
            "--budget-ms" => {
                i += 1;
                let ms: u64 = need(args, i, "--budget-ms")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--budget-ms: {e}")))?;
                flags.base.budget = Some(std::time::Duration::from_millis(ms.max(1)));
            }
            "--rate" => {
                i += 1;
                flags.rate = Some(
                    need(args, i, "--rate")?
                        .parse()
                        .map_err(|e| CliError::usage(format!("--rate: {e}")))?,
                );
            }
            "--band" => {
                i += 1;
                flags.band = need(args, i, "--band")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--band: {e}")))?;
            }
            "--pipeline" => {
                i += 1;
                flags.base.pipeline = need(args, i, "--pipeline")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("--pipeline: {e}")))?;
            }
            "--min-speedup" => {
                i += 1;
                flags.min_speedup = Some(
                    need(args, i, "--min-speedup")?
                        .parse()
                        .map_err(|e| CliError::usage(format!("--min-speedup: {e}")))?,
                );
            }
            "--json" => {
                i += 1;
                flags.json = Some(need(args, i, "--json")?);
            }
            "--mix" => {
                i += 1;
                flags.base.mix = parse_mix(&need(args, i, "--mix")?)?;
            }
            other => return Err(CliError::usage(format!("unexpected argument {other:?}"))),
        }
        i += 1;
    }
    Ok(flags)
}

/// Parse `put=20,card=70,jaccard=9,list=1`; omitted ops get weight 0.
fn parse_mix(spec: &str) -> Result<hmh_loadgen::Mix, CliError> {
    let mut mix = hmh_loadgen::Mix { put: 0, card: 0, jaccard: 0, list: 0 };
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (op, weight) = part
            .split_once('=')
            .ok_or_else(|| CliError::usage(format!("--mix entry {part:?} is not OP=WEIGHT")))?;
        let weight: u32 =
            weight.parse().map_err(|e| CliError::usage(format!("--mix {op}: {e}")))?;
        match op {
            "put" => mix.put = weight,
            "card" => mix.card = weight,
            "jaccard" => mix.jaccard = weight,
            "list" => mix.list = weight,
            other => return Err(CliError::usage(format!("--mix knows no op {other:?}"))),
        }
    }
    Ok(mix)
}

fn report_lines(tag: &str, r: &hmh_loadgen::Report) -> String {
    format!(
        "{tag}: {:.1} ops/sec goodput, p50 {}us, p99 {}us\n\
         {tag} outcomes: {} attempted, {} ok, {} busy, {} expired, \
         {} retry_exhausted, {} unavailable, {} typed_other, {} transport\n",
        r.goodput(),
        r.p50_us(),
        r.p99_us(),
        r.attempted,
        r.ok,
        r.busy,
        r.expired,
        r.retry_exhausted,
        r.unavailable,
        r.typed_other,
        r.transport,
    )
}

fn cmd_loadgen(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let [op, addr, rest @ ..] = args else {
        return Err(CliError::usage("loadgen needs an operation and ADDR\n(see `hmh help`)"));
    };
    let addr = resolve_addr(addr)?;
    let flags = parse_loadgen_flags(rest)?;
    match op.as_str() {
        "run" => {
            if flags.json.is_some() || flags.band != 0.7 || flags.min_speedup.is_some() {
                return Err(CliError::usage(
                    "--json/--band/--min-speedup apply to `loadgen sweep` only",
                ));
            }
            let mut opts = flags.base;
            if let Some(rate) = flags.rate {
                if rate <= 0.0 {
                    return Err(CliError::usage("--rate must be positive"));
                }
                opts.pacing = hmh_loadgen::Pacing::Open { ops_per_sec: rate };
            }
            let report =
                hmh_loadgen::run(addr, &opts).map_err(|e| CliError::runtime(format!("run: {e}")))?;
            write_out(out, report_lines("phase", &report))
        }
        "sweep" => {
            if flags.rate.is_some() {
                return Err(CliError::usage("--rate applies to `loadgen run` only"));
            }
            if flags.min_speedup.is_some() && flags.base.pipeline <= 1 {
                return Err(CliError::usage("--min-speedup needs --pipeline > 1"));
            }
            let opts = hmh_loadgen::SweepOptions {
                base: flags.base,
                ..hmh_loadgen::SweepOptions::default()
            };
            let sweep = hmh_loadgen::sweep(addr, &opts)
                .map_err(|e| CliError::runtime(format!("sweep: {e}")))?;
            write_out(out, report_lines("peak", &sweep.peak))?;
            if let Some(pipelined) = &sweep.peak_pipelined {
                write_out(
                    out,
                    report_lines(&format!("peak(pipeline={})", sweep.pipeline_depth), pipelined),
                )?;
                write_out(
                    out,
                    format!(
                        "pipeline speedup: {:.2}x over the serial peak\n",
                        sweep.pipeline_speedup().unwrap_or(0.0)
                    ),
                )?;
            }
            for row in &sweep.rows {
                let ratio = row.report.goodput() / sweep.peak_goodput().max(1e-9);
                write_out(
                    out,
                    format!(
                        "{}x offered ({:.1} ops/sec over {} connections): {:.1}% of peak\n",
                        row.multiplier,
                        row.offered_ops_per_sec,
                        row.connections,
                        ratio * 100.0
                    ),
                )?;
                write_out(out, report_lines(&format!("{}x", row.multiplier), &row.report))?;
            }
            if let Some(path) = &flags.json {
                hmh_store::atomic_write_file(Path::new(path), sweep.to_json().as_bytes())
                    .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
                write_out(out, format!("wrote {path}\n"))?;
            }
            if let Some(min) = flags.min_speedup {
                let speedup = sweep.pipeline_speedup().unwrap_or(0.0);
                if speedup < min {
                    return Err(CliError::runtime(format!(
                        "pipelining underdelivered: {speedup:.2}x over the serial peak \
                         (contract: >= {min:.2}x)"
                    )));
                }
            }
            hmh_loadgen::degradation_ok(&sweep, flags.band)
                .map_err(|why| CliError::runtime(format!("degradation contract failed: {why}")))?;
            write_out(
                out,
                format!(
                    "degradation contract holds: >= {:.0}% of peak goodput under {}x overload\n",
                    flags.band * 100.0,
                    sweep.rows.last().map_or(0, |r| r.multiplier)
                ),
            )
        }
        other => Err(CliError::usage(format!(
            "bad loadgen operation {other:?} (or wrong arguments)\n(see `hmh help`)"
        ))),
    }
}

/// Test helper: run with string args against a buffer, returning output.
pub fn run_to_string(args: &[&str]) -> Result<String, CliError> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    run(&args, &mut buf)?;
    Ok(String::from_utf8(buf).expect("utf8 output"))
}

/// Test helper: write `lines` to `path` as a line-per-item data file.
pub fn write_lines(path: &Path, lines: impl IntoIterator<Item = String>) -> std::io::Result<()> {
    let mut content = String::new();
    for l in lines {
        content.push_str(&l);
        content.push('\n');
    }
    // hmh-lint: allow(durability) — report/CSV output, not sketch state; a torn report is regenerated by rerunning the command
    std::fs::write(path, content)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("hmh-cli-test-{tag}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }

        fn path(&self, name: &str) -> String {
            self.0.join(name).to_string_lossy().into_owned()
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn build(dir: &TempDir, name: &str, lo: u64, hi: u64) -> String {
        let data = dir.path(&format!("{name}.txt"));
        write_lines(Path::new(&data), (lo..hi).map(|i| format!("user-{i}"))).unwrap();
        let out = dir.path(&format!("{name}.hmh"));
        run_to_string(&["sketch", "-p", "11", "-q", "6", "-r", "10", "-o", &out, &data]).unwrap();
        out
    }

    #[test]
    fn sketch_card_jaccard_end_to_end() {
        let dir = TempDir::new("e2e");
        let a = build(&dir, "a", 0, 30_000);
        let b = build(&dir, "b", 15_000, 45_000);

        let card = run_to_string(&["card", &a]).unwrap();
        let estimate: f64 = card.split_whitespace().last().unwrap().parse().unwrap();
        assert!((estimate / 30_000.0 - 1.0).abs() < 0.08, "{card}");

        let j = run_to_string(&["jaccard", &a, &b]).unwrap();
        let value: f64 = j.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((value - 1.0 / 3.0).abs() < 0.05, "{j}");

        let i = run_to_string(&["intersect", &a, &b]).unwrap();
        let value: f64 = i.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((value / 15_000.0 - 1.0).abs() < 0.15, "{i}");
    }

    #[test]
    fn union_and_query() {
        let dir = TempDir::new("union");
        let a = build(&dir, "a", 0, 10_000);
        let b = build(&dir, "b", 5_000, 15_000);
        let c = build(&dir, "c", 8_000, 20_000);

        let merged = dir.path("ab.hmh");
        run_to_string(&["union", "-o", &merged, &a, &b]).unwrap();
        let card = run_to_string(&["card", &merged]).unwrap();
        let estimate: f64 = card.split_whitespace().last().unwrap().parse().unwrap();
        assert!((estimate / 15_000.0 - 1.0).abs() < 0.08, "{card}");

        // (a | b) & c = [8k, 15k) → 7k.
        let q = run_to_string(&[
            "query",
            "(a | b) & c",
            &format!("a={a}"),
            &format!("b={b}"),
            &format!("c={c}"),
        ])
        .unwrap();
        let count: f64 = q.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((count / 7_000.0 - 1.0).abs() < 0.2, "{q}");
    }

    #[test]
    fn info_reports_parameters() {
        let dir = TempDir::new("info");
        let a = build(&dir, "a", 0, 100);
        let info = run_to_string(&["info", &a]).unwrap();
        assert!(info.contains("HmhParams(p=11, q=6, r=10)"), "{info}");
        assert!(info.contains("Murmur3"), "{info}");
    }

    #[test]
    fn blank_and_duplicate_lines() {
        let dir = TempDir::new("blank");
        let data = dir.path("d.txt");
        std::fs::write(&data, "x\n\n  \nx\ny\nx\n").unwrap();
        let out = dir.path("d.hmh");
        let msg =
            run_to_string(&["sketch", "-p", "8", "-q", "4", "-r", "4", "-o", &out, &data]).unwrap();
        assert!(msg.contains("4 lines consumed"), "{msg}");
        let card = run_to_string(&["card", &out]).unwrap();
        let estimate: f64 = card.split_whitespace().last().unwrap().parse().unwrap();
        assert!((1.0..=3.0).contains(&estimate), "two distinct items: {card}");
    }

    #[test]
    fn incompatible_sketches_fail_cleanly() {
        let dir = TempDir::new("mismatch");
        let a = build(&dir, "a", 0, 100);
        let data = dir.path("other.txt");
        write_lines(Path::new(&data), (0..100).map(|i| format!("user-{i}"))).unwrap();
        let other = dir.path("other.hmh");
        run_to_string(&["sketch", "-p", "9", "-q", "6", "-r", "10", "-o", &other, &data]).unwrap();
        let err = run_to_string(&["jaccard", &a, &other]).unwrap_err();
        assert!(err.message.contains("mismatch"), "{err:?}");
        assert_eq!(err.code, 1);
    }

    #[test]
    fn usage_errors() {
        assert_eq!(run_to_string(&[]).unwrap_err().code, 2);
        assert_eq!(run_to_string(&["frobnicate"]).unwrap_err().code, 2);
        assert_eq!(run_to_string(&["sketch"]).unwrap_err().code, 2, "missing -o");
        assert_eq!(run_to_string(&["jaccard", "only-one"]).unwrap_err().code, 2);
        assert_eq!(run_to_string(&["query", "a & b"]).unwrap_err().code, 2, "no bindings");
        assert!(run_to_string(&["card", "/no/such/file.hmh"]).is_err());
        assert!(run_to_string(&["help"]).unwrap().contains("usage"));
    }

    #[test]
    fn store_subcommand_end_to_end() {
        let dir = TempDir::new("store");
        let a = build(&dir, "a", 0, 5_000);
        let sdir = dir.path("sketchdb");

        run_to_string(&["store", &sdir, "put", "daily", &a]).unwrap();
        let list = run_to_string(&["store", &sdir, "list"]).unwrap();
        assert!(list.contains("daily") && list.contains("1 sketches"), "{list}");

        let restored = dir.path("restored.hmh");
        run_to_string(&["store", &sdir, "get", "daily", &restored]).unwrap();
        assert_eq!(
            std::fs::read(&restored).unwrap(),
            std::fs::read(&a).unwrap(),
            "round-trip through the store is bit-identical"
        );

        run_to_string(&["store", &sdir, "compact"]).unwrap();
        assert!(run_to_string(&["store", &sdir, "fsck"]).unwrap().contains("clean"));

        run_to_string(&["store", &sdir, "remove", "daily"]).unwrap();
        assert!(run_to_string(&["store", &sdir, "list"]).unwrap().contains("0 sketches"));
        assert!(run_to_string(&["store", &sdir, "get", "daily", &restored]).is_err());
        assert_eq!(run_to_string(&["store", &sdir, "frob"]).unwrap_err().code, 2);
        assert_eq!(run_to_string(&["store", &sdir]).unwrap_err().code, 2);
    }

    /// Like [`run_to_string`] but keeps whatever was written even when
    /// the command fails — fsck writes its report *and* exits non-zero.
    fn run_capture(args: &[&str]) -> (Result<(), CliError>, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let result = run(&args, &mut buf);
        (result, String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn store_fsck_reports_corruption_and_heals() {
        let dir = TempDir::new("store-fsck");
        let a = build(&dir, "a", 0, 1_000);
        let sdir = dir.path("sketchdb");
        run_to_string(&["store", &sdir, "put", "daily", &a]).unwrap();

        // Garbage appended to the WAL (e.g. a torn write from a crashed
        // writer): fsck reports it without touching the disk, so the
        // evidence survives the diagnosis.
        let wal = std::path::Path::new(&sdir).join(hmh_store::WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(b"\xde\xad garbage \xbe\xef");
        std::fs::write(&wal, bytes).unwrap();

        let (result, fsck) = run_capture(&["store", &sdir, "fsck"]);
        assert_eq!(result.unwrap_err().code, 1, "salvage work done → exit 1");
        assert!(fsck.contains("quarantined 1 region(s)"), "{fsck}");
        assert!(fsck.contains("DIRTY"), "fsck never mutates: {fsck}");
        let list = run_to_string(&["store", &sdir, "list"]).unwrap();
        assert!(list.contains("daily"), "intact record survived: {list}");

        // A regular open (here: `list`) auto-heals, so the next fsck
        // finds a clean disk and exits 0.
        let healed = run_to_string(&["store", &sdir, "fsck"]).unwrap();
        assert!(healed.contains("clean"), "regular open auto-healed: {healed}");
    }

    #[test]
    fn store_fsck_json_and_exit_code_contract() {
        let dir = TempDir::new("fsck-json");
        let a = build(&dir, "a", 0, 500);
        let sdir = dir.path("sketchdb");
        run_to_string(&["store", &sdir, "put", "daily", &a]).unwrap();

        // Clean store: exit 0, status "clean", well-formed report JSON.
        let json = run_to_string(&["store", &sdir, "fsck", "--json"]).unwrap();
        assert!(json.contains("\"status\":\"clean\""), "{json}");
        assert!(
            json.contains("\"open\":{\"recovered\":"), "report objects present: {json}"
        );

        // A clean store reports an empty span array.
        assert!(json.contains("\"spans\":[]"), "{json}");

        // Corrupt the WAL: exit 1 ("salvaged"), report still written.
        let wal = std::path::Path::new(&sdir).join(hmh_store::WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(b"torn!");
        std::fs::write(&wal, bytes).unwrap();
        let (result, json) = run_capture(&["store", &sdir, "fsck", "--json"]);
        assert_eq!(result.unwrap_err().code, 1);
        assert!(json.contains("\"status\":\"salvaged\""), "{json}");

        // A store that cannot open at all: exit 2 ("unrecoverable").
        let (result, _) = run_capture(&["store", "/proc/definitely/not/a/dir", "fsck"]);
        assert_eq!(result.unwrap_err().code, 2);

        // Unknown flag is a usage error, not a silent fallback.
        assert_eq!(run_to_string(&["store", &sdir, "fsck", "--frob"]).unwrap_err().code, 2);
    }

    #[test]
    fn store_scrub_exit_contract_and_quarantine() {
        let dir = TempDir::new("store-scrub");
        let a = build(&dir, "a", 0, 1_000);
        let sdir = dir.path("sketchdb");
        run_to_string(&["store", &sdir, "put", "daily", &a]).unwrap();

        // Clean store: scrub verifies every record and exits 0.
        let clean = run_to_string(&["store", &sdir, "scrub"]).unwrap();
        assert!(clean.contains("0 corrupt span(s)"), "{clean}");
        assert!(clean.contains("0 quarantined"), "{clean}");

        // Flip a payload byte of the committed record (12 bytes from the
        // end: past the 8-byte checksum trailer, inside the payload).
        let wal = std::path::Path::new(&sdir).join(hmh_store::WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        let n = bytes.len();
        bytes[n - 12] ^= 0x01;
        std::fs::write(&wal, bytes).unwrap();

        // fsck --json carries the per-record span detail and never
        // mutates: the corrupt bytes are still on disk afterwards.
        let (result, json) = run_capture(&["store", &sdir, "fsck", "--json"]);
        assert_eq!(result.unwrap_err().code, 1);
        assert!(json.contains("\"spans\":[{\"file\":"), "{json}");
        assert!(json.contains("\"name\":\"daily\""), "{json}");
        assert!(json.contains("\"checksum_expected\":"), "{json}");

        // No valid copy survives, so scrub fences the name and reports
        // the work: exit 1, the span found, the name listed.
        let (result, report) = run_capture(&["store", &sdir, "scrub"]);
        assert_eq!(result.unwrap_err().code, 1, "quarantine work done → exit 1");
        assert!(report.contains("1 corrupt span(s) found"), "{report}");
        assert!(report.contains("quarantined daily"), "{report}");

        // Scrub healed the disk (corrupt bytes compacted away), but the
        // fence persists until a valid write releases it.
        let (result, json) = run_capture(&["store", &sdir, "fsck", "--json"]);
        assert!(result.is_ok(), "scrub left a clean disk: {json}");
        assert!(json.contains("\"spans\":[]"), "{json}");

        // A fresh valid write releases the fence; compaction clears the
        // corrupt span off disk; scrub then exits 0 again.
        run_to_string(&["store", &sdir, "put", "daily", &a]).unwrap();
        run_to_string(&["store", &sdir, "compact"]).unwrap();
        let healed = run_to_string(&["store", &sdir, "scrub"]).unwrap();
        assert!(healed.contains("0 quarantined"), "{healed}");

        // Wrong arguments are a usage error, not a silent fallback.
        assert_eq!(run_to_string(&["store", &sdir, "scrub", "--frob"]).unwrap_err().code, 2);
    }

    #[test]
    fn store_commands_fail_fast_when_locked() {
        let dir = TempDir::new("locked");
        let a = build(&dir, "a", 0, 500);
        let sdir = dir.path("sketchdb");
        run_to_string(&["store", &sdir, "put", "daily", &a]).unwrap();

        // Simulate a concurrent writer (a daemon, say) holding the lock.
        let _holder = hmh_store::SketchStore::open(&sdir).unwrap();
        let err = run_to_string(&["store", &sdir, "list"]).unwrap_err();
        assert!(err.message.contains("locked"), "clear message: {}", err.message);
        assert!(
            err.message.contains(&std::process::id().to_string()),
            "names the holder: {}",
            err.message
        );
        // fsck's contract maps "cannot open" to exit 2.
        assert_eq!(run_to_string(&["store", &sdir, "fsck"]).unwrap_err().code, 2);
    }

    #[test]
    fn serve_and_client_round_trip() {
        let dir = TempDir::new("serve");
        let a = build(&dir, "a", 0, 20_000);
        let b = build(&dir, "b", 10_000, 30_000);
        let sdir = dir.path("servedb");

        // Start the daemon in-process on an OS-assigned port.
        let handle = hmh_serve::serve(
            &sdir,
            "127.0.0.1:0",
            hmh_serve::ServeOptions { workers: 2, ..hmh_serve::ServeOptions::default() },
        )
        .unwrap();
        let addr = handle.addr().to_string();

        run_to_string(&["client", &addr, "put", "a", &a]).unwrap();
        run_to_string(&["client", &addr, "merge", "union", &a]).unwrap();
        run_to_string(&["client", &addr, "merge", "union", &b]).unwrap();

        let card = run_to_string(&["client", &addr, "card", "union"]).unwrap();
        let estimate: f64 = card.split_whitespace().last().unwrap().parse().unwrap();
        assert!((estimate / 30_000.0 - 1.0).abs() < 0.1, "{card}");

        let j = run_to_string(&["client", &addr, "jaccard", "a", "union"]).unwrap();
        let value: f64 = j.split_whitespace().last().unwrap().parse().unwrap();
        assert!((value - 2.0 / 3.0).abs() < 0.08, "{j}");

        let restored = dir.path("restored.hmh");
        run_to_string(&["client", &addr, "get", "a", &restored]).unwrap();
        assert_eq!(std::fs::read(&restored).unwrap(), std::fs::read(&a).unwrap());

        let list = run_to_string(&["client", &addr, "list"]).unwrap();
        assert!(list.contains("2 sketches"), "{list}");

        let health = run_to_string(&["client", &addr, "health"]).unwrap();
        assert!(health.contains("read_only: false"), "{health}");
        assert!(health.contains("store_clean: true"), "{health}");
        assert!(health.contains("corrupt_found: 0"), "{health}");
        assert!(health.contains("scrub_quarantined: 0"), "{health}");

        // A triggered scrub verifies both records and reports clean; the
        // pure status query then sees the completed pass.
        let scrub = run_to_string(&["client", &addr, "scrub"]).unwrap();
        assert!(scrub.contains("corrupt_found: 0"), "{scrub}");
        assert!(scrub.contains("quarantined: 0"), "{scrub}");
        assert!(!scrub.contains("never completed"), "{scrub}");
        let status = run_to_string(&["client", &addr, "scrub", "--status"]).unwrap();
        assert!(status.contains("ms ago"), "{status}");
        assert_eq!(run_to_string(&["client", &addr, "scrub", "--frob"]).unwrap_err().code, 2);

        let missing = run_to_string(&["client", &addr, "card", "nope"]).unwrap_err();
        assert!(missing.message.contains("nope"), "{missing:?}");
        assert_eq!(run_to_string(&["client", &addr, "frob"]).unwrap_err().code, 2);
        assert_eq!(run_to_string(&["client", "not an addr", "list"]).unwrap_err().code, 2);

        run_to_string(&["client", &addr, "shutdown"]).unwrap();
        handle.join();
        // The daemon released the lock; direct store access works again.
        assert!(run_to_string(&["store", &sdir, "list"]).unwrap().contains("2 sketches"));
    }

    /// A `Write` sink shareable with the thread running `hmh route
    /// serve`, so the test can watch for the readiness line.
    #[derive(Clone)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn route_commands_drive_a_sharded_cluster() {
        let dir = TempDir::new("route");
        let a = build(&dir, "a", 0, 20_000);

        // Two single-replica shard daemons.
        let opts = || hmh_serve::ServeOptions { workers: 2, ..hmh_serve::ServeOptions::default() };
        let n1 = hmh_serve::serve(dir.path("shard1"), "127.0.0.1:0", opts()).unwrap();
        let n2 = hmh_serve::serve(dir.path("shard2"), "127.0.0.1:0", opts()).unwrap();
        let ring1 = dir.path("ring1.txt");
        std::fs::write(
            &ring1,
            format!(
                "hmh-ring v1\nepoch 1\nvnodes 64\ngroup g1 {}\ngroup g2 {}\n",
                n1.addr(),
                n2.addr()
            ),
        )
        .unwrap();

        // `route owner` answers from the committed config alone.
        let owners = run_to_string(&["route", "owner", &ring1, "alpha", "beta"]).unwrap();
        assert!(owners.contains("alpha: g") && owners.contains("beta: g"), "{owners}");

        // `route serve` in a thread; wait for the readiness line.
        let buf = SharedBuf(std::sync::Arc::default());
        let thread_buf = buf.clone();
        let ring_arg = ring1.clone();
        let router = std::thread::spawn(move || {
            let args: Vec<String> =
                ["route", "serve", &ring_arg, "--addr", "127.0.0.1:0"]
                    .iter()
                    .map(ToString::to_string)
                    .collect();
            let mut sink = thread_buf;
            run(&args, &mut sink).unwrap();
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
                assert!(line.contains("(epoch 1, 2 groups)"), "{line}");
                break line["listening on ".len()..].split(' ').next().unwrap().to_string();
            }
            assert!(std::time::Instant::now() < deadline, "router never became ready: {text}");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        // The ordinary client workflow, pointed at the router.
        for name in ["alpha", "beta", "gamma", "delta"] {
            run_to_string(&["client", &addr, "put", name, &a]).unwrap();
        }
        let card = run_to_string(&["client", &addr, "card", "alpha"]).unwrap();
        let estimate: f64 = card.split_whitespace().last().unwrap().parse().unwrap();
        assert!((estimate / 20_000.0 - 1.0).abs() < 0.1, "{card}");
        assert!(run_to_string(&["client", &addr, "list"]).unwrap().contains("4 sketches"));
        let health = run_to_string(&["client", &addr, "health"]).unwrap();
        assert!(health.contains("route_epoch: 1"), "{health}");
        assert!(health.contains("route_handoffs: 0"), "{health}");

        // Grow the cluster: third group, epoch 2, CLI-driven rebalance.
        let n3 = hmh_serve::serve(dir.path("shard3"), "127.0.0.1:0", opts()).unwrap();
        let ring2 = dir.path("ring2.txt");
        std::fs::write(
            &ring2,
            format!(
                "hmh-ring v1\nepoch 2\nvnodes 64\ngroup g1 {}\ngroup g2 {}\ngroup g3 {}\n",
                n1.addr(),
                n2.addr(),
                n3.addr()
            ),
        )
        .unwrap();
        let report = run_to_string(&["route", "rebalance", &ring1, &ring2]).unwrap();
        assert!(report.contains("rebalanced epoch 1 -> 2"), "{report}");
        // Re-running is a no-op, not corruption.
        let replay = run_to_string(&["route", "rebalance", &ring1, &ring2]).unwrap();
        assert!(replay.contains("0 moved"), "{replay}");
        // Every name still lives somewhere exactly once.
        let held: usize = [n1.addr(), n2.addr(), n3.addr()]
            .iter()
            .map(|a| {
                let listing = run_to_string(&["client", &a.to_string(), "list"]).unwrap();
                listing.lines().filter(|l| !l.ends_with("sketches")).count()
            })
            .sum();
        assert_eq!(held, 4, "rebalance lost or duplicated a sketch");

        // Routed SHUTDOWN stops the router, never the shards.
        run_to_string(&["client", &addr, "shutdown"]).unwrap();
        router.join().unwrap();
        assert!(!n1.is_finished() && !n2.is_finished(), "shutdown must not reach the shards");

        // Typed usage errors for the new surface.
        assert_eq!(run_to_string(&["route", "frob"]).unwrap_err().code, 2);
        assert_eq!(run_to_string(&["route", "owner", &ring1]).unwrap_err().code, 2);
        assert!(run_to_string(&["route", "serve", &dir.path("nope.txt")])
            .unwrap_err()
            .message
            .contains("cannot read"));

        for node in [n1, n2, n3] {
            node.shutdown();
            node.join();
        }
    }

    #[test]
    fn client_batch_ingests_lines_server_side() {
        let dir = TempDir::new("batch");
        // Local reference: `sketch` over the data file.
        let local = build(&dir, "ref", 0, 5_000);
        let data = dir.path("ref.txt");
        let sdir = dir.path("servedb");

        let handle = hmh_serve::serve(
            &sdir,
            "127.0.0.1:0",
            hmh_serve::ServeOptions { workers: 2, ..hmh_serve::ServeOptions::default() },
        )
        .unwrap();
        let addr = handle.addr().to_string();

        // Server-side ingest of the same lines with the same parameters
        // must produce the identical sketch, byte for byte.
        let msg = run_to_string(&[
            "client", &addr, "batch", "ev", &data, "-p", "11", "-q", "6", "-r", "10",
        ])
        .unwrap();
        assert!(msg.contains("5000 items"), "{msg}");
        let fetched = dir.path("fetched.hmh");
        run_to_string(&["client", &addr, "get", "ev", &fetched]).unwrap();
        assert_eq!(
            std::fs::read(&fetched).unwrap(),
            std::fs::read(&local).unwrap(),
            "server-side batch ingest must equal a local sequential build"
        );

        // A second batch with conflicting parameters is refused.
        let err = run_to_string(&["client", &addr, "batch", "ev", &data, "-p", "8"]).unwrap_err();
        assert!(err.message.contains("batch"), "{err:?}");

        run_to_string(&["client", &addr, "shutdown"]).unwrap();
        handle.join();
    }

    #[test]
    fn failed_save_never_corrupts_existing_sketch() {
        use hmh_store::{atomic_write, FaultPlan, FaultyIo, FileBackend};

        let dir = TempDir::new("atomic-save");
        let a = build(&dir, "a", 0, 2_000);
        let b = build(&dir, "b", 0, 3_000);
        let before = std::fs::read(&a).unwrap();
        let replacement = std::fs::read(&b).unwrap();
        assert_ne!(before, replacement);

        // Drive the exact write path `save` uses through a fault-injecting
        // backend. Whatever faults fire — short writes included — the
        // target file must hold either the old bytes or the new bytes,
        // complete and decodable, never a torn mixture.
        for seed in 0..60u64 {
            let mut io = FaultyIo::new(FileBackend, FaultPlan::new(seed, 200));
            let result = atomic_write(&mut io, Path::new(&a), &replacement);
            let now = std::fs::read(&a).unwrap();
            if result.is_ok() {
                assert_eq!(now, replacement, "seed {seed}");
            } else {
                assert!(now == before || now == replacement, "seed {seed}: torn file");
            }
            assert!(decode(&now).is_ok(), "seed {seed}: file must stay decodable");
            std::fs::write(&a, &before).unwrap();
        }
    }

    #[test]
    fn corrupt_file_reports_format_error() {
        let dir = TempDir::new("corrupt");
        let path = dir.path("bad.hmh");
        std::fs::write(&path, b"not a sketch at all").unwrap();
        let err = run_to_string(&["card", &path]).unwrap_err();
        assert!(err.message.contains("magic") || err.message.contains("truncated"), "{err:?}");
    }
}
