//! The seeded random oracle every sketch draws its bits from.
//!
//! The paper's analysis assumes `h : S → [0,1]` is a uniformly random hash
//! function (a random oracle) and that all parties share it (shared
//! randomness). [`RandomOracle`] is the concrete stand-in: a choice of hash
//! algorithm plus a 64-bit seed. Two sketches are mergeable iff they were
//! built from oracles with the same `(algorithm, seed)` pair, which the
//! sketch types enforce.

use crate::bits::Digest128;
use crate::murmur3::murmur3_x64_128;
use crate::sha1::sha1_128;
use crate::splitmix::{mix64, SplitMix64};
use crate::traits::HashableItem;
use crate::xxhash::xxh64;

/// Hash algorithm backing a [`RandomOracle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HashAlgorithm {
    /// Murmur3 x64 128-bit — the default: one pass, full 128-bit digest.
    #[default]
    Murmur3,
    /// SHA-1 truncated to 128 bits — the paper's random-oracle example;
    /// slowest, strongest uniformity guarantees.
    Sha1,
    /// Two xxHash64 passes with derived seeds forming a 128-bit digest.
    XxPair,
    /// SplitMix Feistel mixing for integer keys (≤ 16 bytes); falls back to
    /// Murmur3 for longer inputs. Fastest path for integer streams.
    SplitMix,
}

/// A seeded random oracle producing 128-bit digests.
///
/// ```
/// use hmh_hash::{HashAlgorithm, RandomOracle};
///
/// let oracle = RandomOracle::new(HashAlgorithm::Murmur3, 42);
/// let d = oracle.digest(&"some item");
/// assert_eq!(d, oracle.digest(&"some item"), "deterministic");
/// assert_ne!(d, RandomOracle::with_seed(43).digest(&"some item"));
/// // Algorithm 1's bit slicing: bucket, then (counter, mantissa).
/// let bucket = d.take_bits(0, 12);
/// let (counter, mantissa) = d.rho_sigma(12, 63, 10);
/// assert!(bucket < 4096 && counter >= 1 && mantissa < 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RandomOracle {
    algorithm: HashAlgorithm,
    seed: u64,
}

impl Default for RandomOracle {
    /// The conventional shared oracle: Murmur3 with seed 0. Sketches built
    /// with the default oracle are mergeable with any other party's
    /// default-oracle sketches — the paper's shared-randomness assumption.
    fn default() -> Self {
        Self::new(HashAlgorithm::Murmur3, 0)
    }
}

impl RandomOracle {
    /// Oracle with an explicit algorithm and seed.
    pub const fn new(algorithm: HashAlgorithm, seed: u64) -> Self {
        Self { algorithm, seed }
    }

    /// Oracle with the default algorithm and the given seed.
    pub const fn with_seed(seed: u64) -> Self {
        Self::new(HashAlgorithm::Murmur3, seed)
    }

    /// The configured algorithm.
    pub const fn algorithm(self) -> HashAlgorithm {
        self.algorithm
    }

    /// The configured seed.
    pub const fn seed(self) -> u64 {
        self.seed
    }

    /// An oracle for the `i`-th independent hash function derived from this
    /// one (used by the k-hash-functions MinHash variant).
    pub fn derived(self, i: u64) -> Self {
        Self::new(self.algorithm, SplitMix64::derive(self.seed, i))
    }

    /// Hash raw bytes to a 128-bit digest.
    #[inline]
    pub fn digest_bytes(self, data: &[u8]) -> Digest128 {
        match self.algorithm {
            HashAlgorithm::Murmur3 => murmur3_x64_128(data, self.seed),
            HashAlgorithm::Sha1 => sha1_128(data, self.seed),
            HashAlgorithm::XxPair => {
                let hi = xxh64(data, SplitMix64::derive(self.seed, 0));
                let lo = xxh64(data, SplitMix64::derive(self.seed, 1));
                Digest128::new(hi, lo)
            }
            HashAlgorithm::SplitMix => {
                if data.len() <= 16 {
                    let mut buf = [0u8; 16];
                    buf[..data.len()].copy_from_slice(data);
                    // Fold the length in so prefixes of zero bytes stay
                    // distinct from shorter inputs.
                    feistel128(
                        u128::from_le_bytes(buf) ^ ((data.len() as u128) << 120),
                        self.seed,
                    )
                } else {
                    murmur3_x64_128(data, self.seed)
                }
            }
        }
    }

    /// Hash any [`HashableItem`] to a 128-bit digest.
    ///
    /// Integer items take an allocation-free path; other items are encoded
    /// to a scratch buffer first.
    #[inline]
    pub fn digest<T: HashableItem + ?Sized>(self, item: &T) -> Digest128 {
        if let Some((buf, len)) = item.as_inline_bytes() {
            self.digest_bytes(&buf[..len])
        } else {
            let mut buf = Vec::with_capacity(32);
            item.write_bytes(&mut buf);
            self.digest_bytes(&buf)
        }
    }

    /// Hash an item to 64 bits (the digest's high word).
    #[inline]
    pub fn digest64<T: HashableItem + ?Sized>(self, item: &T) -> u64 {
        self.digest(item).hi()
    }
}

/// A 3-round Feistel network over `(u64, u64)` with [`mix64`] round
/// functions and seed-derived round keys: a bijection on `u128` with full
/// avalanche, used as the integer fast path.
#[inline]
fn feistel128(key: u128, seed: u64) -> Digest128 {
    let mut x = key as u64;
    let mut y = (key >> 64) as u64;
    y ^= mix64(x ^ SplitMix64::derive(seed, 0));
    x ^= mix64(y ^ SplitMix64::derive(seed, 1));
    y ^= mix64(x ^ SplitMix64::derive(seed, 2));
    Digest128::new(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_are_deterministic() {
        for alg in [
            HashAlgorithm::Murmur3,
            HashAlgorithm::Sha1,
            HashAlgorithm::XxPair,
            HashAlgorithm::SplitMix,
        ] {
            let o = RandomOracle::new(alg, 1234);
            assert_eq!(o.digest(&42u64), o.digest(&42u64), "{alg:?}");
            assert_ne!(o.digest(&42u64), o.digest(&43u64), "{alg:?}");
        }
    }

    #[test]
    fn seed_separates_oracles() {
        for alg in [
            HashAlgorithm::Murmur3,
            HashAlgorithm::Sha1,
            HashAlgorithm::XxPair,
            HashAlgorithm::SplitMix,
        ] {
            let a = RandomOracle::new(alg, 1);
            let b = RandomOracle::new(alg, 2);
            assert_ne!(a.digest(&7u64), b.digest(&7u64), "{alg:?}");
        }
    }

    #[test]
    fn derived_oracles_are_distinct() {
        let o = RandomOracle::default();
        let d0 = o.derived(0);
        let d1 = o.derived(1);
        assert_ne!(d0.seed(), d1.seed());
        assert_ne!(d0.digest(&1u64), d1.digest(&1u64));
    }

    #[test]
    fn feistel_is_a_bijection_on_samples() {
        // Injectivity spot check: 10k keys, no digest collisions.
        let mut seen = std::collections::HashSet::new();
        for k in 0u128..10_000 {
            assert!(seen.insert(feistel128(k, 99)));
        }
    }

    #[test]
    fn splitmix_handles_long_inputs_via_fallback() {
        let o = RandomOracle::new(HashAlgorithm::SplitMix, 0);
        let long = vec![0u8; 100];
        assert_eq!(
            o.digest_bytes(&long),
            murmur3_x64_128(&long, 0),
            "long inputs fall back to murmur3"
        );
    }

    #[test]
    fn splitmix_length_disambiguation() {
        let o = RandomOracle::new(HashAlgorithm::SplitMix, 0);
        // 4 zero bytes vs 8 zero bytes must differ.
        assert_ne!(o.digest_bytes(&[0u8; 4]), o.digest_bytes(&[0u8; 8]));
    }

    #[test]
    fn digest_uniformity_chi_square() {
        // The sketches consume the top bits heavily; check that each of the
        // top 16 bits of the digest is ~unbiased over 20k integer keys.
        for alg in [HashAlgorithm::Murmur3, HashAlgorithm::SplitMix, HashAlgorithm::XxPair] {
            let o = RandomOracle::new(alg, 7);
            let n = 20_000u64;
            let mut ones = [0u32; 16];
            for k in 0..n {
                let top = o.digest(&k).take_bits(0, 16);
                for (b, count) in ones.iter_mut().enumerate() {
                    *count += ((top >> (15 - b)) & 1) as u32;
                }
            }
            for (b, &count) in ones.iter().enumerate() {
                let frac = f64::from(count) / n as f64;
                assert!(
                    (frac - 0.5).abs() < 0.02,
                    "{alg:?} bit {b} biased: {frac}"
                );
            }
        }
    }

    #[test]
    fn avalanche_of_integer_fast_path() {
        // Flipping any key bit should flip ~64 of the 128 digest bits.
        let o = RandomOracle::new(HashAlgorithm::SplitMix, 3);
        let base = o.digest(&0xdead_beefu64);
        for bit in 0..64 {
            let flipped = o.digest(&(0xdead_beefu64 ^ (1 << bit)));
            let diff = (base.as_u128() ^ flipped.as_u128()).count_ones();
            assert!((32..=96).contains(&diff), "bit {bit}: {diff} flips");
        }
    }
}
