//! xxHash64, implemented from scratch per the reference specification.
//!
//! This is the workspace's default byte-string hash: non-cryptographic but
//! passes SMHasher, and an order of magnitude faster than SHA-1. Verified
//! against the official test vectors (`XXH64` of the reference
//! implementation) in the tests below.

use crate::traits::Hash64;

const PRIME64_1: u64 = 0x9e37_79b1_85eb_ca87;
const PRIME64_2: u64 = 0xc2b2_ae3d_27d4_eb4f;
const PRIME64_3: u64 = 0x1656_67b1_9e37_79f9;
const PRIME64_4: u64 = 0x85eb_ca77_c2b2_ae63;
const PRIME64_5: u64 = 0x27d4_eb2f_1656_67c5;

#[inline]
fn read_u64_le(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("invariant: b[..8] is 8 bytes"))
}

#[inline]
fn read_u32_le(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("invariant: b[..4] is 4 bytes"))
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^ (h >> 32)
}

/// One-shot xxHash64 of `data` with `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64_le(&rest[0..]));
            v2 = round(v2, read_u64_le(&rest[8..]));
            v3 = round(v3, read_u64_le(&rest[16..]));
            v4 = round(v4, read_u64_le(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h ^= round(0, read_u64_le(rest));
        h = h.rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= u64::from(read_u32_le(rest)).wrapping_mul(PRIME64_1);
        h = h.rotate_left(23).wrapping_mul(PRIME64_2).wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= u64::from(byte).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }

    avalanche(h)
}

/// Marker type implementing [`Hash64`] with xxHash64.
#[derive(Debug, Clone, Copy, Default)]
pub struct XxHash64;

impl Hash64 for XxHash64 {
    #[inline]
    fn hash64(data: &[u8], seed: u64) -> u64 {
        xxh64(data, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_test_vectors() {
        // Widely-published xxHash64 vectors for ASCII strings with seed 0.
        assert_eq!(xxh64(b"", 0), 0xef46_db37_51d8_e999);
        assert_eq!(xxh64(b"a", 0), 0xd24e_c4f1_a98c_6e5b);
        assert_eq!(xxh64(b"abc", 0), 0x44bc_2cf5_ad77_0999);
    }

    #[test]
    fn long_inputs_exercise_the_stripe_loop() {
        // >= 32 bytes takes the 4-lane path; check determinism and that a
        // one-byte change anywhere flips the digest.
        let data: Vec<u8> = (0..100u8).collect();
        let base = xxh64(&data, 0);
        assert_eq!(base, xxh64(&data, 0));
        for i in 0..data.len() {
            let mut mutated = data.clone();
            mutated[i] ^= 1;
            assert_ne!(base, xxh64(&mutated, 0), "byte {i} did not affect hash");
        }
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(xxh64(b"hyperminhash", 0), xxh64(b"hyperminhash", 1));
    }

    #[test]
    fn all_length_classes_hash_distinctly() {
        // Exercise the <4, <8, <32 and >=32 byte code paths.
        let data: Vec<u8> = (0u8..=255).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=64 {
            assert!(seen.insert(xxh64(&data[..len], 0)), "collision at {len}");
        }
    }
}
