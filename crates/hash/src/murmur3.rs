//! MurmurHash3 x64 128-bit, implemented from scratch per Appleby's
//! reference (`MurmurHash3_x64_128`).
//!
//! The sketches consume up to ~111 bits of digest (bucket bits + LogLog
//! window + mantissa), so the oracle's default pipeline widens keys to 128
//! bits with this function. Verified against published vectors below.

use crate::bits::Digest128;
use crate::traits::Hash128;

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^ (k >> 33)
}

#[inline]
fn read_u64_le(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("invariant: b[..8] is 8 bytes"))
}

/// One-shot Murmur3 x64 128-bit hash of `data`.
///
/// The 32-bit `seed` parameter of the reference signature is widened to
/// `u64` by seeding both internal lanes, which preserves the reference
/// output when `seed < 2^32`... it does not; this implementation follows the
/// reference exactly: both lanes start at `seed` (the reference takes a
/// `uint32_t` but assigns it to 64-bit state verbatim, so any `u64` works).
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> Digest128 {
    let len = data.len();
    let mut h1: u64 = seed;
    let mut h2: u64 = seed;

    let mut chunks = data.chunks_exact(16);
    for block in &mut chunks {
        let mut k1 = read_u64_le(&block[0..8]);
        let mut k2 = read_u64_le(&block[8..16]);

        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27).wrapping_add(h2).wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31).wrapping_add(h1).wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = chunks.remainder();
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for i in (8..tail.len()).rev() {
        k2 ^= u64::from(tail[i]) << ((i - 8) * 8);
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
    }
    for i in (0..tail.len().min(8)).rev() {
        k1 ^= u64::from(tail[i]) << (i * 8);
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    Digest128::new(h1, h2)
}

/// Marker type implementing [`Hash128`] with Murmur3 x64 128.
#[derive(Debug, Clone, Copy, Default)]
pub struct Murmur3x64_128;

impl Hash128 for Murmur3x64_128 {
    #[inline]
    fn hash128(data: &[u8], seed: u64) -> Digest128 {
        murmur3_x64_128(data, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The empty input with seed 0 provably hashes to 0 in the reference
    // algorithm (h1 = h2 = 0 throughout: no blocks, no tail, len = 0, and
    // fmix64(0) = 0), so this vector needs no external implementation.
    #[test]
    fn empty_input_seed_zero_is_zero() {
        let d = murmur3_x64_128(b"", 0);
        assert_eq!(d.hi(), 0);
        assert_eq!(d.lo(), 0);
        // A non-zero seed breaks the fixed point.
        assert_ne!(murmur3_x64_128(b"", 1).as_u128(), 0);
    }

    #[test]
    fn avalanche_on_both_words() {
        // Cross-implementation vectors are pinned for SHA-1 and xxHash64;
        // murmur3 is validated structurally: flipping any input bit flips
        // ~half the bits of each output word.
        let data = *b"hyperminhash-murmur3-avalanche-probe!!!!"; // 40 bytes
        let base = murmur3_x64_128(&data, 0);
        let mut total = 0u32;
        let mut trials = 0u32;
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut m = data;
                m[byte] ^= 1 << bit;
                let d = murmur3_x64_128(&m, 0);
                total += (d.as_u128() ^ base.as_u128()).count_ones();
                trials += 1;
            }
        }
        let mean = f64::from(total) / f64::from(trials);
        assert!((mean - 64.0).abs() < 3.0, "avalanche mean {mean}");
    }

    #[test]
    fn tail_lengths_all_work() {
        // Exercise every tail length 0..16 on top of one full block.
        let data: Vec<u8> = (0u8..40).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(seen.insert(murmur3_x64_128(&data[..len], 0)));
        }
    }

    #[test]
    fn seed_perturbs_both_words() {
        let a = murmur3_x64_128(b"hyperminhash", 1);
        let b = murmur3_x64_128(b"hyperminhash", 2);
        assert_ne!(a.hi(), b.hi());
        assert_ne!(a.lo(), b.lo());
    }
}
