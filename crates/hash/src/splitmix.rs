//! SplitMix64: a tiny, statistically strong 64-bit mixer and generator.
//!
//! Used in two places: as the integer-key fast path of the random oracle
//! (mixing an integer item with the seed avoids byte-buffer round-trips) and
//! to derive independent per-hash seeds from one master seed, which is how
//! the k-hash-functions MinHash variant obtains its `k` "independent" hash
//! functions from shared randomness.
//!
//! Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014. The constants below are the canonical ones.

/// The golden-ratio increment of the SplitMix64 stream.
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The 64-bit finalization mix of SplitMix64 (also known as `mix64`).
///
/// A bijection on `u64` with full avalanche: flipping any input bit flips
/// each output bit with probability ~1/2 (verified in tests).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The inverse of [`mix64`]; used in tests to prove bijectivity and exposed
/// because unmixing is occasionally handy when debugging register contents.
#[inline]
pub fn unmix64(mut z: u64) -> u64 {
    // Invert `z ^= z >> 31` (shift >= 32 would self-invert; 31 needs two steps).
    z ^= (z >> 31) ^ (z >> 62);
    z = z.wrapping_mul(inverse_of(0x94d0_49bb_1331_11eb));
    z ^= (z >> 27) ^ (z >> 54);
    z = z.wrapping_mul(inverse_of(0xbf58_476d_1ce4_e5b9));
    z ^= (z >> 30) ^ (z >> 60);
    z
}

/// Modular inverse of an odd 64-bit constant (Newton iteration over 2^64).
const fn inverse_of(a: u64) -> u64 {
    // x_{k+1} = x_k (2 - a x_k); doubles correct bits each step.
    let mut x = a; // correct to 3 bits for odd a
    let mut i = 0;
    while i < 5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
        i += 1;
    }
    x
}

/// A SplitMix64 sequence generator; deterministic from its seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator starting at `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Derive the `i`-th sub-seed of `seed` without materializing a stream.
    ///
    /// `derive(s, i) == SplitMix64::new(s)` advanced `i + 1` times' last
    /// output, but in O(1).
    #[inline]
    pub fn derive(seed: u64, i: u64) -> u64 {
        mix64(seed.wrapping_add(GOLDEN_GAMMA.wrapping_mul(i.wrapping_add(1))))
    }
}

/// Hash a 128-bit integer key together with a seed to 64 bits.
///
/// This is the allocation-free fast path for integer items: two dependent
/// `mix64` rounds give full avalanche across all 128 key bits.
#[inline]
pub fn mix128_to_64(key: u128, seed: u64) -> u64 {
    let lo = key as u64;
    let hi = (key >> 64) as u64;
    let a = mix64(lo ^ seed);
    mix64(a.wrapping_add(GOLDEN_GAMMA) ^ hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_reference_vector() {
        // First three outputs of SplitMix64 seeded with 0, per the reference
        // implementation (used as test vectors by xoshiro and many others).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn mix64_is_a_bijection() {
        for z in [0u64, 1, u64::MAX, 0x1234_5678_9abc_def0, GOLDEN_GAMMA] {
            assert_eq!(unmix64(mix64(z)), z);
            assert_eq!(mix64(unmix64(z)), z);
        }
    }

    #[test]
    fn derive_matches_stream() {
        let seed = 42;
        let mut g = SplitMix64::new(seed);
        for i in 0..10 {
            assert_eq!(SplitMix64::derive(seed, i), g.next_u64());
        }
    }

    #[test]
    fn avalanche_of_mix64() {
        // Flipping one input bit should flip ~32 of 64 output bits.
        let mut total = 0u32;
        let trials = 64 * 16;
        let mut g = SplitMix64::new(7);
        for _ in 0..16 {
            let x = g.next_u64();
            for bit in 0..64 {
                total += (mix64(x) ^ mix64(x ^ (1 << bit))).count_ones();
            }
        }
        let mean = f64::from(total) / f64::from(trials);
        assert!(
            (mean - 32.0).abs() < 1.5,
            "avalanche mean {mean} too far from 32"
        );
    }

    #[test]
    fn mix128_distinguishes_high_bits() {
        let a = mix128_to_64(1u128 << 100, 0);
        let b = mix128_to_64(1u128 << 101, 0);
        assert_ne!(a, b);
        // And the seed matters.
        assert_ne!(mix128_to_64(5, 0), mix128_to_64(5, 1));
    }
}
