//! SHA-1, implemented from scratch per FIPS 180-1.
//!
//! The paper names SHA-1 as the practical stand-in for a random oracle
//! ("standard cryptographic hash functions (e.g. SHA-1) behave as random
//! oracles", §1.2). We provide it both as a streaming hasher and as the
//! strongest (slowest) oracle backend; the test suite checks the FIPS test
//! vectors. SHA-1 is of course broken for collision *resistance*, but the
//! sketches only need its output to be uniform, which it remains.

use crate::bits::Digest128;
use crate::traits::{Hash128, Hash64};

const H0: [u32; 5] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0];

/// Streaming SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Bytes processed so far (for the length suffix).
    len_bytes: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh hasher in the initial FIPS state.
    pub fn new() -> Self {
        Self { state: H0, len_bytes: 0, buf: [0; 64], buf_len: 0 }
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len_bytes = self.len_bytes.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                return;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(
                block.try_into().expect("invariant: split_at(64) yields a 64-byte block"),
            );
            data = rest;
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Finish and return the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Appending the length manually to avoid it perturbing len_bytes.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(
                chunk.try_into().expect("invariant: chunks_exact(4) yields 4-byte chunks"),
            );
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 digest.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// One-shot seeded SHA-1, truncated to the top 128 bits of the digest.
///
/// The seed is prepended as 8 big-endian bytes, the standard keyed-prefix
/// construction (the oracle only needs pseudo-independence across seeds,
/// not MAC security).
pub fn sha1_128(data: &[u8], seed: u64) -> Digest128 {
    let mut h = Sha1::new();
    h.update(&seed.to_be_bytes());
    h.update(data);
    let d = h.finalize();
    let hi = u64::from_be_bytes(
        d[0..8].try_into().expect("invariant: 8-byte slice of the 20-byte digest"),
    );
    let lo = u64::from_be_bytes(
        d[8..16].try_into().expect("invariant: 8-byte slice of the 20-byte digest"),
    );
    Digest128::new(hi, lo)
}

/// Marker type implementing the hash traits with seeded SHA-1.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sha1Oracle;

impl Hash128 for Sha1Oracle {
    #[inline]
    fn hash128(data: &[u8], seed: u64) -> Digest128 {
        sha1_128(data, seed)
    }
}

impl Hash64 for Sha1Oracle {
    #[inline]
    fn hash64(data: &[u8], seed: u64) -> u64 {
        sha1_128(data, seed).hi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(hex(&h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split at {split}");
        }
    }

    #[test]
    fn seeded_digests_differ_by_seed() {
        assert_ne!(sha1_128(b"x", 0), sha1_128(b"x", 1));
    }
}
