//! Hashing substrate for the HyperMinHash reproduction.
//!
//! The paper (Yu & Weber, *HyperMinHash: MinHash in LogLog space*) assumes a
//! random oracle and notes that "in practice, we generally use a single hash
//! function, e.g. SHA-1, and use different sets of bits for each of the three
//! hashes" (Algorithm 1). This crate provides everything the sketches need,
//! implemented from scratch:
//!
//! * [`sha1`] — a complete SHA-1 implementation (the paper's example oracle).
//! * [`xxhash`] — xxHash64, the fast default for sketching.
//! * [`murmur3`] — Murmur3 x64 128-bit, used to widen digests to 128 bits.
//! * [`splitmix`] — SplitMix64 finalizer/mixers for integer keys.
//! * [`oracle`] — the seeded [`oracle::RandomOracle`] that
//!   turns arbitrary items into [`bits::Digest128`] values.
//! * [`bits`] — MSB-first bit-field extraction over 128-bit digests, i.e. the
//!   "different sets of bits" slicing from Algorithm 1.
//!
//! All hash functions are deterministic and portable across platforms
//! (byte-order independent), so serialized sketches remain mergeable across
//! machines, which is the shared-randomness assumption the paper makes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bits;
pub mod murmur3;
pub mod oracle;
pub mod sha1;
pub mod splitmix;
pub mod traits;
pub mod xxhash;

pub use bits::Digest128;
pub use oracle::{HashAlgorithm, RandomOracle};
pub use traits::{Hash128, Hash64, HashableItem};
