//! MSB-first bit-field extraction over 128-bit digests.
//!
//! The paper treats a hash output as an infinite binary expansion of a
//! uniform number in `[0, 1)`: `h(x) = 0.b₁b₂b₃…`. Algorithm 1 then slices
//! fixed-length regions off the front: `p` bucket bits, a LogLog window for
//! the leading-one position `ρ`, and `r` mantissa bits (the figure-1 note:
//! "using a single hash function but dividing the bitstring into
//! fixed-length regions"). [`Digest128`] is that bitstring, truncated to 128
//! bits — enough for every parameterization this workspace accepts
//! (`p + cap - 1 + r ≤ 128`).
//!
//! Bit indexing convention: **bit 0 is the most significant bit** of the
//! digest, i.e. `b₁` of the binary expansion, so "the first k bits" of the
//! paper is `take_bits(0, k)` here.

/// A 128-bit hash digest viewed as the binary expansion `0.b₁b₂…b₁₂₈`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Digest128(u128);

impl Digest128 {
    /// Build from high and low 64-bit words (`hi` holds bits `b₁..b₆₄`).
    #[inline]
    pub const fn new(hi: u64, lo: u64) -> Self {
        Self(((hi as u128) << 64) | lo as u128)
    }

    /// Build from a raw `u128` (MSB = `b₁`).
    #[inline]
    pub const fn from_u128(x: u128) -> Self {
        Self(x)
    }

    /// High 64 bits (`b₁..b₆₄`).
    #[inline]
    pub const fn hi(self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// Low 64 bits (`b₆₅..b₁₂₈`).
    #[inline]
    pub const fn lo(self) -> u64 {
        self.0 as u64
    }

    /// The raw 128-bit value.
    #[inline]
    pub const fn as_u128(self) -> u128 {
        self.0
    }

    /// Extract `len` bits starting at bit `start` (MSB-first), right-aligned.
    ///
    /// `len == 0` returns 0. Bits beyond position 127 read as zero, so a
    /// window may run off the end (the paper's "infinite" expansion has an
    /// all-zero tail with probability 1 at the precision we consume).
    ///
    /// # Panics
    /// If `len > 64`.
    #[inline]
    pub fn take_bits(self, start: u32, len: u32) -> u64 {
        assert!(len <= 64, "take_bits len {len} > 64");
        if len == 0 {
            return 0;
        }
        let shifted = if start >= 128 { 0 } else { self.0 << start };
        (shifted >> (128 - len)) as u64
    }

    /// 1-indexed position of the first 1-bit in the window
    /// `[start, start + window)`, or `None` if the window is all zeros.
    ///
    /// This is the paper's `ρ` restricted to a finite window: for
    /// `x = 0.b_{start+1}…`, `ρ(x) = ⌊−log₂ x⌋ + 1` whenever the leading one
    /// falls inside the window.
    #[inline]
    pub fn leading_one(self, start: u32, window: u32) -> Option<u32> {
        if start >= 128 || window == 0 {
            return None;
        }
        let shifted = self.0 << start;
        let lz = shifted.leading_zeros(); // 128 if shifted == 0
        let effective = window.min(128 - start);
        if lz < effective {
            Some(lz + 1)
        } else {
            None
        }
    }

    /// Register extraction per Definition 1 / Algorithm 1: returns
    /// `(counter, mantissa)` for a window beginning at bit `start`.
    ///
    /// * `cap` — maximum counter value (the paper's `2^q`; the packed
    ///   register variant uses `2^q − 1` so the counter plus the empty state
    ///   fit in `q` bits).
    /// * `r` — number of mantissa bits.
    ///
    /// Semantics: let `ρ` be the 1-indexed leading-one position of the
    /// window bits. If `ρ < cap` (leading one within the first `cap − 1`
    /// bits), the counter is `ρ` and the mantissa is the `r` bits
    /// immediately *after* the leading one. Otherwise the counter saturates
    /// at `cap` and the mantissa is the `r` bits at the fixed positions
    /// `cap, …, cap + r − 1` — exactly the `i = 2^q` case of Lemma 4, whose
    /// sub-interval boundaries are `j / 2^(r + i − 1)`.
    ///
    /// The returned counter is always in `1..=cap` (an occupied register is
    /// never 0; sketches reserve 0 for "empty").
    #[inline]
    pub fn rho_sigma(self, start: u32, cap: u32, r: u32) -> (u32, u64) {
        debug_assert!(cap >= 1);
        match self.leading_one(start, cap - 1) {
            Some(rho) => (rho, self.take_bits(start + rho, r)),
            None => (cap, self.take_bits(start + cap - 1, r)),
        }
    }

    /// Interpret bits `[start, start + bits)` as a uniform fraction in
    /// `[0, 1)`.
    #[inline]
    pub fn unit_fraction(self, start: u32, bits: u32) -> f64 {
        assert!(bits <= 53, "unit_fraction supports at most 53 bits");
        self.take_bits(start, bits) as f64 / (1u64 << bits) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_bits_msb_first() {
        let d = Digest128::new(0x8000_0000_0000_0000, 0);
        assert_eq!(d.take_bits(0, 1), 1);
        assert_eq!(d.take_bits(0, 4), 0b1000);
        assert_eq!(d.take_bits(1, 4), 0);

        let d = Digest128::new(0xF0F0_0000_0000_0000, 0);
        assert_eq!(d.take_bits(0, 8), 0xF0);
        assert_eq!(d.take_bits(4, 8), 0x0F);
        assert_eq!(d.take_bits(0, 16), 0xF0F0);
    }

    #[test]
    fn take_bits_spans_the_word_boundary() {
        let d = Digest128::new(0x0000_0000_0000_00FF, 0xFF00_0000_0000_0000);
        assert_eq!(d.take_bits(56, 16), 0xFFFF);
        assert_eq!(d.take_bits(48, 16), 0x00FF);
    }

    #[test]
    fn take_bits_past_the_end_reads_zero() {
        let d = Digest128::from_u128(u128::MAX);
        assert_eq!(d.take_bits(120, 16), 0xFF00);
        assert_eq!(d.take_bits(128, 8), 0);
        assert_eq!(d.take_bits(200, 8), 0);
    }

    #[test]
    fn leading_one_positions() {
        // 0.001xxxx… → ρ = 3.
        let d = Digest128::from_u128(1u128 << 125);
        assert_eq!(d.leading_one(0, 64), Some(3));
        assert_eq!(d.leading_one(0, 3), Some(3));
        assert_eq!(d.leading_one(0, 2), None);
        // Window starting past the bit.
        assert_eq!(d.leading_one(3, 64), None);
        // Window starting exactly on the bit.
        assert_eq!(d.leading_one(2, 64), Some(1));
        // All-zero digest.
        assert_eq!(Digest128::from_u128(0).leading_one(0, 128), None);
    }

    #[test]
    fn rho_sigma_uncapped() {
        // Window: 0 0 1 | 1 0 1 1 …  → ρ=3, mantissa(r=4) = 1011.
        let bits: u128 = 0b0011_0111 << (128 - 8);
        let d = Digest128::from_u128(bits);
        let (rho, sigma) = d.rho_sigma(0, 16, 4);
        assert_eq!(rho, 3);
        assert_eq!(sigma, 0b1011);
    }

    #[test]
    fn rho_sigma_capped() {
        // cap = 4: first cap-1 = 3 bits zero → counter = 4, mantissa = bits
        // at positions 4..8 (0-indexed offsets 3..7).
        let bits: u128 = 0b0001_1010 << (128 - 8);
        let d = Digest128::from_u128(bits);
        let (rho, sigma) = d.rho_sigma(0, 4, 4);
        assert_eq!(rho, 4);
        assert_eq!(sigma, 0b1101);
    }

    #[test]
    fn rho_sigma_capped_all_zero_window() {
        let d = Digest128::from_u128(0);
        let (rho, sigma) = d.rho_sigma(0, 64, 10);
        assert_eq!(rho, 64);
        assert_eq!(sigma, 0);
    }

    #[test]
    fn rho_sigma_respects_start_offset() {
        // p = 8 bucket bits of ones, then 0 1 …
        let bits: u128 = (0xFFu128 << 120) | (1u128 << 118);
        let d = Digest128::from_u128(bits);
        let (rho, _) = d.rho_sigma(8, 32, 4);
        assert_eq!(rho, 2);
    }

    #[test]
    fn rho_sigma_boundary_between_capped_and_not() {
        // Leading one exactly at position cap-1 → NOT capped, counter=cap-1.
        let cap = 8u32;
        let d = Digest128::from_u128(1u128 << (128 - (cap - 1)));
        let (rho, _) = d.rho_sigma(0, cap, 4);
        assert_eq!(rho, cap - 1);
        // Leading one at position cap → capped at cap.
        let d = Digest128::from_u128(1u128 << (128 - cap));
        let (rho, sigma) = d.rho_sigma(0, cap, 4);
        assert_eq!(rho, cap);
        // The capped mantissa window starts at offset cap-1, which is that
        // one bit followed by zeros: 1000.
        assert_eq!(sigma, 0b1000);
    }

    #[test]
    fn unit_fraction_halves() {
        let d = Digest128::new(0x8000_0000_0000_0000, 0);
        assert_eq!(d.unit_fraction(0, 1), 0.5);
        assert_eq!(d.unit_fraction(0, 2), 0.5);
        assert_eq!(d.unit_fraction(1, 2), 0.0);
    }

    #[test]
    fn ordering_matches_numeric_value() {
        let small = Digest128::new(0, 1);
        let big = Digest128::new(1, 0);
        assert!(small < big);
    }
}
