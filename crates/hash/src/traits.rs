//! Core hashing traits shared by every sketch in the workspace.

use crate::bits::Digest128;

/// A seeded 64-bit hash function over byte strings.
///
/// Implementations must be deterministic: the same `(seed, input)` pair must
/// produce the same output on every platform. This is the "shared
/// randomness" assumption of the paper — two parties that agree on a seed
/// can merge each other's sketches.
pub trait Hash64 {
    /// Hash `data` with the given `seed` to a 64-bit digest.
    fn hash64(data: &[u8], seed: u64) -> u64;
}

/// A seeded 128-bit hash function over byte strings.
///
/// 128 bits are enough for every parameterization the paper considers: the
/// sketch consumes `p + (2^q - 1) + r` bits, at most `32 + 63 + 16 = 111`
/// for the widest parameters this crate accepts.
pub trait Hash128 {
    /// Hash `data` with the given `seed` to a 128-bit digest.
    fn hash128(data: &[u8], seed: u64) -> Digest128;
}

/// Items that can be fed to a sketch.
///
/// The sketches hash the item's canonical byte representation. Integers are
/// encoded little-endian so the encoding is unambiguous and portable.
pub trait HashableItem {
    /// Append the canonical byte encoding of `self` to `out`.
    fn write_bytes(&self, out: &mut Vec<u8>) -> usize;

    /// Return the canonical byte encoding inline when it fits in 16 bytes.
    ///
    /// This is the fast path: every integer type fits, so sketch insertion
    /// of integer streams never allocates.
    fn as_inline_bytes(&self) -> Option<([u8; 16], usize)> {
        let _ = self;
        None
    }
}

macro_rules! impl_hashable_int {
    ($($t:ty),*) => {$(
        impl HashableItem for $t {
            fn write_bytes(&self, out: &mut Vec<u8>) -> usize {
                let b = self.to_le_bytes();
                out.extend_from_slice(&b);
                b.len()
            }

            fn as_inline_bytes(&self) -> Option<([u8; 16], usize)> {
                let b = self.to_le_bytes();
                let mut buf = [0u8; 16];
                buf[..b.len()].copy_from_slice(&b);
                Some((buf, b.len()))
            }
        }
    )*};
}

impl_hashable_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, usize, isize);

impl HashableItem for &str {
    fn write_bytes(&self, out: &mut Vec<u8>) -> usize {
        out.extend_from_slice(self.as_bytes());
        self.len()
    }
}

impl HashableItem for String {
    fn write_bytes(&self, out: &mut Vec<u8>) -> usize {
        out.extend_from_slice(self.as_bytes());
        self.len()
    }
}

impl HashableItem for &[u8] {
    fn write_bytes(&self, out: &mut Vec<u8>) -> usize {
        out.extend_from_slice(self);
        self.len()
    }
}

impl<const N: usize> HashableItem for [u8; N] {
    fn write_bytes(&self, out: &mut Vec<u8>) -> usize {
        out.extend_from_slice(self);
        N
    }

    fn as_inline_bytes(&self) -> Option<([u8; 16], usize)> {
        if N <= 16 {
            let mut buf = [0u8; 16];
            buf[..N].copy_from_slice(self);
            Some((buf, N))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_encoding_is_little_endian() {
        let mut out = Vec::new();
        0x0102_0304u32.write_bytes(&mut out);
        assert_eq!(out, vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn inline_bytes_match_write_bytes() {
        let v = 0xdead_beef_cafe_f00du64;
        let mut out = Vec::new();
        let n = v.write_bytes(&mut out);
        let (buf, len) = v.as_inline_bytes().unwrap();
        assert_eq!(n, len);
        assert_eq!(&buf[..len], &out[..]);
    }

    #[test]
    fn str_and_string_agree() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        "hyperminhash".write_bytes(&mut a);
        String::from("hyperminhash").write_bytes(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn u128_fits_inline() {
        let v = u128::MAX;
        let (buf, len) = v.as_inline_bytes().unwrap();
        assert_eq!(len, 16);
        assert_eq!(buf, [0xff; 16]);
    }

    #[test]
    fn byte_array_inline_only_up_to_16() {
        assert!([0u8; 16].as_inline_bytes().is_some());
        assert!([0u8; 17].as_inline_bytes().is_none());
    }
}
