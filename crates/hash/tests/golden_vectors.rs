//! Golden-vector tests pinning every hash primitive to external references.
//!
//! The in-module unit tests validate structure (avalanche, bijectivity,
//! streaming splits); this suite pins exact outputs so a silent
//! re-derivation of a constant or a tail-handling tweak cannot slip
//! through. Sources:
//!
//! - SHA-1: FIPS 180-2 Appendix A/B vectors, cross-checked against
//!   OpenSSL's implementation (via Python `hashlib`).
//! - xxHash64: the official string vectors published with the reference
//!   implementation ("" / "a" / "abc" and the fox pangram, seed 0).
//! - Murmur3 x64 128: the `mmh3` library's published `"foo"` vector and
//!   the widely-quoted pangram digest `6c1b07bc7bbc4be347939ac4a93c437a`;
//!   remaining rows were cross-checked against an independent
//!   transcription of Appleby's reference that reproduces both anchors.
//! - SplitMix64: the Steele–Lea–Flood OOPSLA 2014 constants and the
//!   seed-0 output stream used as reference vectors by xoshiro.

use hmh_hash::murmur3::murmur3_x64_128;
use hmh_hash::sha1::{sha1, sha1_128, Sha1};
use hmh_hash::splitmix::{mix64, unmix64, SplitMix64, GOLDEN_GAMMA};
use hmh_hash::xxhash::xxh64;
use hmh_hash::Digest128;

fn hex(d: &[u8]) -> String {
    d.iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------- SHA-1

/// FIPS 180-2 Appendix A: one-block, two-block and empty messages.
#[test]
fn sha1_fips_180_vectors() {
    let vectors: [(&[u8], &str); 4] = [
        (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
        (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
              ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "a49b2446a02c645bf419f995b67091253a04a259",
        ),
    ];
    for (msg, want) in vectors {
        assert_eq!(hex(&sha1(msg)), want, "sha1({:?})", String::from_utf8_lossy(msg));
    }
}

/// FIPS 180-2 Appendix A.3: one million repetitions of `a`, fed through
/// the streaming interface in uneven chunks to also pin block buffering.
#[test]
fn sha1_fips_million_a_streamed_unevenly() {
    let mut h = Sha1::new();
    let mut fed = 0usize;
    // Chunk sizes cycle through awkward values around the 64-byte block.
    for (i, chunk) in [1usize, 63, 64, 65, 127, 6000].iter().cycle().enumerate() {
        let take = (*chunk).min(1_000_000 - fed);
        h.update(&[b'a'].repeat(take));
        fed += take;
        if fed == 1_000_000 {
            assert!(i < 1_000_000, "cycle terminated");
            break;
        }
    }
    assert_eq!(hex(&h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

/// The seeded oracle truncation: seed as 8 big-endian prefix bytes, top
/// 128 bits of the digest. Vectors derived with OpenSSL SHA-1.
#[test]
fn sha1_128_keyed_prefix_vectors() {
    let vectors: [(&[u8], u64, u64, u64); 3] = [
        (b"", 0x0, 0x05fe_4057_5316_6f12, 0x5559_e7c9_ac55_8654),
        (b"x", 0x1, 0xccb9_7a4f_de41_77b3, 0x8bfe_f2f6_97c3_3b69),
        (b"hyperminhash", 0x0123_4567_89ab_cdef, 0x3495_308e_572d_ab45, 0x62b1_a728_5ae4_25c2),
    ];
    for (data, seed, hi, lo) in vectors {
        assert_eq!(sha1_128(data, seed), Digest128::new(hi, lo));
        // The construction is literally sha1(seed_be || data) truncated.
        let mut prefixed = seed.to_be_bytes().to_vec();
        prefixed.extend_from_slice(data);
        let full = sha1(&prefixed);
        assert_eq!(sha1_128(data, seed).hi().to_be_bytes(), full[0..8]);
        assert_eq!(sha1_128(data, seed).lo().to_be_bytes(), full[8..16]);
    }
}

// ------------------------------------------------------------- xxHash64

/// Official reference-string vectors (seed 0) plus cross-checked seeded
/// rows covering every tail class: empty, <4, <8, <32 and >=32 bytes.
#[test]
fn xxh64_reference_vectors() {
    let vectors: [(&[u8], u64, u64); 8] = [
        (b"", 0x0, 0xef46_db37_51d8_e999),
        (b"a", 0x0, 0xd24e_c4f1_a98c_6e5b),
        (b"abc", 0x0, 0x44bc_2cf5_ad77_0999),
        (b"foo", 0x0, 0x33bf_00a8_59c4_ba3f),
        (b"The quick brown fox jumps over the lazy dog", 0x0, 0x0b24_2d36_1fda_71bc),
        (b"The quick brown fox jumps over the lazy dog.", 0x0, 0x44ad_3370_5751_ad73),
        (b"hyperminhash", 0x9747_b28c, 0xfc30_12d5_6b8d_6070),
        (
            b"\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f",
            0x0,
            0x44b6_ef2f_b841_69f7,
        ),
    ];
    for (data, seed, want) in vectors {
        assert_eq!(xxh64(data, seed), want, "xxh64({data:?}, {seed:#x})");
    }
}

// ---------------------------------------------------- Murmur3 x64 128

/// Published anchors: the `mmh3` library's `"foo"` vector (h1, h2 as the
/// two little-endian output words) and the pangram whose 128-bit hex form
/// `6c1b07bc7bbc4be347939ac4a93c437a` circulates as the standard check.
/// The remaining rows come from an independent transcription of the
/// reference algorithm that reproduces both anchors, and cover: an exact
/// one-block input, a block+tail input with a 64-bit seed, and the
/// classic `0x9747b28c` demo seed.
#[test]
fn murmur3_x64_128_reference_vectors() {
    let block16: Vec<u8> = (0u8..16).collect();
    let block31: Vec<u8> = (0u8..31).collect();
    let vectors: [(&[u8], u64, u64, u64); 6] = [
        (b"foo", 0x0, 0xe271_8657_01f5_4561, 0x7eaf_87e4_2bba_7d87),
        (
            b"The quick brown fox jumps over the lazy dog",
            0x0,
            0xe34b_bc7b_bc07_1b6c,
            0x7a43_3ca9_c49a_9347,
        ),
        (
            b"The quick brown fox jumps over the lazy dog.",
            0x0,
            0xcd99_481f_9ee9_02c9,
            0x695d_a1a3_8987_b6e7,
        ),
        (b"hyperminhash", 0x9747_b28c, 0xf9c2_a0cd_3f28_7238, 0x5890_8f35_d9c0_0f31),
        (&block16, 0x0, 0x4449_24b5_9190_3f30, 0xab90_6456_762f_e845),
        (&block31, 0x1234_5678_9abc_def0, 0xa853_5cfb_cf1e_8b90, 0x6bf5_f967_3ec6_6b0a),
    ];
    for (data, seed, h1, h2) in vectors {
        assert_eq!(
            murmur3_x64_128(data, seed),
            Digest128::new(h1, h2),
            "murmur3({data:?}, {seed:#x})"
        );
    }
    // The mmh3 anchor in its native decimal form, to make the
    // correspondence with the published value unmistakable.
    let foo = murmur3_x64_128(b"foo", 0);
    assert_eq!(foo.hi(), 16316970633193145697);
    assert_eq!(foo.lo(), 9128664383759220103);
}

// ----------------------------------------------------------- SplitMix64

/// The Steele–Lea–Flood constants, written out literally: the golden
/// gamma and both finalizer multipliers. A typo in any of them changes
/// these assertions, not just downstream statistics.
#[test]
fn splitmix64_steele_constants() {
    assert_eq!(GOLDEN_GAMMA, 0x9e37_79b9_7f4a_7c15);
    // mix64 re-derived inline from the published finalizer, applied to a
    // spread of inputs; agreement on all of them pins both multipliers
    // and all three shift amounts.
    let reference = |mut z: u64| -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for z in [0u64, 1, 2, u64::MAX, GOLDEN_GAMMA, 0xdead_beef_cafe_f00d] {
        assert_eq!(mix64(z), reference(z), "mix64({z:#x})");
    }
}

/// The canonical seed-0 stream (the vectors the xoshiro family uses to
/// validate SplitMix64 implementations).
#[test]
fn splitmix64_seed_zero_stream() {
    let mut g = SplitMix64::new(0);
    assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
    assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);
}

/// Bijectivity across a deterministic sweep, and the O(1) `derive`
/// shortcut against the materialized stream.
#[test]
fn splitmix64_bijection_and_derive() {
    let mut g = SplitMix64::new(0x5eed);
    for i in 0..256u64 {
        let x = g.next_u64();
        assert_eq!(unmix64(mix64(x)), x);
        assert_eq!(SplitMix64::derive(0x5eed, i), x);
    }
}
