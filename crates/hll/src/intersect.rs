//! HLL-only intersection baselines (§1.3 of the paper).
//!
//! The paper's motivation for HyperMinHash is that HLL sketches alone give
//! poor intersections: "the relative error is then in the size of the union
//! (as opposed to the size of the Jaccard index for MinHash)". Two
//! baselines are implemented so the experiments can reproduce that claim:
//!
//! * [`inclusion_exclusion`] — `|A∩B| = |A| + |B| − |A∪B|` from three
//!   cardinality estimates; error scales with the *union*.
//! * [`joint_mle`] — the maximum-likelihood approach the paper cites as a
//!   "constant order (< 3×) improvement" (Ertl [8, 9]): jointly model the
//!   register pairs of the two sketches with three Poisson rates
//!   (`A\B`, `B\A`, `A∩B`) and maximize the exact pairwise likelihood.

use crate::estimators::EstimatorKind;
use crate::sketch::{HllError, HyperLogLog};
use hmh_math::optimize::nelder_mead_max;
use hmh_math::KahanSum;

/// An intersection/Jaccard estimate from two sketches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntersectionEstimate {
    /// Estimated `|A \ B|`.
    pub a_only: f64,
    /// Estimated `|B \ A|`.
    pub b_only: f64,
    /// Estimated `|A ∩ B|` (clamped to be non-negative).
    pub intersection: f64,
    /// Estimated `|A ∪ B|`.
    pub union: f64,
}

impl IntersectionEstimate {
    /// The implied Jaccard index `|A∩B| / |A∪B|` (0 when the union is 0).
    pub fn jaccard(&self) -> f64 {
        if self.union <= 0.0 {
            0.0
        } else {
            (self.intersection / self.union).clamp(0.0, 1.0)
        }
    }
}

/// Inclusion–exclusion intersection from three HLL cardinality estimates.
pub fn inclusion_exclusion(
    a: &HyperLogLog,
    b: &HyperLogLog,
    kind: EstimatorKind,
) -> Result<IntersectionEstimate, HllError> {
    let union_sketch = a.union(b)?;
    let na = a.cardinality_with(kind);
    let nb = b.cardinality_with(kind);
    let nu = union_sketch.cardinality_with(kind);
    let inter = (na + nb - nu).max(0.0);
    Ok(IntersectionEstimate {
        a_only: (nu - nb).max(0.0),
        b_only: (nu - na).max(0.0),
        intersection: inter,
        union: nu,
    })
}

/// Joint log-likelihood of the paired register histogram under the
/// three-rate Poisson model.
///
/// With per-bucket rates `λ₁ = |A\B|/m`, `λ₂ = |B\A|/m`, `λ₃ = |A∩B|/m`,
/// the registers are `K_A = max(M₁, M₃)`, `K_B = max(M₂, M₃)` where the
/// `Mᵢ` are independent HLL registers with tail `P(Mᵢ ≤ k) = exp(−λᵢ2^−k)`.
/// The joint CDF factorizes as
/// `F(a, b) = G₁(a) · G₂(b) · G₃(min(a, b))`,
/// and the pmf is the 2-D finite difference of `F`.
pub fn joint_log_likelihood(
    pair_hist: &[Vec<u64>],
    cap: u32,
    lambda: &[f64; 3],
) -> f64 {
    let g = |lam: f64, k: i64| -> f64 {
        if k < 0 {
            0.0
        } else if k >= i64::from(cap) {
            1.0
        } else {
            (-lam * 2f64.powi(-(k as i32))).exp()
        }
    };
    let f = |a: i64, b: i64| -> f64 {
        g(lambda[0], a) * g(lambda[1], b) * g(lambda[2], a.min(b))
    };
    let mut ll = KahanSum::new();
    for (a, row) in pair_hist.iter().enumerate() {
        for (b, &count) in row.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let (a, b) = (a as i64, b as i64);
            let pmf = (f(a, b) - f(a - 1, b) - f(a, b - 1) + f(a - 1, b - 1))
                .max(f64::MIN_POSITIVE);
            ll.add(count as f64 * pmf.ln());
        }
    }
    ll.total()
}

/// Histogram of register pairs `(K_A, K_B)`: `(cap+1) × (cap+1)` counts.
pub fn pair_histogram(a: &HyperLogLog, b: &HyperLogLog) -> Vec<Vec<u64>> {
    let cap = a.cap() as usize;
    let mut hist = vec![vec![0u64; cap + 1]; cap + 1];
    for i in 0..a.num_registers() {
        hist[a.register(i) as usize][b.register(i) as usize] += 1;
    }
    hist
}

/// Joint-MLE intersection estimation (Ertl's approach): maximize
/// [`joint_log_likelihood`] over the three component rates with
/// Nelder–Mead in log-rate space, initialized from inclusion–exclusion.
pub fn joint_mle(a: &HyperLogLog, b: &HyperLogLog) -> Result<IntersectionEstimate, HllError> {
    a.check_compatible(b)?;
    let m = a.num_registers() as f64;
    let cap = a.cap();
    let hist = pair_histogram(a, b);

    let ie = inclusion_exclusion(a, b, EstimatorKind::ErtlImproved)?;
    // Log-rate parameterization keeps rates positive; floor the init so
    // components estimated at 0 can still grow during the search.
    let floor = 1e-6 / m;
    let init = [
        (ie.a_only.max(1.0) / m).max(floor).ln(),
        (ie.b_only.max(1.0) / m).max(floor).ln(),
        (ie.intersection.max(1.0) / m).max(floor).ln(),
    ];
    let (t, _) = nelder_mead_max(
        |t| joint_log_likelihood(&hist, cap, &[t[0].exp(), t[1].exp(), t[2].exp()]),
        &init,
        &[0.7, 0.7, 0.7],
        1e-10,
        2000,
    );
    let a_only = t[0].exp() * m;
    let b_only = t[1].exp() * m;
    let intersection = t[2].exp() * m;
    Ok(IntersectionEstimate {
        a_only,
        b_only,
        intersection,
        union: a_only + b_only + intersection,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_pair(n_a_only: u64, n_b_only: u64, n_shared: u64, p: u32) -> (HyperLogLog, HyperLogLog) {
        let mut a = HyperLogLog::new(p);
        let mut b = HyperLogLog::new(p);
        for i in 0..n_shared {
            let key = i;
            a.insert(&key);
            b.insert(&key);
        }
        for i in 0..n_a_only {
            a.insert(&(1_000_000_000 + i));
        }
        for i in 0..n_b_only {
            b.insert(&(2_000_000_000 + i));
        }
        (a, b)
    }

    #[test]
    fn inclusion_exclusion_recovers_large_intersections() {
        // 50% overlap: IE works acceptably here.
        let (a, b) = build_pair(20_000, 20_000, 20_000, 12);
        let est = inclusion_exclusion(&a, &b, EstimatorKind::ErtlImproved).unwrap();
        assert!(
            ((est.intersection - 20_000.0) / 20_000.0).abs() < 0.15,
            "{est:?}"
        );
        assert!(((est.union - 60_000.0) / 60_000.0).abs() < 0.05);
        assert!((est.jaccard() - 1.0 / 3.0).abs() < 0.08);
    }

    #[test]
    fn joint_mle_recovers_moderate_intersections() {
        let (a, b) = build_pair(30_000, 30_000, 10_000, 12);
        let est = joint_mle(&a, &b).unwrap();
        assert!(
            ((est.intersection - 10_000.0) / 10_000.0).abs() < 0.25,
            "{est:?}"
        );
        assert!(((est.union - 70_000.0) / 70_000.0).abs() < 0.06, "{est:?}");
    }

    #[test]
    fn joint_mle_beats_ie_on_small_jaccard_on_average() {
        // The paper: MLE is a < 3x constant improvement over IE. Check the
        // direction over repeated trials at J ≈ 0.02.
        let mut ie_err = hmh_math::Welford::new();
        let mut mle_err = hmh_math::Welford::new();
        for trial in 0..6u64 {
            let mut a = HyperLogLog::with_oracle(11, 63, hmh_hash::RandomOracle::with_seed(trial));
            let mut b = HyperLogLog::with_oracle(11, 63, hmh_hash::RandomOracle::with_seed(trial));
            let shared = 2_000u64;
            let each = 48_000u64;
            for i in 0..shared {
                a.insert(&i);
                b.insert(&i);
            }
            for i in 0..each {
                a.insert(&(10_000_000 + i));
                b.insert(&(20_000_000 + i));
            }
            let truth = shared as f64;
            let ie = inclusion_exclusion(&a, &b, EstimatorKind::ErtlImproved).unwrap();
            let mle = joint_mle(&a, &b).unwrap();
            ie_err.add(((ie.intersection - truth) / truth).abs());
            mle_err.add(((mle.intersection - truth) / truth).abs());
        }
        assert!(
            mle_err.mean() <= ie_err.mean() * 1.5,
            "MLE should not be much worse: mle {} vs ie {}",
            mle_err.mean(),
            ie_err.mean()
        );
    }

    #[test]
    fn disjoint_sets_give_near_zero_intersection() {
        let (a, b) = build_pair(50_000, 50_000, 0, 12);
        let est = joint_mle(&a, &b).unwrap();
        // Intersection should be a small fraction of the union.
        assert!(
            est.intersection < 0.05 * est.union,
            "spurious intersection: {est:?}"
        );
    }

    #[test]
    fn identical_sets_give_jaccard_one() {
        let mut a = HyperLogLog::new(10);
        for i in 0..10_000u64 {
            a.insert(&i);
        }
        let est = joint_mle(&a, &a.clone()).unwrap();
        assert!(est.jaccard() > 0.9, "{est:?}");
    }

    #[test]
    fn pair_histogram_total_is_register_count() {
        let (a, b) = build_pair(1000, 1000, 1000, 8);
        let hist = pair_histogram(&a, &b);
        let total: u64 = hist.iter().flatten().sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn joint_likelihood_prefers_truth_direction() {
        let (a, b) = build_pair(20_000, 20_000, 20_000, 12);
        let m = a.num_registers() as f64;
        let hist = pair_histogram(&a, &b);
        let truth = [20_000.0 / m, 20_000.0 / m, 20_000.0 / m];
        let wrong = [35_000.0 / m, 35_000.0 / m, 5_000.0 / m];
        assert!(
            joint_log_likelihood(&hist, a.cap(), &truth)
                > joint_log_likelihood(&hist, a.cap(), &wrong)
        );
    }
}
