//! Register storage: bit-packed fixed-width cells over `u64` words.
//!
//! HyperLogLog needs 6-bit registers ("often 6 bits", §2); HyperMinHash
//! packs a `q`-bit counter and an `r`-bit mantissa into one `q + r`-bit
//! word per bucket (Appendix A.1 optimization 1: "pack the hashed tuple
//! into a single word"). [`BitPacked`] serves both: fixed cell width of
//! 1..=32 bits, cells never straddling is *not* assumed — cells may span
//! two words.

/// A vector of fixed-width unsigned cells packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitPacked {
    width: u32,
    len: usize,
    words: Vec<u64>,
}

impl BitPacked {
    /// `len` zeroed cells of `width` bits each.
    ///
    /// # Panics
    /// If `width` is 0 or exceeds 32.
    pub fn new(width: u32, len: usize) -> Self {
        assert!((1..=32).contains(&width), "cell width {width} out of 1..=32");
        let bits = (len as u64) * u64::from(width);
        let words = vec![0u64; bits.div_ceil(64) as usize];
        Self { width, len, words }
    }

    /// Cell width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff there are no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes used by the packed words (the sketch-size accounting the
    /// paper's 256-byte / 64-KiB claims refer to).
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }

    /// Read cell `i`.
    ///
    /// # Panics
    /// If `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len, "cell {i} out of bounds ({})", self.len);
        let bit = (i as u64) * u64::from(self.width);
        let word = (bit / 64) as usize;
        let offset = (bit % 64) as u32;
        let mask = Self::mask(self.width);
        let lo = self.words[word] >> offset;
        let value = if offset + self.width <= 64 {
            lo
        } else {
            lo | (self.words[word + 1] << (64 - offset))
        };
        (value & mask) as u32
    }

    /// Write cell `i`.
    ///
    /// # Panics
    /// If `i >= len` or `value` does not fit in `width` bits.
    #[inline]
    pub fn set(&mut self, i: usize, value: u32) {
        assert!(i < self.len, "cell {i} out of bounds ({})", self.len);
        let mask = Self::mask(self.width);
        assert!(
            u64::from(value) <= mask,
            "value {value} does not fit in {} bits",
            self.width
        );
        let bit = (i as u64) * u64::from(self.width);
        let word = (bit / 64) as usize;
        let offset = (bit % 64) as u32;
        self.words[word] &= !(mask << offset);
        self.words[word] |= u64::from(value) << offset;
        if offset + self.width > 64 {
            let high_bits = offset + self.width - 64;
            let high_mask = Self::mask(high_bits);
            self.words[word + 1] &= !high_mask;
            self.words[word + 1] |= u64::from(value) >> (64 - offset);
        }
    }

    /// Iterate over all cell values.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Raw backing words (little-endian cell order) — for wire formats.
    pub fn raw_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw backing words as produced by [`Self::raw_words`].
    ///
    /// # Errors
    /// If the word count does not match `width`/`len`, or padding bits
    /// beyond the last cell are non-zero (corrupt or truncated payload).
    pub fn from_raw_words(width: u32, len: usize, words: Vec<u64>) -> Result<Self, String> {
        assert!((1..=32).contains(&width), "cell width {width} out of 1..=32");
        let bits = (len as u64) * u64::from(width);
        let expect = bits.div_ceil(64) as usize;
        if words.len() != expect {
            return Err(format!("expected {expect} words for {len}×{width}b, got {}", words.len()));
        }
        let tail_bits = (bits % 64) as u32;
        if tail_bits != 0 {
            let last = *words.last().expect("invariant: len > 0 when tail_bits > 0");
            if last >> tail_bits != 0 {
                return Err("non-zero padding bits past the last cell".to_string());
            }
        }
        Ok(Self { width, len, words })
    }

    /// Histogram of cell values: `hist[v]` = number of cells equal to `v`,
    /// with `max_value + 1` entries. The estimator functions consume this.
    pub fn histogram(&self, max_value: u32) -> Vec<u64> {
        let mut hist = vec![0u64; max_value as usize + 1];
        for v in self.iter() {
            hist[v as usize] += 1;
        }
        hist
    }

    #[inline]
    fn mask(width: u32) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for width in [1u32, 3, 6, 7, 8, 13, 16, 17, 31, 32] {
            let len = 100;
            let mut p = BitPacked::new(width, len);
            let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
            for i in 0..len {
                let v = (i as u32).wrapping_mul(0x9e37_79b9) & mask;
                p.set(i, v);
            }
            for i in 0..len {
                let v = (i as u32).wrapping_mul(0x9e37_79b9) & mask;
                assert_eq!(p.get(i), v, "width {width}, cell {i}");
            }
        }
    }

    #[test]
    fn neighbours_do_not_clobber() {
        let mut p = BitPacked::new(6, 10);
        p.set(3, 63);
        p.set(4, 0);
        p.set(2, 0);
        assert_eq!(p.get(3), 63);
        p.set(3, 0);
        assert_eq!(p.get(2), 0);
        assert_eq!(p.get(4), 0);
    }

    #[test]
    fn cells_straddling_word_boundaries() {
        // width 6: cell 10 occupies bits 60..66, straddling words 0 and 1.
        let mut p = BitPacked::new(6, 22);
        p.set(10, 0b101_011);
        assert_eq!(p.get(10), 0b101_011);
        assert_eq!(p.get(9), 0);
        assert_eq!(p.get(11), 0);
        // Overwrite with a different straddling value.
        p.set(10, 0b010_100);
        assert_eq!(p.get(10), 0b010_100);
    }

    #[test]
    fn byte_size_is_word_rounded() {
        // 256 cells × 8 bits = 256 bytes (the Figure 6 sketch size).
        assert_eq!(BitPacked::new(8, 256).byte_size(), 256);
        // 2^15 cells × 16 bits = 64 KiB (the abstract's headline size).
        assert_eq!(BitPacked::new(16, 1 << 15).byte_size(), 64 * 1024);
        // Non-divisible: 10 cells × 6 bits = 60 bits → one word.
        assert_eq!(BitPacked::new(6, 10).byte_size(), 8);
    }

    #[test]
    fn histogram_counts() {
        let mut p = BitPacked::new(4, 8);
        for (i, v) in [0u32, 1, 1, 2, 2, 2, 15, 15].into_iter().enumerate() {
            p.set(i, v);
        }
        let h = p.histogram(15);
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 2);
        assert_eq!(h[2], 3);
        assert_eq!(h[15], 2);
        assert_eq!(h.iter().sum::<u64>(), 8);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn set_rejects_oversized_values() {
        BitPacked::new(4, 4).set(0, 16);
    }

    #[test]
    fn raw_word_round_trip() {
        let mut p = BitPacked::new(13, 37);
        for i in 0..37 {
            p.set(i, (i as u32 * 599) & 0x1fff);
        }
        let rebuilt =
            BitPacked::from_raw_words(13, 37, p.raw_words().to_vec()).expect("valid payload");
        assert_eq!(rebuilt, p);
    }

    #[test]
    fn from_raw_words_validates() {
        assert!(BitPacked::from_raw_words(8, 16, vec![0; 3]).is_err(), "wrong count");
        // 4 cells × 4 bits = 16 bits in one word; padding above bit 16
        // must be zero.
        assert!(BitPacked::from_raw_words(4, 4, vec![1u64 << 20]).is_err(), "dirty padding");
        assert!(BitPacked::from_raw_words(4, 4, vec![0xffff]).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_rejects_out_of_bounds() {
        let _ = BitPacked::new(4, 4).get(4);
    }
}
