//! HyperLogLog: the count-distinct substrate of HyperMinHash.
//!
//! The paper uses HyperLogLog (Flajolet–Fusy–Gandouet–Meunier 2007) in two
//! roles, both implemented here:
//!
//! 1. **Substrate** — the LogLog-counter half of every HyperMinHash bucket
//!    *is* an HLL register, and Algorithm 3 estimates cardinality by
//!    passing those counters "directly into a HyperLogLog estimator". The
//!    estimator functions in [`estimators`] therefore operate on raw
//!    register slices so `hmh-core` can reuse them.
//! 2. **Baseline** — §1.3 compares HyperMinHash against estimating Jaccard
//!    indices from HLL sketches alone, via inclusion–exclusion and via the
//!    "newer cardinality estimation methods based on maximum-likelihood
//!    estimation" (Ertl 2017). [`intersect`] implements both baselines,
//!    including the joint-MLE intersection estimator.
//!
//! Register storage supports both dense `u8` and bit-packed layouts
//! ([`registers::BitPacked`], also reused by `hmh-core` for its
//! `(counter, mantissa)` words).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod estimators;
pub mod intersect;
pub mod registers;
pub mod sketch;

pub use intersect::{inclusion_exclusion, joint_mle, IntersectionEstimate};
pub use sketch::{Estimator, HllError, HyperLogLog};
