//! Cardinality estimators over HyperLogLog register histograms.
//!
//! Three generations, all operating on the histogram `hist[k]` = number of
//! registers with value `k`, `k ∈ 0..=cap` (`cap` = saturation value of the
//! counter — the paper's `2^q` analog, `2^q − 1` for packed registers):
//!
//! * [`ffgm`] — the original HyperLogLog estimator of Flajolet, Fusy,
//!   Gandouet & Meunier (2007) \[13\]: bias-corrected harmonic mean with a
//!   linear-counting small-range regime.
//! * [`ertl_improved`] — Ertl's improved raw estimator \[8\]: uses the full
//!   histogram including the 0 and saturated registers via the `σ`/`τ`
//!   corrections; no empirical bias tables, no range switching.
//! * [`ertl_mle`] — Ertl's Poisson maximum-likelihood estimator \[9\]:
//!   maximizes the exact register likelihood; the strongest baseline the
//!   paper cites for HLL-only intersection work.
//!
//! `hmh-core`'s Algorithm 3 feeds its LogLog counters through one of these
//! (selectable), exactly as the pseudocode's
//! `HyperLogLogCardinalityEstimator` placeholder intends.

use hmh_math::logspace::pow1m;
use hmh_math::optimize::golden_section_max;
use hmh_math::KahanSum;

/// `α_m` bias constant of the FFGM07 raw estimator.
pub fn alpha_m(m: usize) -> f64 {
    match m {
        0..=16 => 0.673,
        17..=32 => 0.697,
        33..=64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// `α_∞ = 1/(2 ln 2)`, the asymptotic constant used by Ertl's estimators.
pub const ALPHA_INF: f64 = 0.721_347_520_444_481_7;

/// The FFGM07 raw estimate: `α_m · m² / Σ 2^{-M_j}`.
pub fn ffgm_raw(hist: &[u64]) -> f64 {
    let m: u64 = hist.iter().sum();
    let mf = m as f64;
    let mut denom = KahanSum::new();
    for (k, &c) in hist.iter().enumerate() {
        if c > 0 {
            denom.add(c as f64 * 2f64.powi(-(k as i32)));
        }
    }
    alpha_m(m as usize) * mf * mf / denom.total()
}

/// The full FFGM07 estimator: raw estimate with the linear-counting
/// small-range regime (`E ≤ 5m/2` and empty registers present →
/// `m·ln(m/V)`).
///
/// The classic large-range correction (for 32-bit hash exhaustion) does not
/// apply here: register saturation is handled by the caller's choice of
/// `cap` and, in HyperMinHash, by Algorithm 3's KMV tail.
pub fn ffgm(hist: &[u64]) -> f64 {
    let m: u64 = hist.iter().sum();
    let mf = m as f64;
    let raw = ffgm_raw(hist);
    let zeros = hist[0];
    if raw <= 2.5 * mf && zeros > 0 {
        mf * (mf / zeros as f64).ln()
    } else {
        raw
    }
}

/// Ertl's `σ` helper: `σ(x) = x + Σ_{k≥1} x^{2^k}·2^{k-1}` (Ertl 2017,
/// used for the weight of zero-valued registers).
pub fn sigma(mut x: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&x));
    if x == 1.0 {
        return f64::INFINITY;
    }
    let mut y = 1.0;
    let mut z = x;
    loop {
        x = x * x;
        let z_prev = z;
        z += x * y;
        y += y;
        if z == z_prev || !z.is_finite() {
            return z;
        }
    }
}

/// Ertl's `τ` helper: `τ(x) = (1/3)(1 − x − Σ_{k≥1}(1 − x^{2^{-k}})²·2^{-k})`
/// (weight of saturated registers).
pub fn tau(mut x: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&x));
    if x == 0.0 || x == 1.0 {
        return 0.0;
    }
    let mut y = 1.0;
    let mut z = 1.0 - x;
    loop {
        x = x.sqrt();
        let z_prev = z;
        y *= 0.5;
        let omx = 1.0 - x;
        z -= omx * omx * y;
        if z == z_prev {
            return z / 3.0;
        }
    }
}

/// Ertl's improved raw estimator (Ertl 2017, Algorithm 8): exact asymptotic
/// constant `α_∞`, with `σ`/`τ` handling of empty and saturated registers.
/// `hist` must have `cap + 1` entries where `cap` is the register
/// saturation value.
pub fn ertl_improved(hist: &[u64]) -> f64 {
    let cap = hist.len() - 1;
    let m: u64 = hist.iter().sum();
    let mf = m as f64;
    let mut z = mf * tau(1.0 - hist[cap] as f64 / mf);
    for k in (1..cap).rev() {
        z = 0.5 * (z + hist[k] as f64);
    }
    z += mf * sigma(hist[0] as f64 / mf);
    ALPHA_INF * mf * mf / z
}

/// Log-likelihood of the register histogram under the Poisson model with
/// per-bucket rate `lambda` (`= n/m`), used by [`ertl_mle`].
///
/// Register distribution for saturation value `cap`:
/// `P(M ≤ k) = exp(-λ·2^{-k})` for `0 ≤ k < cap`, `P(M ≤ cap) = 1`, so
/// `P(M = k) = exp(-λ·2^{-k}) · (1 − exp(-λ·2^{-k}))` for `1 ≤ k < cap`
/// (note `-λ2^{-(k-1)} = -λ2^{-k} − λ2^{-k}`), `P(M = 0) = exp(-λ)` and
/// `P(M = cap) = 1 − exp(-λ·2^{-(cap-1)})`.
pub fn poisson_log_likelihood(hist: &[u64], lambda: f64) -> f64 {
    let cap = hist.len() - 1;
    let mut ll = KahanSum::new();
    if hist[0] > 0 {
        ll.add(hist[0] as f64 * -lambda);
    }
    for (k, &c) in hist.iter().enumerate().take(cap).skip(1) {
        if c > 0 {
            let e = -lambda * 2f64.powi(-(k as i32));
            // ln P = e + ln(1 − exp(e)) = e + ln(−expm1(e))
            let p_tail = -e.exp_m1();
            ll.add(c as f64 * (e + p_tail.max(f64::MIN_POSITIVE).ln()));
        }
    }
    if hist[cap] > 0 {
        let e = -lambda * 2f64.powi(-(cap as i32 - 1));
        let p = -e.exp_m1();
        ll.add(hist[cap] as f64 * p.max(f64::MIN_POSITIVE).ln());
    }
    ll.total()
}

/// Ertl's Poisson maximum-likelihood estimator: maximizes
/// [`poisson_log_likelihood`] in `λ` and returns `λ̂ · m`.
///
/// Degenerate inputs (all registers empty → 0; all saturated → the
/// saturation-scale upper estimate) short-circuit.
pub fn ertl_mle(hist: &[u64]) -> f64 {
    let cap = hist.len() - 1;
    let m: u64 = hist.iter().sum();
    let mf = m as f64;
    if hist[0] == m {
        return 0.0;
    }
    if hist[cap] == m {
        // Likelihood increases without bound; report the scale at which
        // saturation is near-certain.
        return mf * 2f64.powi(cap as i32 + 2);
    }
    // Bracket around the improved estimate (robust even when that estimate
    // is off by a large factor).
    let init = ertl_improved(hist).max(1e-9) / mf;
    let lo = (init / 256.0).ln();
    let hi = (init * 256.0).ln();
    let (t, _) = golden_section_max(
        |t| poisson_log_likelihood(hist, t.exp()),
        lo,
        hi,
        1e-10,
        200,
    );
    t.exp() * mf
}

/// Which estimator Algorithm 3 should use for its HLL head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EstimatorKind {
    /// Original FFGM07 (raw + linear counting).
    Ffgm,
    /// Ertl's improved raw estimator (default: unbiased across ranges, no
    /// regime switching).
    #[default]
    ErtlImproved,
    /// Ertl's Poisson MLE (most accurate, slowest).
    ErtlMle,
}

/// Dispatch on [`EstimatorKind`].
pub fn estimate(hist: &[u64], kind: EstimatorKind) -> f64 {
    match kind {
        EstimatorKind::Ffgm => ffgm(hist),
        EstimatorKind::ErtlImproved => ertl_improved(hist),
        EstimatorKind::ErtlMle => ertl_mle(hist),
    }
}

/// Expected register histogram under the Poisson model — the exact
/// distribution the simulators and tests validate against.
pub fn expected_histogram(m: usize, cap: usize, n: f64) -> Vec<f64> {
    let lambda = n / m as f64;
    let mut out = vec![0.0; cap + 1];
    out[0] = (-lambda).exp() * m as f64;
    for (k, slot) in out.iter_mut().enumerate().take(cap).skip(1) {
        let e = -lambda * 2f64.powi(-(k as i32));
        *slot = e.exp() * (-e.exp_m1()) * m as f64;
    }
    let e = -lambda * 2f64.powi(-(cap as i32 - 1));
    out[cap] = -e.exp_m1() * m as f64;
    out
}

/// Probability that a single occupied-or-not register equals `k` for `n`
/// *fixed* (non-Poissonized) items over `m` buckets — used by exactness
/// tests at small `n` where Poissonization visibly differs.
pub fn exact_register_pmf(m: usize, cap: usize, n: u64, k: usize) -> f64 {
    // P(M ≤ k) = (1 − P(element in this bucket with ρ > k))^n
    //          = (1 − 2^{-p}·2^{-k})^n with 2^{-p} = 1/m, for 0 ≤ k < cap.
    let tail = |k: i32| -> f64 {
        if k < 0 {
            0.0
        } else if k as usize >= cap {
            1.0
        } else {
            pow1m(2f64.powi(-k) / m as f64, n as f64)
        }
    };
    tail(k as i32) - tail(k as i32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the histogram of an idealized register vector where register j
    /// of m took the exact expected value — handy smoke inputs.
    fn hist_from_registers(regs: &[u32], cap: u32) -> Vec<u64> {
        let mut h = vec![0u64; cap as usize + 1];
        for &r in regs {
            h[r as usize] += 1;
        }
        h
    }

    #[test]
    fn alpha_constants() {
        assert_eq!(alpha_m(16), 0.673);
        assert_eq!(alpha_m(32), 0.697);
        assert_eq!(alpha_m(64), 0.709);
        assert!((alpha_m(1 << 20) - ALPHA_INF).abs() < 1e-3);
    }

    #[test]
    fn sigma_and_tau_reference_points() {
        // σ(0) = 0, σ(x) ≈ x for tiny x, σ(1) = ∞.
        assert_eq!(sigma(0.0), 0.0);
        assert!((sigma(1e-12) - 1e-12).abs() < 1e-20);
        assert_eq!(sigma(1.0), f64::INFINITY);
        // τ(0) = τ(1) = 0; τ is positive inside.
        assert_eq!(tau(0.0), 0.0);
        assert_eq!(tau(1.0), 0.0);
        assert!(tau(0.5) > 0.0);
        // Ertl's series: σ(1/2) = 1/2 + 1/4·1 + 1/16·2 + 1/256·4 + … ≈ 0.890625 + tail
        let s = sigma(0.5);
        assert!((0.89..0.90).contains(&s), "σ(0.5) = {s}");
    }

    #[test]
    fn linear_counting_small_range() {
        // 1000 registers, 10 occupied at value 1 → LC: m·ln(m/V).
        let mut hist = vec![0u64; 65];
        hist[0] = 990;
        hist[1] = 10;
        let e = ffgm(&hist);
        let lc = 1000.0 * (1000.0f64 / 990.0).ln();
        assert!((e - lc).abs() < 1e-9, "{e} vs {lc}");
    }

    #[test]
    fn estimators_agree_on_poisson_expected_histogram() {
        // Feed each estimator the *expected* histogram at a known n; all
        // should recover n within a few percent.
        let m = 4096;
        let cap = 64;
        for &n in &[5_000.0, 100_000.0, 10_000_000.0] {
            let exp_hist = expected_histogram(m, cap, n);
            let hist: Vec<u64> = exp_hist.iter().map(|&x| x.round() as u64).collect();
            for kind in [EstimatorKind::Ffgm, EstimatorKind::ErtlImproved, EstimatorKind::ErtlMle]
            {
                let e = estimate(&hist, kind);
                assert!(
                    ((e - n) / n).abs() < 0.04,
                    "{kind:?} at n={n}: {e}"
                );
            }
        }
    }

    #[test]
    fn mle_handles_degenerate_histograms() {
        let mut empty = vec![0u64; 65];
        empty[0] = 1024;
        assert_eq!(ertl_mle(&empty), 0.0);

        let mut saturated = vec![0u64; 65];
        saturated[64] = 1024;
        assert!(ertl_mle(&saturated) > 1e20);
    }

    #[test]
    fn log_likelihood_peaks_near_truth() {
        let m = 1024;
        let cap = 32;
        let n = 50_000.0;
        let hist: Vec<u64> = expected_histogram(m, cap, n)
            .iter()
            .map(|&x| x.round() as u64)
            .collect();
        let lambda = n / m as f64;
        let at_truth = poisson_log_likelihood(&hist, lambda);
        assert!(at_truth > poisson_log_likelihood(&hist, lambda * 1.3));
        assert!(at_truth > poisson_log_likelihood(&hist, lambda / 1.3));
    }

    #[test]
    fn exact_pmf_sums_to_one() {
        let (m, cap, n) = (256, 16, 1000u64);
        let total: f64 = (0..=cap).map(|k| exact_register_pmf(m, cap, n, k)).sum();
        assert!((total - 1.0).abs() < 1e-12, "{total}");
    }

    #[test]
    fn exact_pmf_matches_poisson_for_large_n() {
        let (m, cap) = (1024, 32);
        let n = 1_000_000u64;
        let expected = expected_histogram(m, cap, n as f64);
        for (k, &pois) in expected.iter().enumerate() {
            let exact = exact_register_pmf(m, cap, n, k) * m as f64;
            if pois > 1e-3 {
                assert!(
                    ((exact - pois) / pois).abs() < 0.01,
                    "k={k}: {exact} vs {pois}"
                );
            }
        }
    }

    #[test]
    fn saturated_register_weighting() {
        // Every register saturated: the likelihood has no interior optimum
        // and Ertl improved correctly diverges to +∞ (τ(0) = σ(0) = 0) —
        // Algorithm 3's KMV tail takes over in that regime. One register
        // below the cap restores a finite, huge estimate.
        let all = hist_from_registers(&vec![6u32; 64], 6);
        assert_eq!(ertl_improved(&all), f64::INFINITY);

        let mut regs = vec![6u32; 64];
        regs[0] = 5;
        let almost = hist_from_registers(&regs, 6);
        let e = ertl_improved(&almost);
        assert!(e.is_finite());
        assert!(e > 1000.0, "estimate {e}");
    }
}
