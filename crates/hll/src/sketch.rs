//! The HyperLogLog sketch proper.

use crate::estimators::{self, EstimatorKind};
use crate::registers::BitPacked;
use hmh_hash::{HashableItem, RandomOracle};

/// Re-export: which estimator to use for cardinality queries.
pub use crate::estimators::EstimatorKind as Estimator;

/// Errors from sketch combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HllError {
    /// Sketches have different `p` (bucket count) or `cap` parameters.
    ParameterMismatch {
        /// Parameters of the left operand as `(p, cap)`.
        left: (u32, u32),
        /// Parameters of the right operand as `(p, cap)`.
        right: (u32, u32),
    },
    /// Sketches were built with different oracles and cannot be merged.
    OracleMismatch,
}

impl std::fmt::Display for HllError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ParameterMismatch { left, right } => write!(
                f,
                "HLL parameter mismatch: (p, cap) = {left:?} vs {right:?}"
            ),
            Self::OracleMismatch => write!(f, "HLL sketches use different random oracles"),
        }
    }
}

impl std::error::Error for HllError {}

/// A HyperLogLog count-distinct sketch with `2^p` registers saturating at
/// `cap`, stored bit-packed at the minimum width.
///
/// Default `cap` is 63 (6-bit registers — "storing 6 bits is sufficient for
/// set cardinalities up to O(2^64)", §2).
///
/// ```
/// use hmh_hll::HyperLogLog;
///
/// let mut sketch = HyperLogLog::new(12); // 4096 six-bit registers = 3 KiB
/// for i in 0..50_000u64 {
///     sketch.insert(&i);
/// }
/// let estimate = sketch.cardinality();
/// assert!((estimate / 50_000.0 - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HyperLogLog {
    p: u32,
    cap: u32,
    oracle: RandomOracle,
    registers: BitPacked,
}

impl HyperLogLog {
    /// Default register saturation value: 6-bit registers.
    pub const DEFAULT_CAP: u32 = 63;

    /// New sketch with `2^p` registers (`4 ≤ p ≤ 24`) and the default
    /// oracle.
    pub fn new(p: u32) -> Self {
        Self::with_oracle(p, Self::DEFAULT_CAP, RandomOracle::default())
    }

    /// New sketch with explicit saturation value and oracle.
    ///
    /// # Panics
    /// If `p ∉ 4..=24` or `cap ∉ 1..=64`.
    pub fn with_oracle(p: u32, cap: u32, oracle: RandomOracle) -> Self {
        assert!((4..=24).contains(&p), "p = {p} out of 4..=24");
        assert!((1..=64).contains(&cap), "cap = {cap} out of 1..=64");
        let width = 32 - cap.leading_zeros(); // bits to hold 0..=cap
        Self {
            p,
            cap,
            oracle,
            registers: BitPacked::new(width, 1 << p),
        }
    }

    /// Number of registers `m = 2^p`.
    pub fn num_registers(&self) -> usize {
        // hmh-lint: allow(shift-overflow-hazard) — p ∈ 4..=24 asserted by with_oracle
        1 << self.p
    }

    /// The precision parameter `p`.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// The register saturation value.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// The oracle this sketch hashes with.
    pub fn oracle(&self) -> RandomOracle {
        self.oracle
    }

    /// Sketch memory in bytes (packed registers only).
    pub fn byte_size(&self) -> usize {
        self.registers.byte_size()
    }

    /// Insert one item.
    pub fn insert<T: HashableItem + ?Sized>(&mut self, item: &T) {
        let digest = self.oracle.digest(item);
        let bucket = digest.take_bits(0, self.p) as usize;
        let (rho, _) = digest.rho_sigma(self.p, self.cap, 0);
        if rho > self.registers.get(bucket) {
            self.registers.set(bucket, rho);
        }
    }

    /// Insert a register value directly (used by the simulator and by
    /// Algorithm 3's counter hand-off from HyperMinHash).
    ///
    /// # Panics
    /// If `rho > cap`.
    pub fn observe_register(&mut self, bucket: usize, rho: u32) {
        assert!(rho <= self.cap, "rho {rho} exceeds cap {}", self.cap);
        if rho > self.registers.get(bucket) {
            self.registers.set(bucket, rho);
        }
    }

    /// Read register `bucket`.
    pub fn register(&self, bucket: usize) -> u32 {
        self.registers.get(bucket)
    }

    /// Register value histogram (`cap + 1` entries).
    pub fn histogram(&self) -> Vec<u64> {
        self.registers.histogram(self.cap)
    }

    /// Cardinality estimate with the default estimator (Ertl improved).
    pub fn cardinality(&self) -> f64 {
        self.cardinality_with(EstimatorKind::default())
    }

    /// Cardinality estimate with an explicit estimator.
    pub fn cardinality_with(&self, kind: EstimatorKind) -> f64 {
        estimators::estimate(&self.histogram(), kind)
    }

    /// Lossless union: the sketch of `A ∪ B` (register-wise max).
    pub fn union(&self, other: &Self) -> Result<Self, HllError> {
        self.check_compatible(other)?;
        let mut out = self.clone();
        for i in 0..out.num_registers() {
            let v = other.registers.get(i);
            if v > out.registers.get(i) {
                out.registers.set(i, v);
            }
        }
        Ok(out)
    }

    /// In-place union.
    pub fn merge(&mut self, other: &Self) -> Result<(), HllError> {
        self.check_compatible(other)?;
        for i in 0..self.num_registers() {
            let v = other.registers.get(i);
            if v > self.registers.get(i) {
                self.registers.set(i, v);
            }
        }
        Ok(())
    }

    /// Check mergeability.
    pub fn check_compatible(&self, other: &Self) -> Result<(), HllError> {
        if self.p != other.p || self.cap != other.cap {
            return Err(HllError::ParameterMismatch {
                left: (self.p, self.cap),
                right: (other.p, other.cap),
            });
        }
        if self.oracle != other.oracle {
            return Err(HllError::OracleMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_across_three_decades() {
        let mut h = HyperLogLog::new(12);
        let mut next_check = 100u64;
        for i in 0..1_000_000u64 {
            h.insert(&i);
            if i + 1 == next_check {
                let e = h.cardinality();
                let n = (i + 1) as f64;
                let tol = if n < 10_000.0 { 0.05 } else { 0.06 };
                assert!(
                    ((e - n) / n).abs() < tol,
                    "at n={n}: estimate {e}"
                );
                next_check *= 10;
            }
        }
    }

    #[test]
    fn duplicates_do_not_count() {
        let mut h = HyperLogLog::new(10);
        for _ in 0..100 {
            for i in 0..500u64 {
                h.insert(&i);
            }
        }
        let e = h.cardinality();
        assert!((e - 500.0).abs() / 500.0 < 0.1, "estimate {e}");
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let h = HyperLogLog::new(10);
        assert_eq!(h.cardinality_with(EstimatorKind::Ffgm), 0.0);
        assert_eq!(h.cardinality_with(EstimatorKind::ErtlMle), 0.0);
    }

    #[test]
    fn union_equals_inserting_both() {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        let mut ab = HyperLogLog::new(10);
        for i in 0..5_000u64 {
            a.insert(&i);
            ab.insert(&i);
        }
        for i in 2_500..7_500u64 {
            b.insert(&i);
            ab.insert(&i);
        }
        let u = a.union(&b).unwrap();
        assert_eq!(u, ab, "register-wise max must equal the direct sketch");
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let mut a = HyperLogLog::new(8);
        let mut b = HyperLogLog::new(8);
        for i in 0..1000u64 {
            a.insert(&(i * 3));
            b.insert(&(i * 7));
        }
        assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        assert_eq!(a.union(&a).unwrap(), a);
    }

    #[test]
    fn mismatched_parameters_refuse_to_merge() {
        let a = HyperLogLog::new(8);
        let b = HyperLogLog::new(10);
        assert!(matches!(
            a.union(&b),
            Err(HllError::ParameterMismatch { .. })
        ));
        let c = HyperLogLog::with_oracle(8, 63, RandomOracle::with_seed(99));
        assert_eq!(a.union(&c), Err(HllError::OracleMismatch));
    }

    #[test]
    fn small_cap_saturates_gracefully() {
        // cap=15 (4-bit registers, the Figure 6 HMH configuration's head).
        let mut h = HyperLogLog::with_oracle(10, 15, RandomOracle::default());
        for i in 0..100_000u64 {
            h.insert(&i);
        }
        let e = h.cardinality();
        // 2^cap-scale ceilings are far above 1e5; estimate should be sane.
        assert!((e - 1e5).abs() / 1e5 < 0.1, "estimate {e}");
    }

    #[test]
    fn byte_size_packs_registers() {
        // p=12, cap=63 → 6-bit registers → 4096·6/8 = 3072 bytes.
        let h = HyperLogLog::new(12);
        assert_eq!(h.byte_size(), 3072);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trip() {
        let mut h = HyperLogLog::new(8);
        for i in 0..1000u64 {
            h.insert(&i);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: HyperLogLog = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        assert_eq!(h.cardinality(), back.cardinality());
    }
}
