//! Set pairs with exact target overlap — the Figure 6 protocol.
//!
//! Figure 6 compares sketches on "identically sized sets with Jaccard
//! index of 1/3 (i.e. 50% overlap)". [`pair_with_overlap`] constructs such
//! pairs exactly; [`pair_with_jaccard`] solves for the shared count from a
//! target Jaccard index.
//!
//! Elements are drawn disjointly from a seeded generator so truth values
//! are exact by construction (shared elements appear in both sets, private
//! elements in exactly one), with distinct elements guaranteed by an
//! invertible-mixer labeling rather than rejection sampling.

use hmh_hash::splitmix::mix64;

/// Specification of an (|A|, |B|, |A∩B|) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapSpec {
    /// `|A|`.
    pub n_a: u64,
    /// `|B|`.
    pub n_b: u64,
    /// `|A ∩ B|` (≤ min(n_a, n_b)).
    pub shared: u64,
}

impl OverlapSpec {
    /// Exact Jaccard index of the specification.
    pub fn jaccard(self) -> f64 {
        let u = self.n_a + self.n_b - self.shared;
        if u == 0 {
            0.0
        } else {
            self.shared as f64 / u as f64
        }
    }

    /// Exact union size.
    pub fn union_size(self) -> u64 {
        self.n_a + self.n_b - self.shared
    }

    /// For equal sizes `n` and target Jaccard `t`: `shared = 2nt/(1+t)`
    /// (rounded). `t = 1/3` gives `shared = n/2` — Figure 6's "50%
    /// overlap".
    pub fn equal_sized_with_jaccard(n: u64, t: f64) -> Self {
        assert!((0.0..=1.0).contains(&t), "t out of [0,1]");
        let shared = (2.0 * n as f64 * t / (1.0 + t)).round() as u64;
        Self { n_a: n, n_b: n, shared: shared.min(n) }
    }
}

/// Deterministic distinct element labels: `mix64` is a bijection on `u64`,
/// so streaming `mix64(tag ⊕ counter)` over distinct counters never
/// repeats within a pair.
fn label(seed: u64, index: u64) -> u64 {
    mix64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(index))
}

/// Generate `(A, B)` element vectors realizing `spec` exactly.
///
/// Elements are unique within and across the two sets' private regions;
/// shared elements appear in both. The same `seed` reproduces the same
/// pair.
pub fn pair_with_overlap(spec: OverlapSpec, seed: u64) -> (Vec<u64>, Vec<u64>) {
    assert!(spec.shared <= spec.n_a.min(spec.n_b), "overlap exceeds set size");
    let mut a = Vec::with_capacity(spec.n_a as usize);
    let mut b = Vec::with_capacity(spec.n_b as usize);
    // Index space partition: [0, shared) shared, then private runs. The
    // labeling is injective in the index, so regions never collide.
    for i in 0..spec.shared {
        let e = label(seed, i);
        a.push(e);
        b.push(e);
    }
    let mut next = spec.shared;
    for _ in 0..(spec.n_a - spec.shared) {
        a.push(label(seed, next));
        next += 1;
    }
    for _ in 0..(spec.n_b - spec.shared) {
        b.push(label(seed, next));
        next += 1;
    }
    (a, b)
}

/// Generate an equal-sized pair with exact target Jaccard `t` (up to the
/// one-element rounding of the shared count).
pub fn pair_with_jaccard(n: u64, t: f64, seed: u64) -> (Vec<u64>, Vec<u64>, OverlapSpec) {
    let spec = OverlapSpec::equal_sized_with_jaccard(n, t);
    let (a, b) = pair_with_overlap(spec, seed);
    (a, b, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSet;

    #[test]
    fn spec_math() {
        let spec = OverlapSpec::equal_sized_with_jaccard(30_000, 1.0 / 3.0);
        assert_eq!(spec.shared, 15_000, "J = 1/3 ⇔ 50% overlap");
        assert!((spec.jaccard() - 1.0 / 3.0).abs() < 1e-4);
        assert_eq!(spec.union_size(), 45_000);
    }

    #[test]
    fn jaccard_extremes() {
        let disjoint = OverlapSpec::equal_sized_with_jaccard(100, 0.0);
        assert_eq!(disjoint.shared, 0);
        let identical = OverlapSpec::equal_sized_with_jaccard(100, 1.0);
        assert_eq!(identical.shared, 100);
        assert_eq!(identical.jaccard(), 1.0);
        assert_eq!(OverlapSpec { n_a: 0, n_b: 0, shared: 0 }.jaccard(), 0.0);
    }

    #[test]
    fn generated_pairs_realize_the_spec_exactly() {
        let spec = OverlapSpec { n_a: 5_000, n_b: 3_000, shared: 1_000 };
        let (a, b) = pair_with_overlap(spec, 42);
        let sa: ExactSet = a.iter().copied().collect();
        let sb: ExactSet = b.iter().copied().collect();
        assert_eq!(sa.len() as u64, spec.n_a, "labels must be distinct");
        assert_eq!(sb.len() as u64, spec.n_b);
        assert_eq!(sa.intersection_size(&sb) as u64, spec.shared);
        assert_eq!(sa.union_size(&sb) as u64, spec.union_size());
    }

    #[test]
    fn seeds_give_distinct_but_reproducible_pairs() {
        let spec = OverlapSpec { n_a: 100, n_b: 100, shared: 50 };
        let (a1, _) = pair_with_overlap(spec, 1);
        let (a1_again, _) = pair_with_overlap(spec, 1);
        let (a2, _) = pair_with_overlap(spec, 2);
        assert_eq!(a1, a1_again);
        assert_ne!(a1, a2);
    }

    #[test]
    fn pair_with_jaccard_end_to_end() {
        let (a, b, spec) = pair_with_jaccard(10_000, 0.1, 7);
        let sa: ExactSet = a.into_iter().collect();
        let sb: ExactSet = b.into_iter().collect();
        let truth = sa.jaccard(&sb);
        assert!((truth - 0.1).abs() < 1e-3, "truth {truth}");
        assert!((spec.jaccard() - truth).abs() < 1e-12);
    }
}
