//! The intro's survey scenario: "how many participants in a political
//! survey are independent and have a favorable view of the federal
//! government?"
//!
//! Generates a synthetic respondent population with categorical attributes
//! and materializes one element-set per attribute value — the natural
//! input shape for CNF queries over sketches (`hmh-cnf`): each clause ORs
//! attribute-value sets, the query ANDs clauses.

use hmh_hash::splitmix::mix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Political affiliation.
pub const PARTIES: [&str; 3] = ["democrat", "republican", "independent"];
/// View of the federal government.
pub const VIEWS: [&str; 3] = ["favorable", "neutral", "unfavorable"];
/// Age bracket.
pub const AGES: [&str; 4] = ["18-29", "30-44", "45-64", "65+"];

/// A generated survey population.
#[derive(Debug, Clone)]
pub struct Survey {
    /// Respondent IDs per attribute value, keyed `"{attribute}:{value}"`
    /// (e.g. `"party:independent"`).
    pub groups: BTreeMap<String, Vec<u64>>,
    /// Total number of respondents.
    pub population: usize,
}

impl Survey {
    /// Generate a population of `n` respondents with independently drawn
    /// attributes (non-uniform marginals, deterministic per seed).
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut groups: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let weights_party = [0.42, 0.38, 0.20];
        let weights_view = [0.30, 0.25, 0.45];
        let weights_age = [0.22, 0.26, 0.33, 0.19];
        for i in 0..n as u64 {
            let id = mix64(seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
                .wrapping_add(mix64(i));
            let party = PARTIES[pick(&mut rng, &weights_party)];
            let view = VIEWS[pick(&mut rng, &weights_view)];
            let age = AGES[pick(&mut rng, &weights_age)];
            groups.entry(format!("party:{party}")).or_default().push(id);
            groups.entry(format!("view:{view}")).or_default().push(id);
            groups.entry(format!("age:{age}")).or_default().push(id);
        }
        Self { groups, population: n }
    }

    /// The respondent IDs of one attribute value (empty slice if absent).
    pub fn group(&self, key: &str) -> &[u64] {
        self.groups.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Exact count of respondents in *all* of the given groups
    /// (conjunction over attribute-value sets).
    pub fn exact_and(&self, keys: &[&str]) -> usize {
        let Some((first, rest)) = keys.split_first() else {
            return 0;
        };
        let mut acc: std::collections::BTreeSet<u64> = self.group(first).iter().copied().collect();
        for key in rest {
            let next: std::collections::BTreeSet<u64> = self.group(key).iter().copied().collect();
            acc.retain(|id| next.contains(id));
        }
        acc.len()
    }

    /// Exact count of respondents in *any* of the given groups.
    pub fn exact_or(&self, keys: &[&str]) -> usize {
        let mut acc: std::collections::BTreeSet<u64> = Default::default();
        for key in keys {
            acc.extend(self.group(key).iter().copied());
        }
        acc.len()
    }
}

fn pick<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_respondent_lands_in_three_groups() {
        let s = Survey::generate(10_000, 1);
        let party_total: usize = PARTIES.iter().map(|p| s.group(&format!("party:{p}")).len()).sum();
        let view_total: usize = VIEWS.iter().map(|v| s.group(&format!("view:{v}")).len()).sum();
        let age_total: usize = AGES.iter().map(|a| s.group(&format!("age:{a}")).len()).sum();
        assert_eq!(party_total, 10_000);
        assert_eq!(view_total, 10_000);
        assert_eq!(age_total, 10_000);
    }

    #[test]
    fn marginals_match_weights() {
        let s = Survey::generate(50_000, 2);
        let dem = s.group("party:democrat").len() as f64 / 50_000.0;
        assert!((dem - 0.42).abs() < 0.02, "democrat share {dem}");
        let unf = s.group("view:unfavorable").len() as f64 / 50_000.0;
        assert!((unf - 0.45).abs() < 0.02, "unfavorable share {unf}");
    }

    #[test]
    fn independence_of_attributes() {
        // P(independent ∧ favorable) ≈ 0.20 · 0.30.
        let s = Survey::generate(100_000, 3);
        let both = s.exact_and(&["party:independent", "view:favorable"]) as f64 / 100_000.0;
        assert!((both - 0.06).abs() < 0.01, "joint share {both}");
    }

    #[test]
    fn or_and_edge_cases() {
        let s = Survey::generate(1000, 4);
        assert_eq!(s.exact_and(&[]), 0);
        assert_eq!(s.exact_or(&[]), 0);
        assert_eq!(s.exact_or(&["party:democrat", "party:republican", "party:independent"]), 1000);
        assert_eq!(s.group("party:whig").len(), 0);
    }

    #[test]
    fn ids_are_distinct() {
        let s = Survey::generate(20_000, 5);
        let all: std::collections::HashSet<u64> =
            PARTIES.iter().flat_map(|p| s.group(&format!("party:{p}")).iter().copied()).collect();
        assert_eq!(all.len(), 20_000);
    }
}
