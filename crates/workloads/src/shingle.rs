//! Document shingling — Broder's original MinHash use case ("estimating
//! the resemblance of documents by looking at the Jaccard index of
//! 'shingles' … contained within the documents", §1.1).
//!
//! A document is reduced to the set of hashes of its word `w`-grams;
//! document resemblance is the Jaccard index of those sets.

use hmh_hash::xxhash::xxh64;

/// Split `text` into lowercase word tokens (alphanumeric runs).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// The set of hashed word `w`-shingles of `text` (duplicates removed).
///
/// # Panics
/// If `w == 0`.
pub fn shingles(text: &str, w: usize) -> Vec<u64> {
    assert!(w > 0, "shingle width must be positive");
    let tokens = tokenize(text);
    if tokens.len() < w {
        return Vec::new();
    }
    let mut out: Vec<u64> = tokens
        .windows(w)
        .map(|gram| {
            let joined = gram.join("\u{1f}"); // unit separator avoids gluing
            xxh64(joined.as_bytes(), 0x5a17_9e55)
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// A tiny synthetic "document" generator: deterministic pseudo-sentences
/// over a fixed vocabulary, with a mutation knob to create
/// near-duplicates.
pub fn synthetic_document(words: usize, seed: u64, mutation_rate: f64) -> String {
    const VOCAB: [&str; 24] = [
        "stream", "sketch", "jaccard", "union", "bucket", "hash", "minimum", "counter",
        "mantissa", "collision", "estimate", "cardinality", "index", "partition", "document",
        "query", "survey", "network", "packet", "distinct", "probability", "random", "oracle",
        "bitstring",
    ];
    let mut out = String::new();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..words {
        let roll = next();
        // Mutation: replace the deterministic word stream with a seeded
        // detour at the given rate.
        let idx = if (roll >> 32) as f64 / 2f64.powi(32) < mutation_rate {
            (roll % VOCAB.len() as u64) as usize
        } else {
            (i * 7 + 3) % VOCAB.len()
        };
        if i > 0 {
            out.push(' ');
        }
        out.push_str(VOCAB[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_normalizes() {
        assert_eq!(tokenize("Hello, World! 123"), vec!["hello", "world", "123"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("  --- "), Vec::<String>::new());
        assert_eq!(tokenize("Don't"), vec!["don", "t"]);
    }

    #[test]
    fn shingles_basic() {
        let s = shingles("a b c d", 2);
        assert_eq!(s.len(), 3); // ab, bc, cd
        let s1 = shingles("a b c d", 4);
        assert_eq!(s1.len(), 1);
        assert!(shingles("a b", 3).is_empty());
    }

    #[test]
    fn shingles_are_order_sensitive_but_duplicate_free() {
        let fwd = shingles("one two three", 2);
        let rev = shingles("three two one", 2);
        assert_ne!(fwd, rev);
        let rep = shingles("x y x y x y", 2);
        assert_eq!(rep.len(), 2); // xy and yx only
    }

    #[test]
    fn boundary_bytes_do_not_glue() {
        // ("ab", "c") must differ from ("a", "bc").
        let s1 = shingles("ab c", 2);
        let s2 = shingles("a bc", 2);
        assert_ne!(s1, s2);
    }

    #[test]
    fn identical_documents_have_jaccard_one() {
        let d = synthetic_document(500, 1, 0.0);
        let a = shingles(&d, 3);
        let b = shingles(&d, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn mutation_lowers_resemblance_monotonically() {
        let base = synthetic_document(2000, 42, 0.0);
        let sim = |rate: f64| -> f64 {
            let other = synthetic_document(2000, 43, rate);
            let a: crate::ExactSet = shingles(&base, 3).into_iter().collect();
            let b: crate::ExactSet = shingles(&other, 3).into_iter().collect();
            a.jaccard(&b)
        };
        let low = sim(0.05);
        let high = sim(0.5);
        assert!(low > high, "5% mutation {low} should resemble more than 50% {high}");
        assert!(sim(0.0) > 0.99, "unmutated copies are near-identical");
    }
}
