//! The intro's DDoS scenario: "how many of the source IPs used in a DDoS
//! attack today were also used last month?"
//!
//! Generates multi-day source-IP traffic with the two properties that make
//! the sketch problem interesting:
//!
//! * **heavy hitters** — per-day IP draws are Zipfian over each day's
//!   active pool, so the *stream* is much longer than the *distinct* count
//!   (exercising streaming deduplicating inserts);
//! * **controlled churn** — a configurable fraction of each day's pool
//!   carries over to the next day, giving known day-over-day overlap
//!   structure.

use hmh_math::dist::ZipfSampler;
use hmh_hash::splitmix::mix64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the traffic generator.
#[derive(Debug, Clone, Copy)]
pub struct IpStreamConfig {
    /// Distinct IPs active per day.
    pub pool_size: usize,
    /// Packets observed per day (stream length; ≥ pool_size for full
    /// coverage is not required — absent IPs simply stay unseen).
    pub packets_per_day: usize,
    /// Fraction of day `d`'s pool that carries over to day `d+1`.
    pub carryover: f64,
    /// Zipf exponent of per-packet IP popularity.
    pub zipf_s: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for IpStreamConfig {
    fn default() -> Self {
        Self { pool_size: 10_000, packets_per_day: 100_000, carryover: 0.4, zipf_s: 1.0, seed: 0 }
    }
}

/// One day of traffic.
#[derive(Debug, Clone)]
pub struct Day {
    /// The day's distinct IP pool (ground truth).
    pub pool: Vec<u64>,
    /// The packet stream: one source IP per packet, with repeats.
    pub packets: Vec<u64>,
}

/// Generate `days` days of traffic.
///
/// Day pools share exactly `⌊carryover · pool_size⌋` IPs with the previous
/// day (a sliding window over an injective IP-label sequence), so the
/// exact overlap between any two days `i < j` is
/// `max(0, pool_size − (j−i)·(pool_size − carried))`.
pub fn generate(config: IpStreamConfig, days: usize) -> Vec<Day> {
    assert!((0.0..=1.0).contains(&config.carryover));
    assert!(config.pool_size > 0);
    let carried = (config.carryover * config.pool_size as f64).floor() as usize;
    let fresh_per_day = config.pool_size - carried;
    let zipf = ZipfSampler::new(config.pool_size, config.zipf_s);
    let mut out = Vec::with_capacity(days);
    let mut rng = StdRng::seed_from_u64(config.seed);
    for day in 0..days {
        //

        // Sliding window over the injective label sequence: day d's pool is
        // labels [d·fresh, d·fresh + pool_size).
        let start = (day * fresh_per_day) as u64;
        let pool: Vec<u64> = (0..config.pool_size as u64)
            .map(|i| ip_label(config.seed, start + i))
            .collect();
        let packets: Vec<u64> =
            (0..config.packets_per_day).map(|_| pool[zipf.sample(&mut rng) - 1]).collect();
        out.push(Day { pool, packets });
    }
    out
}

/// Exact distinct-IP overlap between two generated days.
pub fn exact_overlap(config: IpStreamConfig, day_i: usize, day_j: usize) -> usize {
    let carried = (config.carryover * config.pool_size as f64).floor() as usize;
    let fresh = config.pool_size - carried;
    let gap = day_i.abs_diff(day_j);
    config.pool_size.saturating_sub(gap * fresh)
}

/// Injective IP labeling (IPv4-shaped for readability in examples: the
/// label is a mixed 64-bit value; take the low 32 bits for a display IP).
fn ip_label(seed: u64, index: u64) -> u64 {
    mix64(seed ^ 0xddee_ffaa_1122_3344).wrapping_add(mix64(index.wrapping_add(1)))
}

/// Render a label as a dotted-quad IPv4 string (low 32 bits).
pub fn as_ipv4(label: u64) -> String {
    let v = label as u32;
    format!("{}.{}.{}.{}", v >> 24, (v >> 16) & 255, (v >> 8) & 255, v & 255)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSet;

    #[test]
    fn pools_have_exact_size_and_overlap() {
        let cfg = IpStreamConfig { pool_size: 1000, packets_per_day: 5000, carryover: 0.3, ..Default::default() };
        let days = generate(cfg, 4);
        assert_eq!(days.len(), 4);
        for d in &days {
            let set: ExactSet = d.pool.iter().copied().collect();
            assert_eq!(set.len(), 1000, "labels must be injective");
        }
        let d0: ExactSet = days[0].pool.iter().copied().collect();
        let d1: ExactSet = days[1].pool.iter().copied().collect();
        let d2: ExactSet = days[2].pool.iter().copied().collect();
        assert_eq!(d0.intersection_size(&d1), exact_overlap(cfg, 0, 1));
        assert_eq!(d0.intersection_size(&d2), exact_overlap(cfg, 0, 2));
        assert_eq!(exact_overlap(cfg, 0, 1), 300);
    }

    #[test]
    fn packets_draw_from_the_pool_with_repeats() {
        let cfg = IpStreamConfig { pool_size: 100, packets_per_day: 10_000, ..Default::default() };
        let days = generate(cfg, 1);
        let pool: ExactSet = days[0].pool.iter().copied().collect();
        assert!(days[0].packets.iter().all(|ip| pool.contains(*ip)));
        let distinct: ExactSet = days[0].packets.iter().copied().collect();
        assert!(distinct.len() <= 100);
        assert!(distinct.len() > 50, "most of a small pool should appear");
    }

    #[test]
    fn zipf_makes_heavy_hitters() {
        let cfg = IpStreamConfig { pool_size: 1000, packets_per_day: 50_000, zipf_s: 1.2, ..Default::default() };
        let days = generate(cfg, 1);
        let mut counts = std::collections::HashMap::new();
        for &ip in &days[0].packets {
            *counts.entry(ip).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 50_000 / 100, "heaviest hitter should dominate: {max}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = IpStreamConfig::default();
        let a = generate(cfg, 2);
        let b = generate(cfg, 2);
        assert_eq!(a[1].packets, b[1].packets);
        let c = generate(IpStreamConfig { seed: 9, ..cfg }, 2);
        assert_ne!(a[1].packets, c[1].packets);
    }

    #[test]
    fn ipv4_rendering() {
        assert_eq!(as_ipv4(0x0102_0304), "1.2.3.4");
        assert_eq!(as_ipv4(0xffff_ffff), "255.255.255.255");
    }

    #[test]
    fn distant_days_are_disjoint() {
        let cfg = IpStreamConfig { pool_size: 100, carryover: 0.5, ..Default::default() };
        assert_eq!(exact_overlap(cfg, 0, 1), 50);
        assert_eq!(exact_overlap(cfg, 0, 2), 0);
        assert_eq!(exact_overlap(cfg, 0, 10), 0);
    }
}
