//! Exact set operations — the ground truth every estimate is scored
//! against.

use std::collections::BTreeSet;

/// An exact set of `u64` elements with the operations the sketches
/// estimate. Backed by a `BTreeSet` so iteration order — and therefore
/// everything derived from it — is deterministic across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExactSet {
    items: BTreeSet<u64>,
}

impl ExactSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an element; returns true if it was new.
    pub fn insert(&mut self, item: u64) -> bool {
        self.items.insert(item)
    }

    /// Membership test.
    pub fn contains(&self, item: u64) -> bool {
        self.items.contains(&item)
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate over elements (ascending order).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.items.iter().copied()
    }

    /// `|self ∩ other|`.
    pub fn intersection_size(&self, other: &Self) -> usize {
        let (small, large) =
            if self.len() <= other.len() { (self, other) } else { (other, self) };
        small.items.iter().filter(|i| large.items.contains(i)).count()
    }

    /// `|self ∪ other|`.
    pub fn union_size(&self, other: &Self) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Exact Jaccard index (0 for two empty sets).
    pub fn jaccard(&self, other: &Self) -> f64 {
        let u = self.union_size(other);
        if u == 0 {
            0.0
        } else {
            self.intersection_size(other) as f64 / u as f64
        }
    }

    /// Union with another set.
    pub fn union(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.items.extend(&other.items);
        out
    }

    /// Intersection with another set.
    pub fn intersection(&self, other: &Self) -> Self {
        let (small, large) =
            if self.len() <= other.len() { (self, other) } else { (other, self) };
        Self {
            items: small.items.iter().filter(|i| large.items.contains(i)).copied().collect(),
        }
    }
}

impl FromIterator<u64> for ExactSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self { items: iter.into_iter().collect() }
    }
}

impl Extend<u64> for ExactSet {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let a: ExactSet = (0..100).collect();
        let b: ExactSet = (50..150).collect();
        assert_eq!(a.len(), 100);
        assert_eq!(a.intersection_size(&b), 50);
        assert_eq!(a.union_size(&b), 150);
        assert!((a.jaccard(&b) - 50.0 / 150.0).abs() < 1e-15);
        assert_eq!(a.union(&b).len(), 150);
        assert_eq!(a.intersection(&b).len(), 50);
    }

    #[test]
    fn duplicates_and_membership() {
        let mut s = ExactSet::new();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_edge_cases() {
        let e = ExactSet::new();
        assert!(e.is_empty());
        assert_eq!(e.jaccard(&e), 0.0);
        assert_eq!(e.union_size(&e), 0);
    }

    #[test]
    fn jaccard_identity_and_disjoint() {
        let a: ExactSet = (0..10).collect();
        assert_eq!(a.jaccard(&a.clone()), 1.0);
        let b: ExactSet = (100..110).collect();
        assert_eq!(a.jaccard(&b), 0.0);
    }
}
