//! Workload generators and exact ground truth for the experiments.
//!
//! Every experiment in EXPERIMENTS.md draws its data from here:
//!
//! * [`exact`] — hash-set ground truth (exact Jaccard / union /
//!   intersection) to score estimates against.
//! * [`pairs`] — set pairs with exact target overlap/Jaccard (the Figure 6
//!   protocol: identically sized sets with J = 1/3).
//! * [`ipstream`] — the intro's DDoS scenario: two days of source-IP
//!   traffic with heavy-hitter structure and controlled day-over-day
//!   overlap.
//! * [`survey`] — the intro's political-survey scenario: respondents with
//!   categorical attributes, one set per attribute value, for CNF queries.
//! * [`shingle`] — Broder's document-resemblance scenario: w-shingles of
//!   text.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod exact;
pub mod ipstream;
pub mod pairs;
pub mod shingle;
pub mod survey;

pub use exact::ExactSet;
pub use pairs::{pair_with_jaccard, pair_with_overlap, OverlapSpec};
