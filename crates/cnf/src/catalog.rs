//! A named collection of compatible HyperMinHash sketches.

use crate::error::CnfError;
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::HashableItem;
use std::collections::BTreeMap;

/// A catalog of named sketches sharing parameters and oracle, the target
/// of CNF queries. In a production deployment this is the "sketch per
/// attribute-value column" layout the paper's survey/DDoS examples imply.
#[derive(Debug, Clone)]
pub struct SketchCatalog {
    params: HmhParams,
    oracle: hmh_hash::RandomOracle,
    sketches: BTreeMap<String, HyperMinHash>,
}

impl SketchCatalog {
    /// Empty catalog; every sketch created through it shares `params` and
    /// the default oracle.
    pub fn new(params: HmhParams) -> Self {
        Self::with_oracle(params, hmh_hash::RandomOracle::default())
    }

    /// Empty catalog with an explicit shared oracle.
    pub fn with_oracle(params: HmhParams, oracle: hmh_hash::RandomOracle) -> Self {
        Self { params, oracle, sketches: BTreeMap::new() }
    }

    /// The common parameters.
    pub fn params(&self) -> HmhParams {
        self.params
    }

    /// Number of named sketches.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// True iff no sketches.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sketches.keys().map(String::as_str)
    }

    /// Insert one item into the named sketch, creating it on first use.
    pub fn insert<T: HashableItem + ?Sized>(&mut self, name: &str, item: &T) {
        self.sketch_mut(name).insert(item);
    }

    /// Bulk-insert items into the named sketch.
    pub fn insert_all<T: HashableItem, I: IntoIterator<Item = T>>(&mut self, name: &str, items: I) {
        let sketch = self.sketch_mut(name);
        for item in items {
            sketch.insert(&item);
        }
    }

    /// Adopt an externally built sketch.
    ///
    /// # Errors
    /// If its parameters or oracle differ from the catalog's.
    pub fn adopt(&mut self, name: impl Into<String>, sketch: HyperMinHash) -> Result<(), CnfError> {
        let probe = HyperMinHash::with_oracle(self.params, self.oracle);
        probe.check_compatible(&sketch)?;
        self.sketches.insert(name.into(), sketch);
        Ok(())
    }

    /// Look up a sketch.
    pub fn get(&self, name: &str) -> Result<&HyperMinHash, CnfError> {
        self.sketches.get(name).ok_or_else(|| CnfError::UnknownSet { name: name.to_string() })
    }

    fn sketch_mut(&mut self, name: &str) -> &mut HyperMinHash {
        self.sketches
            .entry(name.to_string())
            .or_insert_with(|| HyperMinHash::with_oracle(self.params, self.oracle))
    }

    /// Total memory of all sketches in bytes.
    pub fn byte_size(&self) -> usize {
        self.sketches.len() * self.params.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HmhParams {
        HmhParams::new(8, 4, 6).unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut cat = SketchCatalog::new(params());
        cat.insert_all("evens", (0..1000u64).map(|i| i * 2));
        cat.insert("odds", &1u64);
        assert_eq!(cat.len(), 2);
        assert!(cat.get("evens").is_ok());
        assert_eq!(
            cat.get("missing").unwrap_err(),
            CnfError::UnknownSet { name: "missing".into() }
        );
        assert_eq!(cat.names().collect::<Vec<_>>(), vec!["evens", "odds"]);
    }

    #[test]
    fn adopt_checks_compatibility() {
        let mut cat = SketchCatalog::new(params());
        let good = HyperMinHash::new(params());
        assert!(cat.adopt("ok", good).is_ok());
        let bad = HyperMinHash::new(HmhParams::new(9, 4, 6).unwrap());
        assert!(matches!(cat.adopt("bad", bad), Err(CnfError::Sketch(_))));
    }

    #[test]
    fn byte_accounting() {
        let mut cat = SketchCatalog::new(params());
        cat.insert("a", &1u64);
        cat.insert("b", &2u64);
        assert_eq!(cat.byte_size(), 2 * params().byte_size());
    }
}
