//! CNF query representation: an AND of OR-clauses over named sets.

use crate::error::CnfError;

/// A query in conjunctive normal form: `clause₁ ∧ clause₂ ∧ …` where each
/// clause is `var₁ ∨ var₂ ∨ …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfQuery {
    clauses: Vec<Vec<String>>,
}

impl CnfQuery {
    /// Build from clauses; every clause must be non-empty.
    pub fn new<C, V>(clauses: C) -> Result<Self, CnfError>
    where
        C: IntoIterator<Item = V>,
        V: IntoIterator<Item = String>,
    {
        let clauses: Vec<Vec<String>> =
            clauses.into_iter().map(|c| c.into_iter().collect()).collect();
        if clauses.is_empty() || clauses.iter().any(Vec::is_empty) {
            return Err(CnfError::EmptyQuery);
        }
        Ok(Self { clauses })
    }

    /// A single-clause helper.
    pub fn single_clause<I: IntoIterator<Item = String>>(vars: I) -> Result<Self, CnfError> {
        Self::new(std::iter::once(vars.into_iter().collect::<Vec<_>>()))
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<String>] {
        &self.clauses
    }

    /// All distinct variable names, in first-appearance order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for clause in &self.clauses {
            for v in clause {
                if seen.insert(v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }
}

impl std::fmt::Display for CnfQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            if clause.len() > 1 {
                write!(f, "({})", clause.join(" | "))?;
            } else {
                write!(f, "{}", clause[0])?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(clauses: &[&[&str]]) -> CnfQuery {
        CnfQuery::new(
            clauses.iter().map(|c| c.iter().map(|s| s.to_string()).collect::<Vec<_>>()),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let query = q(&[&["a", "b"], &["c"]]);
        assert_eq!(query.clauses().len(), 2);
        assert_eq!(query.variables(), vec!["a", "b", "c"]);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(CnfQuery::new(Vec::<Vec<String>>::new()).unwrap_err(), CnfError::EmptyQuery);
        assert_eq!(
            CnfQuery::new(vec![Vec::<String>::new()]).unwrap_err(),
            CnfError::EmptyQuery
        );
    }

    #[test]
    fn display_round_trips_through_parser() {
        let query = q(&[&["a", "b"], &["c"], &["d", "e", "f"]]);
        let text = query.to_string();
        assert_eq!(text, "(a | b) & c & (d | e | f)");
        let parsed = crate::parser::parse(&text).unwrap();
        assert_eq!(parsed, query);
    }

    #[test]
    fn variables_deduplicate() {
        let query = q(&[&["a", "b"], &["b", "a"]]);
        assert_eq!(query.variables(), vec!["a", "b"]);
    }
}
