//! A tiny recursive-descent parser for CNF query strings.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := clause ( AND clause )*
//! clause := var | '(' var ( OR var )* ')'
//! var    := [A-Za-z0-9_:.+-]+
//! AND    := '&' | '&&' | 'AND' | 'and'
//! OR     := '|' | '||' | 'OR' | 'or'
//! ```
//!
//! Only CNF shapes are accepted — ORs must be parenthesized when mixed
//! with ANDs, which keeps the grammar unambiguous and mirrors the sketch
//! engine's actual capability (it cannot evaluate arbitrary nesting).

use crate::ast::CnfQuery;
use crate::error::CnfError;

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.text.len()
            && self.text.as_bytes()[self.pos].is_ascii_whitespace()
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.text.as_bytes().get(self.pos).copied()
    }

    fn error(&self, message: impl Into<String>) -> CnfError {
        CnfError::Parse { at: self.pos, message: message.into() }
    }

    fn ident(&mut self) -> Result<String, CnfError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .text
            .as_bytes()
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'.' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a set name"));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    /// Consume an operator token; returns true for AND, false for OR.
    fn operator(&mut self) -> Option<bool> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        for (tok, is_and) in
            [("&&", true), ("&", true), ("||", false), ("|", false)]
        {
            if rest.starts_with(tok) {
                self.pos += tok.len();
                return Some(is_and);
            }
        }
        for (tok, is_and) in [("AND", true), ("and", true), ("OR", false), ("or", false)] {
            if rest.starts_with(tok) {
                // Keyword must not glue onto an identifier.
                let after = rest.as_bytes().get(tok.len());
                let boundary = after
                    .is_none_or(|b| !(b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'.' | b'+' | b'-')));
                if boundary {
                    self.pos += tok.len();
                    return Some(is_and);
                }
            }
        }
        None
    }

    fn clause(&mut self) -> Result<Vec<String>, CnfError> {
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let mut vars = vec![self.ident()?];
            loop {
                match self.peek() {
                    Some(b')') => {
                        self.pos += 1;
                        return Ok(vars);
                    }
                    _ => match self.operator() {
                        Some(false) => vars.push(self.ident()?),
                        Some(true) => {
                            return Err(self.error("AND inside a clause; CNF needs ORs here"))
                        }
                        None => return Err(self.error("expected '|' or ')'")),
                    },
                }
            }
        } else {
            Ok(vec![self.ident()?])
        }
    }
}

/// Parse a CNF query string.
pub fn parse(text: &str) -> Result<CnfQuery, CnfError> {
    let mut cur = Cursor { text, pos: 0 };
    let mut clauses = vec![cur.clause()?];
    loop {
        if cur.peek().is_none() {
            break;
        }
        match cur.operator() {
            Some(true) => clauses.push(cur.clause()?),
            Some(false) => {
                return Err(cur.error("top-level OR; parenthesize OR-clauses in CNF"))
            }
            None => return Err(cur.error("expected '&' between clauses")),
        }
    }
    CnfQuery::new(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_variable() {
        let q = parse("alpha").unwrap();
        assert_eq!(q.clauses(), &[vec!["alpha".to_string()]]);
    }

    #[test]
    fn ands_of_ors() {
        let q = parse("(a | b) & c & (d || e)").unwrap();
        assert_eq!(q.clauses().len(), 3);
        assert_eq!(q.clauses()[0], vec!["a", "b"]);
        assert_eq!(q.clauses()[1], vec!["c"]);
        assert_eq!(q.clauses()[2], vec!["d", "e"]);
    }

    #[test]
    fn keyword_operators() {
        let q = parse("(a OR b) AND c and (d or e)").unwrap();
        assert_eq!(q.clauses().len(), 3);
    }

    #[test]
    fn identifier_charset() {
        let q = parse("(party:independent | view:favorable) & age:18-29").unwrap();
        assert_eq!(q.variables().len(), 3);
    }

    #[test]
    fn whitespace_insensitive() {
        assert_eq!(parse(" ( a|b )&c ").unwrap(), parse("(a | b) & c").unwrap());
    }

    #[test]
    fn rejects_non_cnf() {
        assert!(parse("a | b").is_err(), "top-level OR");
        assert!(parse("(a & b)").is_err(), "AND inside a clause");
        assert!(parse("").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a &").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("()").is_err());
    }

    #[test]
    fn keyword_must_break() {
        // "orange" is an identifier, not "or" + "ange"... it appears where
        // an operator is required, so parsing fails rather than
        // misinterpreting.
        assert!(parse("a orange b").is_err());
        // But a variable may *contain* keyword letters.
        let q = parse("oracle & android").unwrap();
        assert_eq!(q.variables(), vec!["oracle", "android"]);
    }
}
