//! Boolean CNF queries over HyperMinHash sketch catalogs.
//!
//! The paper's opening motivation: "we consider the design of approximate
//! streaming sketches to answer questions phrased in conjunctive normal
//! form (an AND of ORs); this is of course equivalent to estimating the
//! cardinality of intersections of unions of a collection of sets", with
//! "error rates bounded by the final result size" (§5).
//!
//! HyperMinHash makes this possible because (a) sketches union losslessly,
//! so each OR-clause collapses to a single sketch, and (b) the k-way
//! register-agreement rate estimates `|∩ clauses| / |∪ clauses|`, so the
//! AND costs one Jaccard-style pass — no inclusion–exclusion blow-up.
//!
//! * [`ast`] — the query representation and CNF validation.
//! * [`parser`] — a tiny recursive-descent parser:
//!   `(a | b) & c` / `(a OR b) AND c`.
//! * [`catalog`] — a named collection of compatible sketches.
//! * [`eval`] — evaluation: clause unions, k-way intersection estimate,
//!   optional inclusion–exclusion cross-check.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod catalog;
pub mod error;
pub mod eval;
pub mod parser;

pub use ast::CnfQuery;
pub use catalog::SketchCatalog;
pub use error::CnfError;
pub use eval::{evaluate, QueryAnswer};
pub use parser::parse;
