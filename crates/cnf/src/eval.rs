//! CNF query evaluation over a sketch catalog.
//!
//! Pipeline, per the paper's §5 pitch:
//!
//! 1. **OR-clauses → unions.** Each clause's sketches merge losslessly
//!    (Algorithm 2), producing one sketch per clause.
//! 2. **AND → k-way agreement.** The fraction of buckets on which all
//!    clause sketches agree estimates `|∩ clauses| / |∪ clauses|`;
//!    multiplied by the union cardinality (Algorithm 3 on the merged
//!    sketch) this gives the intersection count with error relative to the
//!    *result*, not the universe.
//!
//! For two clauses the pairwise collision-corrected Jaccard (Algorithm 4)
//! is used; for `k > 2` the uncorrected k-way rate (see
//! `hmh_core::intersect::jaccard_many`).
//!
//! [`evaluate`] also reports the inclusion–exclusion union bound to make
//! the error structure visible in examples and experiments.

use crate::ast::CnfQuery;
use crate::catalog::SketchCatalog;
use crate::error::CnfError;
use hmh_core::intersect;
use hmh_core::HyperMinHash;

/// The answer to a CNF query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Estimated cardinality of the query result (the AND of the clauses).
    pub count: f64,
    /// Estimated k-way Jaccard of the clauses (`1.0` for a single clause).
    pub jaccard: f64,
    /// Estimated cardinality of the union of all clauses.
    pub union: f64,
    /// Per-clause cardinality estimates, in query order.
    pub clause_counts: Vec<f64>,
}

/// Evaluate `query` against `catalog`.
pub fn evaluate(catalog: &SketchCatalog, query: &CnfQuery) -> Result<QueryAnswer, CnfError> {
    let clause_sketches: Vec<HyperMinHash> = query
        .clauses()
        .iter()
        .map(|clause| clause_union(catalog, clause))
        .collect::<Result<_, _>>()?;
    let clause_counts: Vec<f64> = clause_sketches.iter().map(HyperMinHash::cardinality).collect();

    match clause_sketches.as_slice() {
        [] => Err(CnfError::EmptyQuery),
        [single] => {
            let count = single.cardinality();
            Ok(QueryAnswer { count, jaccard: 1.0, union: count, clause_counts })
        }
        [a, b] => {
            let est = a.intersection(b)?;
            Ok(QueryAnswer {
                count: est.intersection,
                jaccard: est.jaccard,
                union: est.union,
                clause_counts,
            })
        }
        many => {
            let refs: Vec<&HyperMinHash> = many.iter().collect();
            let est = intersect::intersection_many(&refs)?;
            Ok(QueryAnswer {
                count: est.intersection,
                jaccard: est.jaccard,
                union: est.union,
                clause_counts,
            })
        }
    }
}

/// Parse-and-evaluate convenience.
pub fn query(catalog: &SketchCatalog, text: &str) -> Result<QueryAnswer, CnfError> {
    evaluate(catalog, &crate::parser::parse(text)?)
}

/// Evaluate `query` by inclusion–exclusion over clause-union
/// cardinalities: `|∩ᵢ Cᵢ| = Σ_{∅≠S} (−1)^{|S|+1} |∪_{i∈S} Cᵢ|`.
///
/// This is the strategy available to *any* mergeable count-distinct
/// sketch (plain HyperLogLog included) and exists as the baseline the
/// paper criticizes: every term carries error relative to a **union**,
/// and the alternating sum "compounds when taking the intersections of
/// multiple sets" (§1.3). [`evaluate`]'s k-way register method keeps the
/// error relative to the result instead — the `cnf-ie` experiment
/// measures the gap.
///
/// Exponential in the clause count; refused beyond 12 clauses.
pub fn evaluate_inclusion_exclusion(
    catalog: &SketchCatalog,
    query: &CnfQuery,
) -> Result<f64, CnfError> {
    let clause_sketches: Vec<HyperMinHash> = query
        .clauses()
        .iter()
        .map(|clause| clause_union(catalog, clause))
        .collect::<Result<_, _>>()?;
    let k = clause_sketches.len();
    if k > 12 {
        return Err(CnfError::Parse {
            at: 0,
            message: format!("inclusion–exclusion over {k} clauses needs 2^{k} terms; refusing"),
        });
    }
    let mut total = 0.0f64;
    for mask in 1u32..(1 << k) {
        let mut union: Option<HyperMinHash> = None;
        for (i, sketch) in clause_sketches.iter().enumerate() {
            if mask & (1 << i) != 0 {
                union = Some(match union {
                    None => sketch.clone(),
                    Some(mut acc) => {
                        acc.merge(sketch)?;
                        acc
                    }
                });
            }
        }
        let card =
            union.expect("invariant: mask non-empty, so at least one sketch merged").cardinality();
        if mask.count_ones() % 2 == 1 {
            total += card;
        } else {
            total -= card;
        }
    }
    Ok(total.max(0.0))
}

fn clause_union(catalog: &SketchCatalog, clause: &[String]) -> Result<HyperMinHash, CnfError> {
    let [first, rest @ ..] = clause else {
        return Err(CnfError::EmptyQuery);
    };
    let mut acc = catalog.get(first)?.clone();
    for name in rest {
        acc.merge(catalog.get(name)?)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmh_core::HmhParams;

    /// Catalog with three overlapping ranges:
    /// a = [0, 30k), b = [10k, 40k), c = [20k, 50k).
    fn catalog() -> SketchCatalog {
        let mut cat = SketchCatalog::new(HmhParams::new(11, 6, 10).unwrap());
        cat.insert_all("a", 0..30_000u64);
        cat.insert_all("b", 10_000..40_000u64);
        cat.insert_all("c", 20_000..50_000u64);
        cat
    }

    #[test]
    fn single_variable_is_cardinality() {
        let cat = catalog();
        let ans = query(&cat, "a").unwrap();
        assert!((ans.count / 30_000.0 - 1.0).abs() < 0.05, "{ans:?}");
        assert_eq!(ans.jaccard, 1.0);
    }

    #[test]
    fn single_clause_union() {
        let cat = catalog();
        let ans = query(&cat, "(a | c)").unwrap();
        // |a ∪ c| = 30k + 30k − 10k = 50k.
        assert!((ans.count / 50_000.0 - 1.0).abs() < 0.05, "{ans:?}");
    }

    #[test]
    fn pairwise_and() {
        let cat = catalog();
        let ans = query(&cat, "a & b").unwrap();
        // |a ∩ b| = 20k.
        assert!((ans.count / 20_000.0 - 1.0).abs() < 0.12, "{ans:?}");
        assert_eq!(ans.clause_counts.len(), 2);
    }

    #[test]
    fn intersection_of_unions() {
        let cat = catalog();
        // (a ∪ b) ∩ c = [20k, 40k) → 20k; union of clauses = 50k.
        let ans = query(&cat, "(a | b) & c").unwrap();
        assert!((ans.count / 20_000.0 - 1.0).abs() < 0.15, "{ans:?}");
        assert!((ans.union / 50_000.0 - 1.0).abs() < 0.05, "{ans:?}");
    }

    #[test]
    fn three_way_and() {
        let cat = catalog();
        // a ∩ b ∩ c = [20k, 30k) → 10k.
        let ans = query(&cat, "a & b & c").unwrap();
        assert!((ans.count / 10_000.0 - 1.0).abs() < 0.2, "{ans:?}");
    }

    #[test]
    fn inclusion_exclusion_agrees_on_easy_queries() {
        // Large intersections: IE and the k-way method should both land.
        let cat = catalog();
        let query = crate::parser::parse("a & b").unwrap();
        let ie = evaluate_inclusion_exclusion(&cat, &query).unwrap();
        assert!((ie / 20_000.0 - 1.0).abs() < 0.2, "IE estimate {ie}");
        let kway = evaluate(&cat, &query).unwrap().count;
        assert!((ie - kway).abs() / kway < 0.3, "ie {ie} vs kway {kway}");
    }

    #[test]
    fn inclusion_exclusion_degrades_on_small_intersections() {
        // Small result relative to the unions: the k-way method must beat
        // IE on average — the §1.3 claim, at the CNF level.
        use hmh_hash::RandomOracle;
        let (mut ie_err, mut kway_err) = (0.0f64, 0.0f64);
        let trials = 8u64;
        let truth = 2_000.0;
        for t in 0..trials {
            let params = HmhParams::new(11, 6, 10).unwrap();
            // a = [0, 100k), b = [98k, 198k): overlap 2k, unions 100k.
            let oracle = RandomOracle::with_seed(40 + t);
            let mut cat = SketchCatalog::with_oracle(params, oracle);
            let mut a = HyperMinHash::with_oracle(params, oracle);
            let mut b = HyperMinHash::with_oracle(params, oracle);
            for i in 0..100_000u64 {
                a.insert(&i);
                b.insert(&(i + 98_000));
            }
            cat.adopt("a", a).unwrap();
            cat.adopt("b", b).unwrap();
            let query = crate::parser::parse("a & b").unwrap();
            ie_err += (evaluate_inclusion_exclusion(&cat, &query).unwrap() / truth - 1.0).abs();
            kway_err += (evaluate(&cat, &query).unwrap().count / truth - 1.0).abs();
        }
        assert!(
            kway_err < ie_err,
            "k-way ({kway_err}) should beat IE ({ie_err}) at J ≈ 0.01"
        );
    }

    #[test]
    fn inclusion_exclusion_refuses_huge_queries() {
        let cat = catalog();
        let clauses: Vec<Vec<String>> = (0..13).map(|_| vec!["a".to_string()]).collect();
        let query = CnfQuery::new(clauses).unwrap();
        assert!(evaluate_inclusion_exclusion(&cat, &query).is_err());
    }

    #[test]
    fn unknown_set_reports_name() {
        let cat = catalog();
        assert_eq!(
            query(&cat, "a & nope").unwrap_err(),
            CnfError::UnknownSet { name: "nope".into() }
        );
    }

    #[test]
    fn survey_scenario_end_to_end() {
        // The intro's motivating question, end to end on synthetic data.
        use hmh_workloads::survey::Survey;
        let survey = Survey::generate(200_000, 11);
        let mut cat = SketchCatalog::new(HmhParams::new(12, 6, 10).unwrap());
        for (key, ids) in &survey.groups {
            cat.insert_all(key, ids.iter().copied());
        }
        let ans = query(&cat, "party:independent & view:favorable").unwrap();
        let truth = survey.exact_and(&["party:independent", "view:favorable"]) as f64;
        assert!(
            (ans.count / truth - 1.0).abs() < 0.25,
            "estimate {} vs truth {truth}",
            ans.count
        );
    }
}
