//! Error type for CNF parsing and evaluation.

/// Errors from parsing or evaluating a CNF query.
#[derive(Debug, Clone, PartialEq)]
pub enum CnfError {
    /// The query string failed to parse.
    Parse {
        /// Byte offset of the failure.
        at: usize,
        /// What went wrong.
        message: String,
    },
    /// A variable references a sketch the catalog does not have.
    UnknownSet {
        /// The missing name.
        name: String,
    },
    /// The query has no clauses (or a clause has no variables).
    EmptyQuery,
    /// A sketch operation failed (incompatible parameters/oracles).
    Sketch(hmh_core::HmhError),
}

impl std::fmt::Display for CnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse { at, message } => write!(f, "parse error at byte {at}: {message}"),
            Self::UnknownSet { name } => write!(f, "unknown set '{name}'"),
            Self::EmptyQuery => write!(f, "empty query"),
            Self::Sketch(e) => write!(f, "sketch error: {e}"),
        }
    }
}

impl std::error::Error for CnfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Sketch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hmh_core::HmhError> for CnfError {
    fn from(e: hmh_core::HmhError) -> Self {
        Self::Sketch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CnfError::EmptyQuery.to_string().contains("empty"));
        assert!(CnfError::UnknownSet { name: "x".into() }.to_string().contains("'x'"));
        let p = CnfError::Parse { at: 3, message: "expected ')'".into() };
        assert!(p.to_string().contains("byte 3"));
    }
}
