//! Cardinality estimation: Algorithm 3.
//!
//! Two regimes:
//!
//! 1. **HLL head** — "the left parts of the buckets can be passed directly
//!    into a HyperLogLog estimator": the LogLog counters form an ordinary
//!    HLL register vector, estimated with any of `hmh-hll`'s estimators.
//! 2. **KMV tail** — once the head estimate exceeds `1024·2^p` the LogLog
//!    counters approach saturation, so Algorithm 3 switches to the
//!    order-statistics estimator over the *full* registers:
//!    `r_i = 2^{-counter}·(1 + mantissa/2^r)` reconstructs each bucket's
//!    minimum to `r`-bit precision and `|S|²/Σ rᵢ` recovers `n` ("we can
//!    also use other k-minimum value count-distinct cardinality estimators,
//!    which we empirically found useful for large cardinalities").
//!
//! Deviation from the naive pseudocode, documented in DESIGN.md: for a
//! *saturated* counter the stored mantissa sits at the fixed positions
//! `cap…cap+r−1` of the bitstring (Lemma 4's `i = 2^q` row), so the
//! reconstruction there is `r_i = 2^{-(cap−1)}·(mantissa + ½)/2^r` rather
//! than the uncapped formula; using the uncapped formula for saturated
//! registers would overestimate those minima by up to `2^r×`.

use crate::params::HmhParams;
use crate::sketch::HyperMinHash;
use hmh_hll::estimators::{estimate as hll_estimate, EstimatorKind};
use hmh_math::KahanSum;

/// Configuration for Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardinalityEstimator {
    /// Which HLL estimator the head uses. Default: Ertl improved.
    pub hll_estimator: EstimatorKind,
    /// Head→tail switch threshold as a multiple of the bucket count
    /// (the pseudocode's `1024·|S|`).
    pub tail_threshold_factor: f64,
}

impl Default for CardinalityEstimator {
    fn default() -> Self {
        Self { hll_estimator: EstimatorKind::ErtlImproved, tail_threshold_factor: 1024.0 }
    }
}

impl CardinalityEstimator {
    /// The classic pseudocode configuration (FFGM07 head, 1024·m switch).
    pub fn pseudocode() -> Self {
        Self { hll_estimator: EstimatorKind::Ffgm, tail_threshold_factor: 1024.0 }
    }

    /// Full Algorithm 3.
    pub fn estimate(&self, sketch: &HyperMinHash) -> f64 {
        let head = self.head_estimate(sketch);
        let threshold = self.tail_threshold_factor * sketch.params().num_buckets() as f64;
        if head < threshold {
            head
        } else {
            tail_estimate(sketch)
        }
    }

    /// The HLL head estimate alone.
    pub fn head_estimate(&self, sketch: &HyperMinHash) -> f64 {
        hll_estimate(&sketch.counter_histogram(), self.hll_estimator)
    }
}

/// The KMV tail estimate alone: `m² / Σ rᵢ` over the reconstructed bucket
/// minima (∞ when every register is exactly zero — unreachable in
/// practice, matching the pseudocode's `return ∞`).
pub fn tail_estimate(sketch: &HyperMinHash) -> f64 {
    let params = sketch.params();
    let m = params.num_buckets() as f64;
    let mut sum = KahanSum::new();
    for bucket in 0..params.num_buckets() {
        sum.add(reconstruct_min(params, sketch.register(bucket)));
    }
    let total = sum.total();
    if total == 0.0 {
        f64::INFINITY
    } else {
        m * m / total
    }
}

/// Reconstruct a bucket's (within-bucket) minimum from its register, to
/// mantissa precision. Empty buckets reconstruct as 1.0 — the pseudocode's
/// `(0,0) → 2^0·(1+0) = 1` behaviour, harmless in the tail regime where
/// empties have vanishing probability.
fn reconstruct_min(params: HmhParams, register: Option<(u32, u32)>) -> f64 {
    let Some((counter, mantissa)) = register else {
        return 1.0;
    };
    let r_values = params.mantissa_values() as f64;
    if counter < params.cap() {
        2f64.powi(-(counter as i32)) * (1.0 + (f64::from(mantissa) + 0.5) / r_values)
    } else {
        2f64.powi(-(params.cap() as i32 - 1)) * (f64::from(mantissa) + 0.5) / r_values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_tracks_small_and_medium_cardinalities() {
        let params = HmhParams::new(10, 6, 10).unwrap();
        let est = CardinalityEstimator::default();
        for &n in &[100u64, 5_000, 100_000] {
            let sketch = HyperMinHash::from_items(params, 0..n);
            let e = est.estimate(&sketch);
            assert!(
                ((e - n as f64) / n as f64).abs() < 0.1,
                "n={n}: estimate {e}"
            );
        }
    }

    #[test]
    fn tail_takes_over_at_large_cardinality() {
        // p=4 → threshold 1024·16 = 16384; insert 10^6.
        let params = HmhParams::new(4, 6, 12).unwrap();
        let est = CardinalityEstimator::default();
        let n = 1_000_000u64;
        let sketch = HyperMinHash::from_items(params, 0..n);
        let head = est.head_estimate(&sketch);
        assert!(head > 1024.0 * 16.0, "head {head} should exceed threshold");
        let e = est.estimate(&sketch);
        // 16 buckets → ~25% relative error expected; check the right
        // regime, not tight accuracy.
        assert!(
            ((e - n as f64) / n as f64).abs() < 0.8,
            "tail estimate {e}"
        );
    }

    #[test]
    fn tail_estimate_via_simulated_registers_is_calibrated() {
        // Feed registers whose minima are exactly Beta(1, k)-distributed
        // (via observe) so the tail estimator is tested in isolation with
        // many buckets.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let params = HmhParams::new(10, 6, 12).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 1e9;
        let per_bucket = n / 1024.0;
        let mut sketch = HyperMinHash::new(params);
        for bucket in 0..1024usize {
            let u: f64 = rng.gen();
            let v = -((-u).ln_1p() / per_bucket).exp_m1(); // min of k uniforms
            // Encode v to (counter, mantissa) like rho_sigma does.
            let counter = ((-v.log2()).floor() as u32 + 1).min(params.cap());
            let mantissa = if counter < params.cap() {
                ((v * 2f64.powi(counter as i32) - 1.0) * params.mantissa_values() as f64) as u32
            } else {
                (v * 2f64.powi(params.cap() as i32 - 1) * params.mantissa_values() as f64) as u32
            };
            sketch.observe(bucket, counter, mantissa.min(params.mantissa_values() as u32 - 1));
        }
        let e = tail_estimate(&sketch);
        assert!((e / n - 1.0).abs() < 0.15, "estimate {e} vs {n}");
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let sketch = HyperMinHash::new(HmhParams::figure6());
        assert_eq!(sketch.cardinality(), 0.0);
    }

    #[test]
    fn union_cardinality_is_consistent() {
        let params = HmhParams::new(10, 6, 10).unwrap();
        let a = HyperMinHash::from_items(params, 0..30_000u64);
        let b = HyperMinHash::from_items(params, 15_000..45_000u64);
        let u = a.union(&b).unwrap();
        let e = u.cardinality();
        assert!((e / 45_000.0 - 1.0).abs() < 0.1, "union estimate {e}");
    }

    #[test]
    fn pseudocode_configuration_works() {
        let params = HmhParams::new(8, 6, 10).unwrap();
        let sketch = HyperMinHash::from_items(params, 0..10_000u64);
        let e = CardinalityEstimator::pseudocode().estimate(&sketch);
        assert!((e / 10_000.0 - 1.0).abs() < 0.15, "estimate {e}");
    }

    #[test]
    fn reconstruct_min_matches_encoding() {
        // Encode a known value, reconstruct, compare.
        let params = HmhParams::new(0, 5, 8).unwrap();
        let digest = hmh_hash::Digest128::from_u128(0b0001_1011_0110_1010u128 << 112);
        let (c, s) = digest.rho_sigma(0, params.cap(), params.r());
        let v_true = 0b0001_1011_0110_1010 as f64 / 65536.0;
        let v_rec = reconstruct_min(params, Some((c, s as u32)));
        assert!(
            (v_rec - v_true).abs() / v_true < 2f64.powi(-(params.r() as i32)) * 1.5,
            "true {v_true}, reconstructed {v_rec}"
        );
    }
}
