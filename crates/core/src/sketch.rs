//! The HyperMinHash sketch: construction (Algorithm 1), streaming inserts,
//! and lossless unions (Algorithm 2).

use crate::error::HmhError;
use crate::params::HmhParams;
use crate::registers::{self, Word};
use hmh_hash::{HashableItem, RandomOracle};
use hmh_hll::registers::BitPacked;

/// A HyperMinHash sketch.
///
/// `2^p` buckets, each a packed `(q-bit counter, r-bit mantissa)` word
/// holding the adaptive-precision encoding of the minimum hash that fell
/// into the bucket. Supports streaming [`insert`](Self::insert)s and
/// lossless [`union`](Self::union)s; Jaccard, cardinality and intersection
/// queries live in the sibling modules and are exposed as methods here.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HyperMinHash {
    params: HmhParams,
    oracle: RandomOracle,
    words: BitPacked,
}

impl HyperMinHash {
    /// New empty sketch with the default (shared) oracle.
    pub fn new(params: HmhParams) -> Self {
        Self::with_oracle(params, RandomOracle::default())
    }

    /// New empty sketch with an explicit oracle.
    pub fn with_oracle(params: HmhParams, oracle: RandomOracle) -> Self {
        Self {
            params,
            oracle,
            words: BitPacked::new(params.word_bits(), params.num_buckets()),
        }
    }

    /// Build a sketch from an iterator of items.
    pub fn from_items<T: HashableItem, I: IntoIterator<Item = T>>(
        params: HmhParams,
        items: I,
    ) -> Self {
        let mut s = Self::new(params);
        for item in items {
            s.insert(&item);
        }
        s
    }

    /// The sketch parameters.
    pub fn params(&self) -> HmhParams {
        self.params
    }

    /// The random oracle.
    pub fn oracle(&self) -> RandomOracle {
        self.oracle
    }

    /// Sketch size in bytes (packed register words).
    pub fn byte_size(&self) -> usize {
        self.params.byte_size()
    }

    /// Insert one item (Algorithm 1's loop body): hash, partition by the
    /// top `p` bits, and keep the register encoding the smaller minimum.
    pub fn insert<T: HashableItem + ?Sized>(&mut self, item: &T) {
        let digest = self.oracle.digest(item);
        let bucket = digest.take_bits(0, self.params.p()) as usize;
        let (counter, mantissa) = digest.rho_sigma(self.params.p(), self.params.cap(), self.params.r());
        self.observe(bucket, counter, mantissa as u32);
    }

    /// Insert a batch of items (the bulk-ingest fast path).
    ///
    /// Hoists the parameter loads (`p`, `cap`, `r`) and the oracle out of
    /// the per-item loop so the hot path is hash → slice → observe with no
    /// repeated struct reads. Bit-for-bit equivalent to calling
    /// [`insert`](Self::insert) on each item in order — register updates
    /// commute (max is associative and commutative), so batching can never
    /// change the resulting sketch.
    pub fn insert_batch<T: HashableItem>(&mut self, items: &[T]) {
        let oracle = self.oracle;
        let p = self.params.p();
        let cap = self.params.cap();
        let r = self.params.r();
        for item in items {
            let digest = oracle.digest(item);
            let bucket = digest.take_bits(0, p) as usize;
            let (counter, mantissa) = digest.rho_sigma(p, cap, r);
            self.observe(bucket, counter, mantissa as u32);
        }
    }

    /// Record a register observation directly (used by the simulator and
    /// by deserialization-free bulk loads).
    ///
    /// # Panics
    /// If `bucket`, `counter` or `mantissa` are out of range.
    #[inline]
    pub fn observe(&mut self, bucket: usize, counter: u32, mantissa: u32) {
        let candidate = registers::pack(self.params, counter, mantissa);
        let incumbent = self.words.get(bucket);
        if registers::beats(self.params, candidate, incumbent) {
            self.words.set(bucket, candidate);
        }
    }

    /// Raw packed register storage (for the binary wire format).
    pub(crate) fn packed(&self) -> &BitPacked {
        &self.words
    }

    /// Rebuild from decoded parts (wire-format decode path).
    pub(crate) fn from_packed(params: HmhParams, oracle: RandomOracle, words: BitPacked) -> Self {
        debug_assert_eq!(words.len(), params.num_buckets());
        debug_assert_eq!(words.width(), params.word_bits());
        Self { params, oracle, words }
    }

    /// The packed word of `bucket` (0 = empty).
    pub fn word(&self, bucket: usize) -> Word {
        self.words.get(bucket)
    }

    /// The `(counter, mantissa)` register of `bucket`, or `None` if empty.
    pub fn register(&self, bucket: usize) -> Option<(u32, u32)> {
        let w = self.words.get(bucket);
        (w != 0).then(|| registers::unpack(self.params, w))
    }

    /// Number of non-empty buckets.
    pub fn occupied(&self) -> usize {
        self.words.iter().filter(|&w| w != 0).count()
    }

    /// True iff no bucket is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied() == 0
    }

    /// Iterate over packed words, bucket order.
    pub fn words(&self) -> impl Iterator<Item = Word> + '_ {
        self.words.iter()
    }

    /// Histogram of LogLog counters (`cap + 1` entries) — the input of
    /// Algorithm 3's HLL head.
    pub fn counter_histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.params.cap() as usize + 1];
        for w in self.words.iter() {
            hist[(w >> self.params.r()) as usize] += 1;
        }
        hist
    }

    /// Lossless union (Algorithm 2): bucket-wise best register. The result
    /// is exactly the sketch of `A ∪ B`.
    pub fn union(&self, other: &Self) -> Result<Self, HmhError> {
        let mut out = self.clone();
        out.merge(other)?;
        Ok(out)
    }

    /// In-place union.
    pub fn merge(&mut self, other: &Self) -> Result<(), HmhError> {
        self.check_compatible(other)?;
        for bucket in 0..self.params.num_buckets() {
            let candidate = other.words.get(bucket);
            if registers::beats(self.params, candidate, self.words.get(bucket)) {
                self.words.set(bucket, candidate);
            }
        }
        Ok(())
    }

    /// Losslessly reduce the mantissa width to `new_r ≤ r`, producing the
    /// *exact* sketch that direct construction with `(p, q, new_r)` would
    /// have produced on the same items.
    ///
    /// Why this is exact: registers order by `(counter desc, mantissa
    /// asc)` and the mantissa is a binary prefix of the sub-bucket
    /// position (both in the after-the-leading-one case and in the
    /// fixed-window saturated case), so truncating the winner's mantissa
    /// equals the winner under truncated mantissas — different tie-breaks
    /// can pick a different *element*, but never a different truncated
    /// register value. (The converse, widening `r`, is impossible: the
    /// dropped bits are gone. So is changing `p` or `q`.)
    ///
    /// This lets fleets with mixed precisions interoperate: reduce both
    /// sides to the common `r`, then merge/compare as usual.
    pub fn reduce_r(&self, new_r: u32) -> Result<Self, HmhError> {
        if new_r > self.params.r() {
            return Err(HmhError::InvalidParams {
                reason: format!("cannot widen r from {} to {new_r}", self.params.r()),
            });
        }
        let params = HmhParams::new(self.params.p(), self.params.q(), new_r)?;
        let shift = self.params.r() - new_r;
        let mut out = Self::with_oracle(params, self.oracle);
        for bucket in 0..self.params.num_buckets() {
            if let Some((counter, mantissa)) = self.register(bucket) {
                out.observe(bucket, counter, mantissa >> shift);
            }
        }
        Ok(out)
    }

    /// Verify two sketches can be combined (same parameters and oracle).
    pub fn check_compatible(&self, other: &Self) -> Result<(), HmhError> {
        if self.params != other.params {
            return Err(HmhError::ParameterMismatch {
                left: self.params,
                right: other.params,
            });
        }
        if self.oracle != other.oracle {
            return Err(HmhError::OracleMismatch);
        }
        Ok(())
    }

    /// Cardinality estimate (Algorithm 3) with default settings.
    pub fn cardinality(&self) -> f64 {
        crate::cardinality::CardinalityEstimator::default().estimate(self)
    }

    /// Jaccard estimate (Algorithm 4) with the default collision
    /// correction (the fast approximation, Algorithm 6).
    pub fn jaccard(&self, other: &Self) -> Result<crate::jaccard::JaccardEstimate, HmhError> {
        crate::jaccard::jaccard(self, other, crate::jaccard::CollisionCorrection::Approx)
    }

    /// Intersection cardinality estimate `t̂ · |A ∪ B|̂`.
    pub fn intersection(&self, other: &Self) -> Result<crate::IntersectionEstimate, HmhError> {
        crate::intersect::intersection(self, other)
    }
}

impl<T: HashableItem> Extend<T> for HyperMinHash {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.insert(&item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HmhParams {
        HmhParams::new(6, 4, 6).unwrap()
    }

    fn sketch_range(lo: u64, hi: u64, p: HmhParams) -> HyperMinHash {
        HyperMinHash::from_items(p, lo..hi)
    }

    #[test]
    fn insert_is_order_invariant() {
        let p = params();
        let forward = HyperMinHash::from_items(p, 0..1000u64);
        let mut backward = HyperMinHash::new(p);
        for i in (0..1000u64).rev() {
            backward.insert(&i);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn insert_is_idempotent() {
        let p = params();
        let once = sketch_range(0, 500, p);
        let mut thrice = HyperMinHash::new(p);
        for _ in 0..3 {
            for i in 0..500u64 {
                thrice.insert(&i);
            }
        }
        assert_eq!(once, thrice);
    }

    #[test]
    fn union_equals_direct_sketch_of_union() {
        let p = params();
        let a = sketch_range(0, 800, p);
        let b = sketch_range(400, 1200, p);
        let direct = sketch_range(0, 1200, p);
        assert_eq!(a.union(&b).unwrap(), direct);
    }

    #[test]
    fn union_is_commutative_associative_idempotent() {
        let p = params();
        let a = sketch_range(0, 300, p);
        let b = sketch_range(200, 500, p);
        let c = sketch_range(450, 700, p);
        assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        assert_eq!(
            a.union(&b).unwrap().union(&c).unwrap(),
            a.union(&b.union(&c).unwrap()).unwrap()
        );
        assert_eq!(a.union(&a).unwrap(), a);
        // Empty is the identity.
        let empty = HyperMinHash::new(p);
        assert_eq!(a.union(&empty).unwrap(), a);
    }

    #[test]
    fn insert_batch_matches_insert_loop() {
        let p = params();
        let items: Vec<u64> = (0..500).map(|i| i * 7 + 13).collect();
        let mut batched = HyperMinHash::new(p);
        batched.insert_batch(&items);
        let mut looped = HyperMinHash::new(p);
        for item in &items {
            looped.insert(item);
        }
        assert_eq!(batched, looped);
        // Empty batch is a no-op.
        let before = batched.clone();
        batched.insert_batch(&[] as &[u64]);
        assert_eq!(batched, before);
    }

    #[test]
    fn registers_match_manual_digest_decomposition() {
        let p = params();
        let mut s = HyperMinHash::new(p);
        s.insert(&42u64);
        let digest = s.oracle().digest(&42u64);
        let bucket = digest.take_bits(0, p.p()) as usize;
        let (counter, mantissa) = digest.rho_sigma(p.p(), p.cap(), p.r());
        assert_eq!(s.register(bucket), Some((counter, mantissa as u32)));
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn observe_keeps_the_better_register() {
        let p = params();
        let mut s = HyperMinHash::new(p);
        s.observe(3, 2, 40);
        s.observe(3, 5, 60); // larger counter wins
        assert_eq!(s.register(3), Some((5, 60)));
        s.observe(3, 5, 10); // same counter, smaller mantissa wins
        assert_eq!(s.register(3), Some((5, 10)));
        s.observe(3, 5, 20); // worse mantissa loses
        assert_eq!(s.register(3), Some((5, 10)));
        s.observe(3, 4, 0); // smaller counter loses
        assert_eq!(s.register(3), Some((5, 10)));
    }

    #[test]
    fn counter_histogram_totals() {
        let p = params();
        let s = sketch_range(0, 10_000, p);
        let hist = s.counter_histogram();
        assert_eq!(hist.iter().sum::<u64>(), 64);
        assert_eq!(hist.len(), 16);
        // At n = 10k over 64 buckets, every bucket should be occupied.
        assert_eq!(hist[0], 0);
    }

    #[test]
    fn incompatible_sketches_refuse_to_merge() {
        let a = HyperMinHash::new(HmhParams::new(6, 4, 6).unwrap());
        let b = HyperMinHash::new(HmhParams::new(7, 4, 6).unwrap());
        assert!(matches!(a.union(&b), Err(HmhError::ParameterMismatch { .. })));
        let c = HyperMinHash::with_oracle(a.params(), RandomOracle::with_seed(9));
        assert!(matches!(a.union(&c), Err(HmhError::OracleMismatch)));
    }

    #[test]
    fn extend_matches_insert() {
        let p = params();
        let mut a = HyperMinHash::new(p);
        a.extend(0..100u64);
        let b = sketch_range(0, 100, p);
        assert_eq!(a, b);
    }

    #[test]
    fn reduce_r_equals_direct_construction() {
        // The exactness claim: reducing r must reproduce the narrow sketch
        // bit for bit, across the full item stream.
        let wide = HmhParams::new(7, 5, 12).unwrap();
        let sketch = HyperMinHash::from_items(wide, 0..20_000u64);
        for new_r in [12u32, 10, 6, 3, 1] {
            let narrow_params = HmhParams::new(7, 5, new_r).unwrap();
            let direct = HyperMinHash::from_items(narrow_params, 0..20_000u64);
            let reduced = sketch.reduce_r(new_r).unwrap();
            assert_eq!(reduced, direct, "r → {new_r}");
        }
    }

    #[test]
    fn reduce_r_enables_cross_width_merging() {
        let coarse = HmhParams::new(6, 4, 4).unwrap();
        let fine = HmhParams::new(6, 4, 8).unwrap();
        let a = HyperMinHash::from_items(fine, 0..1000u64);
        let b = HyperMinHash::from_items(coarse, 500..1500u64);
        let merged = a.reduce_r(4).unwrap().union(&b).unwrap();
        assert_eq!(merged, HyperMinHash::from_items(coarse, 0..1500u64));
    }

    #[test]
    fn reduce_r_rejects_widening() {
        let s = HyperMinHash::new(HmhParams::new(6, 4, 4).unwrap());
        assert!(matches!(s.reduce_r(8), Err(HmhError::InvalidParams { .. })));
    }

    #[test]
    fn figure6_size_claims() {
        assert_eq!(HyperMinHash::new(HmhParams::figure6()).byte_size(), 256);
        assert_eq!(HyperMinHash::new(HmhParams::headline()).byte_size(), 65536);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trip_preserves_everything() {
        let s = sketch_range(0, 2_000, HmhParams::figure6());
        let json = serde_json::to_string(&s).unwrap();
        let back: HyperMinHash = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // And the restored sketch keeps merging correctly.
        let t = sketch_range(1_000, 3_000, HmhParams::figure6());
        assert_eq!(s.union(&t).unwrap(), back.union(&t).unwrap());
    }
}
