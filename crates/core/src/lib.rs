//! # hmh-core — the HyperMinHash sketch
//!
//! Implements the primary contribution of *HyperMinHash: MinHash in LogLog
//! space* (Yu & Weber, ICDE 2023): a streaming probabilistic sketch that
//! estimates Jaccard index, union cardinality and intersection cardinality
//! in `O(ε⁻²(log log n + log 1/(tε)))` space.
//!
//! HyperMinHash is k-partition MinHash with adaptive-precision registers:
//! each of the `2^p` buckets stores, for the minimum hash in the bucket, a
//! `q`-bit LogLog counter (the position of the leading 1 bit, saturated)
//! and the `r` bits that follow it. Equal registers then mean "same
//! minimum" up to an accidental-collision probability of roughly `2^-r`,
//! which Lemma 4 / Theorem 1 quantify exactly and [`collisions`] corrects
//! for.
//!
//! Module map (pseudocode → code):
//!
//! | Paper | Module |
//! |---|---|
//! | Definition 1 / Algorithm 1 (sketch) | [`params`], [`registers`], [`sketch`] |
//! | Algorithm 2 (union) | [`sketch::HyperMinHash::union`] |
//! | Algorithm 3 (cardinality) | [`cardinality`] |
//! | Algorithm 4 (Jaccard) | [`jaccard`] |
//! | Lemma 4 / Algorithm 5 (exact collisions) | [`collisions::exact`] |
//! | Algorithm 6 (approx collisions) | [`collisions::approx`] |
//! | Theorems 1–2 (bounds) | [`collisions::bounds`] |
//! | Intersection / k-way queries | [`intersect`] |
//!
//! ## Register-cap convention
//!
//! The paper's idealized counter stores `min(ρ, 2^q)` — `2^q + 1` states
//! plus "empty", one more than `q` bits hold. Like the practical
//! implementations the paper's appendix points to, we saturate at
//! `cap = 2^q − 1` so counter-plus-empty exactly fills `q` bits and the
//! whole register packs into a `q + r`-bit word (Appendix A.1,
//! optimization 1). Every formula in [`collisions`] is derived for this
//! packed semantics (replace `2^q` by `cap` in Lemma 4); the difference is
//! one extra halving step at the precision floor, i.e. a factor-≤2 change
//! in the *subdominant* `n/2^{p+2^q+r}` term of Theorem 1.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cardinality;
pub mod collisions;
pub mod error;
pub mod format;
pub mod intersect;
pub mod jaccard;
pub mod params;
pub mod registers;
pub mod sketch;
pub mod sparse;

pub use cardinality::CardinalityEstimator;
pub use error::HmhError;
pub use intersect::IntersectionEstimate;
pub use jaccard::{CollisionCorrection, JaccardEstimate};
pub use params::HmhParams;
pub use sketch::HyperMinHash;
pub use sparse::AdaptiveHyperMinHash;
