//! Error types for HyperMinHash operations.

use crate::params::HmhParams;

/// Errors from constructing or combining HyperMinHash sketches.
#[derive(Debug, Clone, PartialEq)]
pub enum HmhError {
    /// Parameters fail validation (see [`HmhParams::new`]).
    InvalidParams {
        /// Why validation failed.
        reason: String,
    },
    /// Two sketches have different `(p, q, r)` and cannot be combined.
    ParameterMismatch {
        /// Left operand parameters.
        left: HmhParams,
        /// Right operand parameters.
        right: HmhParams,
    },
    /// Two sketches were built with different random oracles.
    OracleMismatch,
    /// Algorithm 6 cannot approximate expected collisions at this
    /// cardinality ("cardinality too large for approximation").
    CardinalityTooLarge {
        /// The offending cardinality.
        n: f64,
        /// The validity ceiling `2^{p + cap − 1}`.
        limit: f64,
    },
}

impl std::fmt::Display for HmhError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidParams { reason } => write!(f, "invalid HyperMinHash parameters: {reason}"),
            Self::ParameterMismatch { left, right } => {
                write!(f, "HyperMinHash parameter mismatch: {left} vs {right}")
            }
            Self::OracleMismatch => write!(f, "HyperMinHash sketches use different random oracles"),
            Self::CardinalityTooLarge { n, limit } => write!(
                f,
                "cardinality {n:.3e} too large for the collision approximation (limit {limit:.3e})"
            ),
        }
    }
}

impl std::error::Error for HmhError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        // All variants are leaves today; the explicit impl keeps the
        // chain contract visible (and `FormatError`/`StoreError` above
        // this layer report `HmhError` itself as their source).
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = HmhError::InvalidParams { reason: "p too big".into() };
        assert!(e.to_string().contains("p too big"));
        let e = HmhError::CardinalityTooLarge { n: 1e30, limit: 1e26 };
        assert!(e.to_string().contains("1e30") || e.to_string().contains("1.000e30"));
    }
}
