//! Expected accidental collisions between HyperMinHash sketches of
//! *disjoint* sets — the quantity Lemma 4 computes, Algorithm 5 evaluates,
//! Algorithm 6 approximates and Theorems 1–2 bound.
//!
//! All formulas below use this crate's packed-register semantics: the
//! counter saturates at `cap = 2^q − 1` (see the crate docs), so every
//! occurrence of the paper's `2^q` is replaced by `cap`. The derivations
//! otherwise follow the paper line by line; the tests cross-check the three
//! implementations against each other and against brute-force simulation.

pub mod approx;
pub mod bounds;
pub mod exact;

pub use approx::approx_expected_collisions;
pub use bounds::{theorem1_bound, theorem2_variance_bound};
pub use exact::{expected_collisions, expected_collisions_bigfloat};
