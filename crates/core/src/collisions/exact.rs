//! Exact expected collisions: Lemma 4 / Algorithm 5.
//!
//! For disjoint sets of sizes `n` and `m`, a register value `(i, j)`
//! corresponds to the event that the bucket's minimum landed in the dyadic
//! interval `[s₁, s₂)` with
//!
//! * `s₁ = (2^r + j)/2^{r+i}`, `s₂ = (2^r + j + 1)/2^{r+i}` for `i < cap`,
//! * `s₁ = j/2^{r+i−1}`,     `s₂ = (j + 1)/2^{r+i−1}`     for `i = cap`,
//!
//! and with `2^p` buckets the boundaries scale by `2^{-p}` (Algorithm 5's
//! `b = s/2^p`). The expected number of colliding buckets is
//!
//! `EC = 2^p · Σᵢ Σⱼ [(1−b₁)ⁿ − (1−b₂)ⁿ]·[(1−b₁)ᵐ − (1−b₂)ᵐ]`.
//!
//! Two implementations:
//!
//! * [`expected_collisions`] — `f64` in log space via
//!   [`hmh_math::logspace::pow1m_diff`]; fast (`O(cap·2^r)` kernel calls)
//!   and accurate to ~1 ulp per term across the entire `(n, m)` range. This
//!   is the workhorse.
//! * [`expected_collisions_bigfloat`] — Algorithm 5 evaluated verbatim in
//!   arbitrary precision, "BigInts" as the paper prescribes. Slow; exists
//!   to certify the log-space version (see tests) and as the reference for
//!   EXPERIMENTS.md.

use crate::params::HmhParams;
use hmh_math::logspace::pow1m_diff;
use hmh_math::{BigFloat, KahanSum};

/// Interval boundaries `(s₁, s₂)` of register `(i, j)` *before* the `2^p`
/// bucket rescaling, as exact dyadics: returns `(numer₁, numer₂, log2_den)`
/// with `sₖ = numerₖ / 2^{log2_den}`.
fn interval(params: HmhParams, i: u32, j: u64) -> (u64, u64, u32) {
    let r = params.r();
    let cap = params.cap();
    debug_assert!((1..=cap).contains(&i));
    if i < cap {
        let base = params.mantissa_values();
        (base + j, base + j + 1, r + i)
    } else {
        (j, j + 1, r + cap - 1)
    }
}

/// Expected number of colliding buckets between sketches of two disjoint
/// sets of sizes `n` and `m` (Algorithm 5, log-space `f64`).
///
/// `n` and `m` may be astronomically large (they are probabilities'
/// exponents, not loop bounds); the computation is `O(cap · 2^r)`.
pub fn expected_collisions(params: HmhParams, n: f64, m: f64) -> f64 {
    debug_assert!(n >= 0.0 && m >= 0.0);
    if n == 0.0 || m == 0.0 {
        return 0.0;
    }
    let p_scale = params.p();
    let mut total = KahanSum::new();
    for i in 1..=params.cap() {
        for j in 0..params.mantissa_values() {
            let (n1, n2, log_den) = interval(params, i, j);
            let den = 2f64.powi((log_den + p_scale) as i32);
            let b1 = n1 as f64 / den;
            let b2 = (n2 as f64 / den).min(1.0);
            total.add(pow1m_diff(b1, b2, n) * pow1m_diff(b1, b2, m));
        }
    }
    total.total() * 2f64.powi(p_scale as i32)
}

/// Single-bucket collision probability `Eγ(n, m)` (Proposition 3 /
/// Lemma 4): [`expected_collisions`] of the `p = 0` sketch.
pub fn single_bucket_collision_probability(q: u32, r: u32, n: f64, m: f64) -> f64 {
    let params = HmhParams::new(0, q, r)
        .expect("invariant: documented precondition — caller's q, r satisfy HmhParams bounds");
    expected_collisions(params, n, m)
}

/// Expected collisions of the LogLog counters alone (`r = 0` in the
/// pseudocode — registers match when the minima merely agree in order of
/// magnitude, Figure 2). Used by Algorithm 6's small-cardinality branch.
pub fn expected_hll_collisions(p: u32, cap: u32, n: f64, m: f64) -> f64 {
    if n == 0.0 || m == 0.0 {
        return 0.0;
    }
    let mut total = KahanSum::new();
    for i in 1..=cap {
        // r = 0 collapses the inner sum to j = 0: the full LogLog box
        // [2^{-i}, 2^{-i+1}) for i < cap, [0, 2^{-cap+1}) at the cap.
        let (b1, b2) = if i < cap {
            (2f64.powi(-((i + p) as i32)), 2f64.powi(-((i + p) as i32 - 1)))
        } else {
            (0.0, 2f64.powi(-((cap + p) as i32 - 1)))
        };
        total.add(pow1m_diff(b1, b2, n) * pow1m_diff(b1, b2, m));
    }
    total.total() * 2f64.powi(p as i32)
}

/// Algorithm 5 evaluated verbatim in arbitrary-precision arithmetic with
/// `prec` mantissa bits (192 is ample; each term uses two `powi` chains of
/// ≤ 2·64 roundings).
///
/// `n`, `m` are exact integer cardinalities here, as in the pseudocode.
pub fn expected_collisions_bigfloat(params: HmhParams, n: u128, m: u128, prec: u64) -> f64 {
    if n == 0 || m == 0 {
        return 0.0;
    }
    let one = BigFloat::one();
    let mut total = BigFloat::zero();
    for i in 1..=params.cap() {
        for j in 0..params.mantissa_values() {
            let (n1, n2, log_den) = interval(params, i, j);
            let log_den = i64::from(log_den + params.p());
            let b1 = BigFloat::from_dyadic(n1, log_den);
            let b2 = BigFloat::from_dyadic(n2, log_den);
            // Pr_x = (1−b1)^n − (1−b2)^n  (paper writes the operands in the
            // other order with a sign slip; probabilities are positive).
            let one_b1 = one.sub(&b1);
            let one_b2 = one.sub(&b2);
            let pr_x = one_b1.powi_prec(n, prec).sub(&one_b2.powi_prec(n, prec));
            let pr_y = one_b1.powi_prec(m, prec).sub(&one_b2.powi_prec(m, prec));
            total = total.add(&pr_x.mul(&pr_y)).round_to(prec * 2);
        }
    }
    total.to_f64() * 2f64.powi(params.p() as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cardinalities_have_zero_collisions() {
        let p = HmhParams::figure6();
        assert_eq!(expected_collisions(p, 0.0, 100.0), 0.0);
        assert_eq!(expected_collisions(p, 100.0, 0.0), 0.0);
        assert_eq!(expected_collisions_bigfloat(p, 0, 7, 128), 0.0);
    }

    #[test]
    fn logspace_matches_bigfloat_reference() {
        // Small r so the big-float loop stays fast; spans the regimes the
        // paper flags as numerically dangerous (large n).
        let params = HmhParams::new(4, 4, 4).unwrap();
        for &(n, m) in &[(10u128, 10u128), (1000, 500), (1 << 20, 1 << 18), (1 << 40, 1 << 40)] {
            let fast = expected_collisions(params, n as f64, m as f64);
            let reference = expected_collisions_bigfloat(params, n, m, 192);
            assert!(
                ((fast - reference) / reference.max(1e-300)).abs() < 1e-10,
                "n={n} m={m}: fast {fast} vs reference {reference}"
            );
        }
    }

    #[test]
    fn single_bucket_probability_is_a_probability() {
        for &(n, m) in &[(1.0, 1.0), (100.0, 100.0), (1e6, 1e4), (1e18, 1e18)] {
            let g = single_bucket_collision_probability(4, 6, n, m);
            assert!((0.0..=1.0).contains(&g), "γ({n},{m}) = {g}");
        }
    }

    #[test]
    fn collisions_grow_with_r_shrinking() {
        // Fewer mantissa bits → more collisions (the 1/2^r floor).
        let n = 1e6;
        let ec_r4 = expected_collisions(HmhParams::new(8, 6, 4).unwrap(), n, n);
        let ec_r8 = expected_collisions(HmhParams::new(8, 6, 8).unwrap(), n, n);
        let ec_r12 = expected_collisions(HmhParams::new(8, 6, 12).unwrap(), n, n);
        assert!(ec_r4 > ec_r8 * 8.0, "r=4: {ec_r4}, r=8: {ec_r8}");
        assert!(ec_r8 > ec_r12 * 8.0, "r=8: {ec_r8}, r=12: {ec_r12}");
        // Asymptotically ~16x per 4 bits of r.
        assert!(ec_r4 / ec_r8 < 32.0);
    }

    #[test]
    fn collisions_roughly_constant_across_cardinality_plateau() {
        // "The collision probabilities remain roughly constant as
        // cardinalities increase, at least until we reach the precision
        // limit of the LogLog counters" (§2).
        let params = HmhParams::new(8, 6, 10).unwrap();
        let ec: Vec<f64> = [1e4, 1e6, 1e9, 1e12]
            .iter()
            .map(|&n| expected_collisions(params, n, n))
            .collect();
        for w in ec.windows(2) {
            assert!(
                (w[1] / w[0]).abs() < 2.0 && (w[1] / w[0]) > 0.5,
                "plateau violated: {ec:?}"
            );
        }
    }

    #[test]
    fn collisions_blow_up_past_the_counter_range() {
        // Past n ≈ 2^{p + cap − 1} the bottom-left box dominates and
        // collisions climb (Figure 4's "final lower left bucket").
        let params = HmhParams::new(4, 3, 4).unwrap(); // cap = 7: range 2^10
        let inside = expected_collisions(params, 1e2, 1e2);
        let outside = expected_collisions(params, 1e9, 1e9);
        assert!(
            outside > inside * 5.0,
            "inside {inside}, outside {outside}"
        );
        // In the far regime every bucket collides.
        let saturated = expected_collisions(params, 1e15, 1e15);
        assert!(
            (saturated - params.num_buckets() as f64).abs() < 0.5,
            "saturated: {saturated}"
        );
    }

    #[test]
    fn asymmetric_cardinalities_collide_less() {
        // For n ≫ m the minima live at different scales; the paper's
        // Algorithm 6 models this with φ = 4(n/m)/(1+n/m)².
        let params = HmhParams::new(8, 6, 8).unwrap();
        let balanced = expected_collisions(params, 1e8, 1e8);
        let skewed = expected_collisions(params, 1e8, 1e4);
        assert!(skewed < balanced / 100.0, "balanced {balanced}, skewed {skewed}");
    }

    #[test]
    fn empirical_collisions_match_formula() {
        // Brute force: sketch disjoint sets, count equal non-empty buckets,
        // compare to the formula. This validates the entire register
        // pipeline end to end.
        use crate::sketch::HyperMinHash;
        use hmh_hash::RandomOracle;

        let params = HmhParams::new(6, 4, 4).unwrap(); // small r → many collisions
        let n = 3000u64;
        let trials = 60;
        let mut total = 0u64;
        for t in 0..trials {
            let oracle = RandomOracle::with_seed(1000 + t);
            let mut a = HyperMinHash::with_oracle(params, oracle);
            let mut b = HyperMinHash::with_oracle(params, oracle);
            for i in 0..n {
                a.insert(&i);
                b.insert(&(i + 10_000_000));
            }
            for bucket in 0..params.num_buckets() {
                let (wa, wb) = (a.word(bucket), b.word(bucket));
                if wa != 0 && wa == wb {
                    total += 1;
                }
            }
        }
        let empirical = total as f64 / trials as f64;
        let formula = expected_collisions(params, n as f64, n as f64);
        // 60 trials of a mean-~4 count: ~3.5σ window.
        let sd = (formula / trials as f64).sqrt() * 3.5 + 0.3;
        assert!(
            (empirical - formula).abs() < sd.max(0.5),
            "empirical {empirical} vs formula {formula}"
        );
    }
}
