//! Fast approximate expected collisions: Algorithm 6.
//!
//! The paper's numerically-stable approximation ("generally underestimates
//! collisions"):
//!
//! 1. `n ≤ 2^{p+5}` — exact HyperLogLog-level collisions (Algorithm 5 with
//!    `r = 0`) divided by `2^r`, assuming the joint density is near-uniform
//!    within each LogLog box.
//! 2. `2^{p+5} < n ≤ 2^{p+cap−1}` — the asymptotic plateau
//!    `0.169919… · 2^{p−r} · φ` with the skew factor
//!    `φ = 4(n/m) / (1 + n/m)²` from Lemma 7's `nm/((n+m)(n+m−1))`.
//! 3. beyond — the approximation is invalid and an error is returned
//!    (the paper: "cardinality too large for approximation"; for the
//!    practical `q = 6, p = 15` this needs `n > 2^{77} ≈ 10^{23}`).

use crate::error::HmhError;
use crate::params::HmhParams;

/// The paper's empirically-determined asymptotic collision constant:
/// `EC → 0.169919487159739093975315012348·2^{p−r}` as `n = m → ∞`.
pub const ASYMPTOTIC_COLLISION_CONSTANT: f64 = 0.169_919_487_159_739_1;

/// Algorithm 6: fast, numerically-stable approximation of the expected
/// collisions between sketches of disjoint sets of sizes `n`, `m`.
///
/// # Errors
/// [`HmhError::CardinalityTooLarge`] when `max(n, m) > 2^{p + cap − 1}` —
/// the point where per-bucket minima drop below the counters' precision
/// floor and collisions start climbing off the plateau. (The paper's
/// pseudocode guards at `2^{2^q+r}`, but its own appendix notes the
/// approximations actually fail "around n > 2^{2^q+p}"; we use the
/// tighter, correct ceiling, shifted for the packed-register cap.)
pub fn approx_expected_collisions(params: HmhParams, n: f64, m: f64) -> Result<f64, HmhError> {
    let (n, m) = if n >= m { (n, m) } else { (m, n) };
    if n <= 0.0 || m <= 0.0 {
        return Ok(0.0);
    }
    let limit = 2f64.powi((params.cap() - 1 + params.p()) as i32);
    if n > limit {
        return Err(HmhError::CardinalityTooLarge { n, limit });
    }
    let r_scale = 2f64.powi(-(params.r() as i32));
    if n > 2f64.powi(params.p() as i32 + 5) {
        let ratio = n / m;
        let phi = 4.0 * ratio / ((1.0 + ratio) * (1.0 + ratio));
        Ok(ASYMPTOTIC_COLLISION_CONSTANT * 2f64.powi(params.p() as i32) * r_scale * phi)
    } else {
        // HyperLogLog-box collisions (r = 0) spread across the 2^r
        // sub-boxes along each box's diagonal.
        let hll_collisions =
            super::exact::expected_hll_collisions(params.p(), params.cap(), n, m);
        Ok(hll_collisions * r_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collisions::exact::expected_collisions;

    #[test]
    fn zero_cardinality() {
        let p = HmhParams::figure6();
        assert_eq!(approx_expected_collisions(p, 0.0, 10.0).unwrap(), 0.0);
    }

    #[test]
    fn small_regime_tracks_exact() {
        let params = HmhParams::new(8, 6, 8).unwrap();
        for &n in &[100.0, 1000.0, 5000.0] {
            let approx = approx_expected_collisions(params, n, n).unwrap();
            let exact = expected_collisions(params, n, n);
            assert!(
                (approx / exact - 1.0).abs() < 0.35,
                "n={n}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn plateau_regime_tracks_exact() {
        let params = HmhParams::new(8, 6, 8).unwrap();
        for &n in &[1e6, 1e9, 1e12] {
            let approx = approx_expected_collisions(params, n, n).unwrap();
            let exact = expected_collisions(params, n, n);
            assert!(
                (approx / exact - 1.0).abs() < 0.25,
                "n={n}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn skew_factor_matches_exact_shape() {
        let params = HmhParams::new(8, 6, 8).unwrap();
        let n = 1e9;
        for &ratio in &[1.0, 4.0, 64.0] {
            let m = n / ratio;
            let approx = approx_expected_collisions(params, n, m).unwrap();
            let exact = expected_collisions(params, n, m);
            assert!(
                (approx / exact - 1.0).abs() < 0.3,
                "ratio={ratio}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn symmetric_in_arguments() {
        let params = HmhParams::figure6();
        let a = approx_expected_collisions(params, 1e6, 1e4).unwrap();
        let b = approx_expected_collisions(params, 1e4, 1e6).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn too_large_errors() {
        let params = HmhParams::new(4, 3, 4).unwrap(); // limit 2^(4+6)=2^10
        let err = approx_expected_collisions(params, 1e9, 1e9).unwrap_err();
        assert!(matches!(err, HmhError::CardinalityTooLarge { .. }));
        // Headline parameters: valid even at 10^19.
        let headline = HmhParams::headline();
        assert!(approx_expected_collisions(headline, 1e19, 1e19).is_ok());
    }

    #[test]
    fn headline_collision_budget() {
        // §5: p=15, q=6, r=10 → plateau ≈ 0.1699·2^5 ≈ 5.4 colliding
        // buckets out of 32768 — a ~1.7e-4 absolute Jaccard bias, which is
        // what makes J = 0.01 estimable.
        let ec = approx_expected_collisions(HmhParams::headline(), 1e19, 1e19).unwrap();
        assert!((ec - 5.44).abs() < 0.2, "ec = {ec}");
    }
}
