//! Closed-form bounds: Theorems 1 and 2.
//!
//! Theorem 1 (adapted to the packed cap, `2^q ↦ cap` — see the crate
//! docs):
//!
//! `EC ≤ 2^p · (5/2^r + n / 2^{p + cap − 1 + r})`
//!
//! from the four covering regions of Figure 5 — the magenta ray (≤ 3/z̄),
//! the strip (≤ 2/z̄), and the bottom-left box (≤ n/(z̄·q̄·p̄)); the
//! top-right box is inside the ray once buckets rescale. Theorem 2:
//! `Var(C) ≤ (EC)² + EC`.
//!
//! The paper notes the constant 5 (6 for a single bucket) "is a gross
//! overestimate (empirically, the constant seems closer to 1)" — the
//! `collisions` experiment measures exactly that.

use crate::params::HmhParams;

/// Theorem 1: upper bound on the expected number of colliding buckets for
/// disjoint sets with the larger cardinality `n`.
pub fn theorem1_bound(params: HmhParams, n: f64) -> f64 {
    let per_bucket = 5.0 * 2f64.powi(-(params.r() as i32))
        + n / 2f64.powi((params.p() + params.cap() - 1 + params.r()) as i32);
    2f64.powi(params.p() as i32) * per_bucket
}

/// Proposition 3: single-bucket version with constant 6.
pub fn proposition3_bound(params: HmhParams, n: f64) -> f64 {
    6.0 * 2f64.powi(-(params.r() as i32))
        + n / 2f64.powi((params.cap() - 1 + params.r()) as i32)
}

/// Theorem 2: `Var(C) ≤ (EC)² + EC`.
pub fn theorem2_variance_bound(expected_collisions: f64) -> f64 {
    expected_collisions * expected_collisions + expected_collisions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collisions::exact::{
        expected_collisions, single_bucket_collision_probability,
    };

    #[test]
    fn theorem1_dominates_the_exact_formula() {
        // The bound must hold across parameterizations and cardinalities,
        // including past the counter range where the n-term takes over.
        for &(p, q, r) in &[(4u32, 3u32, 4u32), (8, 4, 4), (8, 6, 10), (12, 6, 8)] {
            let params = HmhParams::new(p, q, r).unwrap();
            for &n in &[1.0, 100.0, 1e4, 1e6, 1e10, 1e14] {
                let exact = expected_collisions(params, n, n);
                let bound = theorem1_bound(params, n);
                assert!(
                    exact <= bound * (1.0 + 1e-9),
                    "(p,q,r)=({p},{q},{r}) n={n}: exact {exact} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn proposition3_dominates_single_bucket() {
        let params = HmhParams::new(0, 4, 6).unwrap();
        for &n in &[1.0, 50.0, 1e4, 1e6] {
            let gamma = single_bucket_collision_probability(4, 6, n, n);
            let bound = proposition3_bound(params, n);
            assert!(gamma <= bound, "n={n}: {gamma} > {bound}");
        }
    }

    #[test]
    fn constant_is_a_gross_overestimate() {
        // Empirically the constant is near 1 (paper, §3 end): on the
        // plateau the exact EC should be well under half the bound.
        let params = HmhParams::new(8, 6, 10).unwrap();
        let n = 1e6;
        let exact = expected_collisions(params, n, n);
        let bound = theorem1_bound(params, n);
        assert!(exact < bound / 3.0, "exact {exact}, bound {bound}");
    }

    #[test]
    fn variance_bound_shape() {
        assert_eq!(theorem2_variance_bound(0.0), 0.0);
        assert_eq!(theorem2_variance_bound(1.0), 2.0);
        assert_eq!(theorem2_variance_bound(3.0), 12.0);
    }

    #[test]
    fn empirical_variance_respects_theorem2() {
        use crate::sketch::HyperMinHash;
        use hmh_hash::RandomOracle;
        use hmh_math::Welford;

        let params = HmhParams::new(6, 4, 4).unwrap();
        let n = 2000u64;
        let mut stats = Welford::new();
        for t in 0..80u64 {
            let oracle = RandomOracle::with_seed(7000 + t);
            let mut a = HyperMinHash::with_oracle(params, oracle);
            let mut b = HyperMinHash::with_oracle(params, oracle);
            for i in 0..n {
                a.insert(&i);
                b.insert(&(i + 50_000_000));
            }
            let collisions = (0..params.num_buckets())
                .filter(|&i| a.word(i) != 0 && a.word(i) == b.word(i))
                .count();
            stats.add(collisions as f64);
        }
        let ec = expected_collisions(params, n as f64, n as f64);
        let var_bound = theorem2_variance_bound(ec);
        // Sample variance fluctuates; allow ~2x over the bound for 80
        // trials (the bound itself has slack ≈ EC², so this rarely trips).
        assert!(
            stats.sample_variance() <= var_bound * 2.0,
            "sample var {} vs bound {var_bound}",
            stats.sample_variance()
        );
        // And the mean must track EC.
        assert!(
            (stats.mean() - ec).abs() < 4.0 * (var_bound / 80.0).sqrt() + 0.3,
            "mean {} vs EC {ec}",
            stats.mean()
        );
    }
}
