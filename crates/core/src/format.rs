//! A compact, versioned binary wire format for sketches.
//!
//! Serde/JSON is convenient but ~6× larger than the registers themselves;
//! production sketch stores ship raw registers. Layout (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "HMH1"
//! 4       1     format version (1)
//! 5       1     p
//! 6       1     q
//! 7       1     r
//! 8       1     oracle algorithm (0 murmur3, 1 sha1, 2 xxpair, 3 splitmix)
//! 9       8     oracle seed (u64 LE)
//! 17      8·W   packed register words (u64 LE each)
//! 17+8·W  8     xxHash64 of bytes [0, 17+8·W) with seed 0
//! ```
//!
//! The trailing digest catches truncation and bit rot; parameter and
//! padding validation catches adversarial or corrupt payloads without
//! panicking.

use crate::error::HmhError;
use crate::params::HmhParams;
use crate::sketch::HyperMinHash;
use hmh_hash::xxhash::xxh64;
use hmh_hash::{HashAlgorithm, RandomOracle};
use hmh_hll::registers::BitPacked;

/// Magic bytes of the format.
pub const MAGIC: [u8; 4] = *b"HMH1";
/// Current format version.
pub const VERSION: u8 = 1;

/// Hard ceiling on an encoded sketch, derived from the parameter bounds
/// `HmhParams::new` enforces (p ≤ 24, q + r ≤ 32): 2^24 buckets of at
/// most 32 bits each, plus header and digest. Untrusted inputs larger
/// than this are rejected *before* any length field is believed, so a
/// hostile or corrupt length can never drive an unbounded allocation or
/// read — in this decoder or in anything (store records, network frames)
/// that carries encoded sketches.
pub const MAX_ENCODED_LEN: usize = HEADER_LEN + (1 << 24) * 32 / 8 + DIGEST_LEN;

/// Fixed header size (magic + version + p/q/r + algorithm + seed).
pub const HEADER_LEN: usize = 17;

/// Trailing xxHash64 digest size.
pub const DIGEST_LEN: usize = 8;

/// Errors from decoding a binary sketch.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatError {
    /// Input does not start with [`MAGIC`].
    BadMagic,
    /// Unknown format version.
    UnsupportedVersion(u8),
    /// Header parameters fail [`HmhParams::new`] validation.
    InvalidParams(HmhError),
    /// Unknown oracle algorithm byte.
    UnknownAlgorithm(u8),
    /// Input shorter than the header + payload + digest demand.
    Truncated {
        /// Bytes expected (0 when the header itself is short).
        expected: usize,
        /// Bytes available.
        got: usize,
    },
    /// Input larger than any valid sketch ([`MAX_ENCODED_LEN`]) — a lying
    /// length field upstream, not a sketch.
    TooLarge {
        /// Bytes presented.
        got: usize,
        /// The [`MAX_ENCODED_LEN`] ceiling.
        max: usize,
    },
    /// Trailing digest does not match the content.
    ChecksumMismatch,
    /// Payload failed structural validation (e.g. dirty padding bits).
    CorruptPayload(String),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a HyperMinHash sketch (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            Self::InvalidParams(e) => write!(f, "invalid parameters in header: {e}"),
            Self::UnknownAlgorithm(a) => write!(f, "unknown oracle algorithm {a}"),
            Self::Truncated { expected, got } => {
                write!(f, "truncated sketch: expected {expected} bytes, got {got}")
            }
            Self::TooLarge { got, max } => {
                write!(f, "oversized sketch: {got} bytes exceeds the {max}-byte format ceiling")
            }
            Self::ChecksumMismatch => write!(f, "checksum mismatch (corrupt sketch)"),
            Self::CorruptPayload(msg) => write!(f, "corrupt payload: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidParams(e) => Some(e),
            _ => None,
        }
    }
}

/// The `HMH1` header byte for a hash algorithm (also used by the serve
/// protocol's BATCH_PUT sketch-configuration fields).
pub fn algorithm_to_byte(alg: HashAlgorithm) -> u8 {
    match alg {
        HashAlgorithm::Murmur3 => 0,
        HashAlgorithm::Sha1 => 1,
        HashAlgorithm::XxPair => 2,
        HashAlgorithm::SplitMix => 3,
    }
}

/// The hash algorithm for an `HMH1` header byte.
pub fn algorithm_from_byte(b: u8) -> Result<HashAlgorithm, FormatError> {
    Ok(match b {
        0 => HashAlgorithm::Murmur3,
        1 => HashAlgorithm::Sha1,
        2 => HashAlgorithm::XxPair,
        3 => HashAlgorithm::SplitMix,
        other => return Err(FormatError::UnknownAlgorithm(other)),
    })
}

/// Encode a sketch to the binary format.
pub fn encode(sketch: &HyperMinHash) -> Vec<u8> {
    let params = sketch.params();
    let words = sketch.packed().raw_words();
    let mut out = Vec::with_capacity(17 + words.len() * 8 + 8);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(params.p() as u8);
    out.push(params.q() as u8);
    out.push(params.r() as u8);
    out.push(algorithm_to_byte(sketch.oracle().algorithm()));
    out.extend_from_slice(&sketch.oracle().seed().to_le_bytes());
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let digest = xxh64(&out, 0);
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// Decode a sketch from the binary format.
pub fn decode(bytes: &[u8]) -> Result<HyperMinHash, FormatError> {
    const HEADER: usize = HEADER_LEN;
    if bytes.len() > MAX_ENCODED_LEN {
        return Err(FormatError::TooLarge { got: bytes.len(), max: MAX_ENCODED_LEN });
    }
    if bytes.len() < HEADER {
        return Err(FormatError::Truncated { expected: HEADER, got: bytes.len() });
    }
    if bytes[0..4] != MAGIC {
        return Err(FormatError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(FormatError::UnsupportedVersion(bytes[4]));
    }
    let (p, q, r) = (u32::from(bytes[5]), u32::from(bytes[6]), u32::from(bytes[7]));
    let params = HmhParams::new(p, q, r).map_err(FormatError::InvalidParams)?;
    let algorithm = algorithm_from_byte(bytes[8])?;
    let seed =
        u64::from_le_bytes(bytes[9..17].try_into().expect("invariant: bytes[9..17] is 8 bytes"));

    let bits = (params.num_buckets() as u64) * u64::from(params.word_bits());
    let num_words = bits.div_ceil(64) as usize;
    let expected = HEADER + num_words * 8 + 8;
    if bytes.len() != expected {
        return Err(FormatError::Truncated { expected, got: bytes.len() });
    }
    let body_end = HEADER + num_words * 8;
    let digest = u64::from_le_bytes(
        bytes[body_end..].try_into().expect("invariant: length checked 8 lines up"),
    );
    if xxh64(&bytes[..body_end], 0) != digest {
        return Err(FormatError::ChecksumMismatch);
    }
    let words: Vec<u64> = bytes[HEADER..body_end]
        .chunks_exact(8)
        .map(|c| {
            u64::from_le_bytes(
                c.try_into().expect("invariant: chunks_exact(8) yields 8-byte chunks"),
            )
        })
        .collect();
    let packed = BitPacked::from_raw_words(params.word_bits(), params.num_buckets(), words)
        .map_err(FormatError::CorruptPayload)?;
    // Structural register validation: counters must not exceed the cap
    // (BitPacked width alone cannot enforce this when q+r is not a power
    // of two — counter bits are the top q of the word, always in range by
    // construction, so nothing further to check).
    Ok(HyperMinHash::from_packed(params, RandomOracle::new(algorithm, seed), packed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch() -> HyperMinHash {
        let params = HmhParams::new(8, 6, 10).unwrap();
        HyperMinHash::from_items(params, 0..5_000u64)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let s = sketch();
        let bytes = encode(&s);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.cardinality(), s.cardinality());
    }

    #[test]
    fn wire_size_is_compact() {
        let s = sketch();
        let bytes = encode(&s);
        // 17-byte header + 512 B of registers + 8-byte digest.
        assert_eq!(bytes.len(), 17 + s.params().byte_size() + 8);
        let json = serde_json::to_vec(&s).unwrap();
        assert!(bytes.len() * 2 < json.len(), "binary {} vs json {}", bytes.len(), json.len());
    }

    #[test]
    fn oracle_configuration_survives() {
        let params = HmhParams::figure6();
        let oracle = RandomOracle::new(HashAlgorithm::Sha1, 0xdead_beef);
        let mut s = HyperMinHash::with_oracle(params, oracle);
        for i in 0..100u64 {
            s.insert(&i);
        }
        let back = decode(&encode(&s)).unwrap();
        assert_eq!(back.oracle(), oracle);
        assert_eq!(back, s);
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = encode(&sketch());
        // Flip one payload bit.
        let mut bad = bytes.clone();
        bad[20] ^= 1;
        assert_eq!(decode(&bad), Err(FormatError::ChecksumMismatch));
        // Truncate.
        assert!(matches!(decode(&bytes[..40]), Err(FormatError::Truncated { .. })));
        assert!(matches!(decode(&[]), Err(FormatError::Truncated { .. })));
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode(&bad), Err(FormatError::BadMagic));
        // Future version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert_eq!(decode(&bad), Err(FormatError::UnsupportedVersion(9)));
    }

    #[test]
    fn adversarial_headers_rejected_without_panicking() {
        let bytes = encode(&sketch());
        // Illegal q (checksum is checked after structure, so recompute it
        // to prove the parameter gate itself fires).
        let mut bad = bytes.clone();
        bad[6] = 99;
        assert!(matches!(decode(&bad), Err(FormatError::InvalidParams(_)) | Err(FormatError::Truncated { .. })));
        // Unknown algorithm byte.
        let mut bad = bytes;
        bad[8] = 200;
        assert!(matches!(decode(&bad), Err(FormatError::UnknownAlgorithm(200))));
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        // Small parameters keep the exhaustive sweep cheap: every bit of
        // header, payload and digest is flipped in turn, and the decoder
        // must reject every one of them (the digest covers the whole
        // body, and a digest flip breaks the digest itself).
        let params = HmhParams::new(2, 6, 4).unwrap();
        let s = HyperMinHash::from_items(params, 0..200u64);
        let bytes = encode(&s);
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(decode(&bad).is_err(), "flipped bit {bit} was accepted");
        }
        assert_eq!(decode(&bytes).unwrap(), s, "pristine bytes still decode");
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let params = HmhParams::new(2, 6, 4).unwrap();
        let s = HyperMinHash::from_items(params, 0..200u64);
        let bytes = encode(&s);
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, FormatError::Truncated { .. } | FormatError::BadMagic),
                "cut at {len}: unexpected {err:?}"
            );
        }
        // Trailing junk is rejected too — the length check is exact.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(decode(&extended), Err(FormatError::Truncated { .. })));
    }

    #[test]
    fn invalid_params_error_chains_to_cause() {
        use std::error::Error;
        let mut bad = encode(&sketch());
        bad[6] = 99; // q far outside the valid range
        let err = decode(&bad).unwrap_err();
        let FormatError::InvalidParams(_) = &err else {
            panic!("expected InvalidParams, got {err:?}");
        };
        let source = err.source().expect("InvalidParams carries its cause");
        assert!(source.to_string().contains('q'), "{source}");
        assert!(source.downcast_ref::<HmhError>().is_some());
        // Leaf errors terminate the chain.
        assert!(source.source().is_none());
        assert!(FormatError::BadMagic.source().is_none());
    }

    #[test]
    fn oversized_inputs_rejected_before_parsing() {
        // A buffer over the format ceiling is refused up front with the
        // typed error — no header parsing, no allocation proportional to
        // the claimed size. (The buffer itself is allocated lazily-ish
        // here; what matters is the decoder's gate fires first.)
        let huge = vec![0u8; MAX_ENCODED_LEN + 1];
        assert_eq!(
            decode(&huge),
            Err(FormatError::TooLarge { got: MAX_ENCODED_LEN + 1, max: MAX_ENCODED_LEN })
        );
        // The largest legal parameter set still fits under the ceiling.
        let params = HmhParams::new(24, 6, 26);
        if let Ok(p) = params {
            let bits = (p.num_buckets() as u64) * u64::from(p.word_bits());
            let expected = HEADER_LEN + bits.div_ceil(64) as usize * 8 + DIGEST_LEN;
            assert!(expected <= MAX_ENCODED_LEN, "{expected} > {MAX_ENCODED_LEN}");
        }
    }

    #[test]
    fn adversarial_corpus_never_panics() {
        // Hostile inputs from every class the decoder gates on: declared
        // sizes that lie, headers that are garbage, truncations at every
        // structural boundary. Every one must return a typed error (or
        // decode cleanly for the pristine case) — never panic, never
        // allocate past the ceiling.
        let good = encode(&sketch());
        let corpus: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![0x00],
            b"HMH1".to_vec(),
            b"HMH1\x01".to_vec(),
            good[..HEADER_LEN].to_vec(),
            good[..HEADER_LEN + 1].to_vec(),
            good[..good.len() - DIGEST_LEN].to_vec(),
            // Maximal parameter bytes with no body: claims a huge sketch.
            {
                let mut b = good[..HEADER_LEN].to_vec();
                (b[5], b[6], b[7]) = (24, 6, 26);
                b
            },
            // All 0xff after the magic: implausible params + lengths.
            {
                let mut b = good.clone();
                for x in &mut b[4..] {
                    *x = 0xff;
                }
                b
            },
            vec![0xff; 64],
            vec![0x41; 1024],
        ];
        for (i, bytes) in corpus.iter().enumerate() {
            assert!(decode(bytes).is_err(), "corpus[{i}] accepted");
        }
        assert!(decode(&good).is_ok());
    }

    #[test]
    fn decoded_sketches_keep_merging() {
        let params = HmhParams::new(8, 6, 10).unwrap();
        let a = HyperMinHash::from_items(params, 0..3_000u64);
        let b = HyperMinHash::from_items(params, 1_500..4_500u64);
        let a2 = decode(&encode(&a)).unwrap();
        assert_eq!(a.union(&b).unwrap(), a2.union(&b).unwrap());
    }
}
