//! Intersection cardinality and k-way queries.
//!
//! The paper's pipeline: `|A ∩ B| = t̂(A, B) · |A ∪ B|̂`, both factors from
//! the sketches. The k-way generalization — the chance that *all* k bucket
//! minima agree is `|∩ᵢ Sᵢ| / |∪ᵢ Sᵢ|` — is what lets CNF queries
//! (`hmh-cnf`) evaluate intersections of unions with error bounded by the
//! final result size (§5).

use crate::error::HmhError;
use crate::jaccard::{jaccard, CollisionCorrection};
use crate::sketch::HyperMinHash;

/// An intersection estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntersectionEstimate {
    /// Estimated Jaccard index (collision-corrected).
    pub jaccard: f64,
    /// Estimated union cardinality.
    pub union: f64,
    /// Estimated intersection cardinality `jaccard · union`.
    pub intersection: f64,
}

/// Pairwise intersection: `t̂ · |A ∪ B|̂`.
pub fn intersection(a: &HyperMinHash, b: &HyperMinHash) -> Result<IntersectionEstimate, HmhError> {
    let j = jaccard(a, b, CollisionCorrection::Approx)?;
    let union = a.union(b)?.cardinality();
    Ok(IntersectionEstimate { jaccard: j.estimate, union, intersection: j.estimate * union })
}

/// k-way Jaccard: the fraction of buckets, occupied in the union, whose
/// registers agree across *all* sketches — an unbiased estimate of
/// `|∩ᵢ Sᵢ| / |∪ᵢ Sᵢ|` up to accidental collisions.
///
/// No collision correction is applied for `k > 2` (the pairwise `EC`
/// theory doesn't transfer; with ≥ 2 mantissa-bit registers the k-way
/// accidental-collision floor is `≲ 2^{-r(k-1)}`, far below the pairwise
/// one).
///
/// # Errors
/// If fewer than two sketches are given or any pair is incompatible.
pub fn jaccard_many(sketches: &[&HyperMinHash]) -> Result<f64, HmhError> {
    let [first, rest @ ..] = sketches else {
        return Err(HmhError::InvalidParams {
            reason: "k-way Jaccard needs at least two sketches".into(),
        });
    };
    if rest.is_empty() {
        return Err(HmhError::InvalidParams {
            reason: "k-way Jaccard needs at least two sketches".into(),
        });
    }
    for s in rest {
        first.check_compatible(s)?;
    }
    let mut matching = 0usize;
    let mut occupied = 0usize;
    for bucket in 0..first.params().num_buckets() {
        let w0 = first.word(bucket);
        let mut any = w0 != 0;
        let mut all_match = true;
        for s in rest {
            let w = s.word(bucket);
            any |= w != 0;
            all_match &= w == w0;
        }
        if any {
            occupied += 1;
            if all_match && w0 != 0 {
                matching += 1;
            }
        }
    }
    Ok(if occupied == 0 { 0.0 } else { matching as f64 / occupied as f64 })
}

/// k-way intersection: `t̂ₖ · |∪ᵢ Sᵢ|̂`.
pub fn intersection_many(sketches: &[&HyperMinHash]) -> Result<IntersectionEstimate, HmhError> {
    let j = jaccard_many(sketches)?;
    let mut union =
        (*sketches.first().expect("invariant: jaccard_many errors on empty input")).clone();
    for s in &sketches[1..] {
        union.merge(s)?;
    }
    let u = union.cardinality();
    Ok(IntersectionEstimate { jaccard: j, union: u, intersection: j * u })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HmhParams;

    fn params() -> HmhParams {
        HmhParams::new(11, 6, 10).unwrap()
    }

    #[test]
    fn pairwise_intersection() {
        let p = params();
        let a = HyperMinHash::from_items(p, 0..30_000u64);
        let b = HyperMinHash::from_items(p, 15_000..45_000u64);
        let est = intersection(&a, &b).unwrap();
        assert!((est.intersection / 15_000.0 - 1.0).abs() < 0.12, "{est:?}");
        assert!((est.union / 45_000.0 - 1.0).abs() < 0.05, "{est:?}");
    }

    #[test]
    fn three_way_jaccard() {
        // A = [0, 30k), B = [10k, 40k), C = [20k, 50k):
        // ∩ = [20k, 30k) = 10k, ∪ = 50k → t₃ = 0.2.
        let p = params();
        let a = HyperMinHash::from_items(p, 0..30_000u64);
        let b = HyperMinHash::from_items(p, 10_000..40_000u64);
        let c = HyperMinHash::from_items(p, 20_000..50_000u64);
        let j = jaccard_many(&[&a, &b, &c]).unwrap();
        assert!((j - 0.2).abs() < 0.04, "j = {j}");
        let est = intersection_many(&[&a, &b, &c]).unwrap();
        assert!((est.intersection / 10_000.0 - 1.0).abs() < 0.2, "{est:?}");
    }

    #[test]
    fn two_way_many_matches_pairwise_raw() {
        let p = params();
        let a = HyperMinHash::from_items(p, 0..10_000u64);
        let b = HyperMinHash::from_items(p, 5_000..15_000u64);
        let many = jaccard_many(&[&a, &b]).unwrap();
        let pairwise = crate::jaccard::jaccard(&a, &b, CollisionCorrection::None).unwrap();
        assert_eq!(many, pairwise.raw);
    }

    #[test]
    fn disjoint_three_way_is_near_zero() {
        let p = params();
        let a = HyperMinHash::from_items(p, 0..10_000u64);
        let b = HyperMinHash::from_items(p, 1_000_000..1_010_000u64);
        let c = HyperMinHash::from_items(p, 2_000_000..2_010_000u64);
        let j = jaccard_many(&[&a, &b, &c]).unwrap();
        assert!(j < 0.01, "j = {j}");
    }

    #[test]
    fn needs_two_sketches() {
        let p = params();
        let a = HyperMinHash::from_items(p, 0..100u64);
        assert!(jaccard_many(&[&a]).is_err());
        assert!(jaccard_many(&[]).is_err());
    }

    #[test]
    fn empty_sketches_kway() {
        let p = params();
        let a = HyperMinHash::new(p);
        let b = HyperMinHash::new(p);
        assert_eq!(jaccard_many(&[&a, &b]).unwrap(), 0.0);
    }
}
