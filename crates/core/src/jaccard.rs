//! Jaccard index estimation: Algorithm 4.
//!
//! Count matching non-empty buckets `C` and occupied-in-either buckets
//! `N`; the raw estimate is `C/N`. Optionally subtract the expected number
//! of accidental collisions `EC` first ("generally not needed, except for
//! really small Jaccard index"): `t̂ = (C − EC)/N`.

use crate::collisions::{approx_expected_collisions, expected_collisions};
use crate::error::HmhError;
use crate::sketch::HyperMinHash;

/// How Algorithm 4 estimates the collision correction `EC`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollisionCorrection {
    /// No correction (`EC = 0`) — the Figure 6 protocol.
    None,
    /// Algorithm 6's fast approximation (the pseudocode's
    /// `ApproxExpectedCollisions`, "safe to substitute" default). Falls
    /// back to no correction when the approximation reports
    /// cardinality-too-large.
    #[default]
    Approx,
    /// Algorithm 5's exact computation (log-space evaluation).
    Exact,
}

/// The result of Algorithm 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaccardEstimate {
    /// The collision-corrected estimate `(C − EC)/N`, clamped to `[0, 1]`.
    pub estimate: f64,
    /// The uncorrected ratio `C/N`.
    pub raw: f64,
    /// Matching non-empty buckets `C`.
    pub matching: usize,
    /// Buckets occupied in either sketch `N`.
    pub occupied: usize,
    /// The `EC` that was subtracted.
    pub expected_collisions: f64,
}

impl JaccardEstimate {
    /// Approximate standard error of [`estimate`](Self::estimate): the
    /// per-bucket matching indicator is Bernoulli(`t`) (variance
    /// `t(1−t)/N` — "variance on the order of k/t", §5), plus the
    /// accidental-collision count's variance, which Theorem 2 bounds by
    /// `(EC)² + EC` ("1/l² variance, where l = 2^r", §5). The second term
    /// uses the *bound*, so this errs slightly conservative.
    pub fn std_err(&self) -> f64 {
        if self.occupied == 0 {
            return 0.0;
        }
        let n = self.occupied as f64;
        let sampling = self.estimate * (1.0 - self.estimate) / n;
        let ec = self.expected_collisions;
        let collisions = (ec * ec + ec) / (n * n);
        (sampling + collisions).sqrt()
    }
}

/// Algorithm 4: Jaccard index of two sketches.
pub fn jaccard(
    a: &HyperMinHash,
    b: &HyperMinHash,
    correction: CollisionCorrection,
) -> Result<JaccardEstimate, HmhError> {
    a.check_compatible(b)?;
    let params = a.params();
    let mut matching = 0usize;
    let mut occupied = 0usize;
    for bucket in 0..params.num_buckets() {
        let (wa, wb) = (a.word(bucket), b.word(bucket));
        if wa != 0 || wb != 0 {
            occupied += 1;
            if wa == wb {
                matching += 1;
            }
        }
    }
    let raw = if occupied == 0 { 0.0 } else { matching as f64 / occupied as f64 };

    let ec = match correction {
        CollisionCorrection::None => 0.0,
        CollisionCorrection::Approx => {
            let n = a.cardinality();
            let m = b.cardinality();
            approx_expected_collisions(params, n, m).unwrap_or(0.0)
        }
        CollisionCorrection::Exact => {
            let n = a.cardinality();
            let m = b.cardinality();
            expected_collisions(params, n, m)
        }
    };

    // The correction is derived for *disjoint* buckets; shared buckets
    // cannot accidentally collide, so EC overcorrects slightly at high t —
    // the paper accepts this ("for large Jaccard indexes, this does not
    // matter").
    let estimate = if occupied == 0 {
        0.0
    } else {
        ((matching as f64 - ec) / occupied as f64).clamp(0.0, 1.0)
    };

    Ok(JaccardEstimate { estimate, raw, matching, occupied, expected_collisions: ec })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HmhParams;

    fn pair(n: u64, overlap: u64, params: HmhParams) -> (HyperMinHash, HyperMinHash) {
        // |A| = |B| = n, |A∩B| = overlap.
        let a = HyperMinHash::from_items(params, 0..n);
        let b = HyperMinHash::from_items(params, (n - overlap)..(2 * n - overlap));
        (a, b)
    }

    #[test]
    fn figure6_scenario_jaccard_one_third() {
        // Identically sized sets, 50% overlap → J = 1/3.
        let params = HmhParams::new(11, 6, 10).unwrap();
        let (a, b) = pair(30_000, 15_000, params);
        let est = jaccard(&a, &b, CollisionCorrection::None).unwrap();
        assert!(
            (est.estimate - 1.0 / 3.0).abs() < 0.04,
            "estimate {}",
            est.estimate
        );
        assert_eq!(est.raw, est.estimate, "no correction → raw == estimate");
    }

    #[test]
    fn identical_sets_estimate_one() {
        let params = HmhParams::figure6();
        let a = HyperMinHash::from_items(params, 0..5_000u64);
        let est = jaccard(&a, &a.clone(), CollisionCorrection::None).unwrap();
        assert_eq!(est.estimate, 1.0);
        assert_eq!(est.matching, est.occupied);
    }

    #[test]
    fn empty_sketches_estimate_zero() {
        let params = HmhParams::figure6();
        let a = HyperMinHash::new(params);
        let est = jaccard(&a, &a.clone(), CollisionCorrection::Approx).unwrap();
        assert_eq!(est.estimate, 0.0);
        assert_eq!(est.occupied, 0);
    }

    #[test]
    fn correction_debiases_disjoint_sets() {
        // Disjoint sets with few mantissa bits: raw ≈ EC/N > 0; corrected
        // should be much closer to 0, averaged over trials.
        use hmh_hash::RandomOracle;
        let params = HmhParams::new(8, 5, 4).unwrap();
        let n = 100_000u64;
        let (mut raw_sum, mut corr_sum) = (0.0, 0.0);
        let trials = 10;
        for t in 0..trials {
            let oracle = RandomOracle::with_seed(500 + t);
            let mut a = HyperMinHash::with_oracle(params, oracle);
            let mut b = HyperMinHash::with_oracle(params, oracle);
            for i in 0..n {
                a.insert(&i);
                b.insert(&(i + 1_000_000_000));
            }
            let est = jaccard(&a, &b, CollisionCorrection::Exact).unwrap();
            raw_sum += est.raw;
            corr_sum += est.estimate;
            assert!(est.expected_collisions > 0.5, "EC {}", est.expected_collisions);
        }
        let raw = raw_sum / trials as f64;
        let corrected = corr_sum / trials as f64;
        assert!(raw > 0.005, "raw {raw} should show the collision floor");
        assert!(
            corrected < raw / 2.0,
            "correction should remove most of the floor: raw {raw}, corrected {corrected}"
        );
    }

    #[test]
    fn approx_correction_close_to_exact_correction() {
        let params = HmhParams::new(10, 6, 8).unwrap();
        let (a, b) = pair(50_000, 5_000, params);
        let exact = jaccard(&a, &b, CollisionCorrection::Exact).unwrap();
        let approx = jaccard(&a, &b, CollisionCorrection::Approx).unwrap();
        assert!(
            (exact.estimate - approx.estimate).abs() < 0.01,
            "exact {} vs approx {}",
            exact.estimate,
            approx.estimate
        );
    }

    #[test]
    fn jaccard_is_symmetric() {
        let params = HmhParams::figure6();
        let (a, b) = pair(10_000, 2_000, params);
        let ab = jaccard(&a, &b, CollisionCorrection::None).unwrap();
        let ba = jaccard(&b, &a, CollisionCorrection::None).unwrap();
        assert_eq!(ab.estimate, ba.estimate);
        assert_eq!(ab.matching, ba.matching);
    }

    #[test]
    fn small_jaccard_with_correction() {
        // J = 0.01 at n = 200k: the regime the paper says needs EC.
        let params = HmhParams::new(12, 6, 10).unwrap();
        let n = 200_000u64;
        let overlap = (2.0 * n as f64 * 0.01 / 1.01) as u64; // J = s/(2n−s)
        let (a, b) = pair(n, overlap, params);
        let est = jaccard(&a, &b, CollisionCorrection::Approx).unwrap();
        assert!(
            (est.estimate - 0.01).abs() < 0.004,
            "estimate {} (raw {})",
            est.estimate,
            est.raw
        );
    }

    #[test]
    fn std_err_matches_empirical_spread() {
        use hmh_hash::RandomOracle;
        use hmh_math::Welford;
        // Repeat the J = 1/3 experiment with independent oracles; the
        // empirical sd of the estimate should sit within a factor ~2 of
        // the predicted standard error.
        let params = HmhParams::new(9, 6, 10).unwrap();
        let mut stats = Welford::new();
        let mut predicted = 0.0;
        let trials = 40u64;
        for t in 0..trials {
            let oracle = RandomOracle::with_seed(3_000 + t);
            let mut a = HyperMinHash::with_oracle(params, oracle);
            let mut b = HyperMinHash::with_oracle(params, oracle);
            for i in 0..20_000u64 {
                a.insert(&i);
                b.insert(&(i + 10_000));
            }
            let est = jaccard(&a, &b, CollisionCorrection::Approx).unwrap();
            stats.add(est.estimate);
            predicted = est.std_err();
        }
        let empirical = stats.std_dev();
        assert!(
            empirical < predicted * 2.0 && empirical > predicted / 3.0,
            "empirical sd {empirical} vs predicted {predicted}"
        );
    }

    #[test]
    fn std_err_edge_cases() {
        let params = HmhParams::figure6();
        let empty = HyperMinHash::new(params);
        let est = jaccard(&empty, &empty.clone(), CollisionCorrection::None).unwrap();
        assert_eq!(est.std_err(), 0.0);
        // Identical sets: t = 1 → sampling term vanishes, only the
        // (tiny) collision term remains.
        let a = HyperMinHash::from_items(params, 0..1000u64);
        let est = jaccard(&a, &a.clone(), CollisionCorrection::None).unwrap();
        assert!(est.std_err() < 0.01, "{}", est.std_err());
    }

    #[test]
    fn incompatible_inputs_error() {
        let a = HyperMinHash::new(HmhParams::new(8, 4, 4).unwrap());
        let b = HyperMinHash::new(HmhParams::new(8, 4, 5).unwrap());
        assert!(jaccard(&a, &b, CollisionCorrection::None).is_err());
    }
}
