//! Sparse and adaptive sketch representations.
//!
//! A dense headline-parameter sketch costs 64 KiB even for a ten-element
//! set. Deployments that keep one sketch per attribute value (the paper's
//! survey/DDoS catalogs) mostly hold *small* sets, so production sketch
//! stores (HLL in Redis/BigQuery, the Go HyperMinHash port) start sparse —
//! a sorted list of `(bucket, register)` entries — and promote to the
//! dense layout once the entry list would outgrow it.
//!
//! [`AdaptiveHyperMinHash`] implements that policy losslessly: its register
//! content is at all times identical to the dense sketch of the same
//! items, so every estimator gives bit-identical answers (tested).

use crate::error::HmhError;
use crate::params::HmhParams;
use crate::registers::{self, Word};
use crate::sketch::HyperMinHash;
use hmh_hash::{HashableItem, RandomOracle};

/// A HyperMinHash that stores registers sparsely while small and promotes
/// itself to the dense layout when that becomes cheaper.
///
/// ```
/// use hmh_core::{AdaptiveHyperMinHash, HmhParams};
///
/// let params = HmhParams::headline(); // dense layout would be 64 KiB
/// let mut sketch = AdaptiveHyperMinHash::new(params);
/// for i in 0..100u64 {
///     sketch.insert(&i);
/// }
/// assert!(sketch.is_sparse());
/// assert!(sketch.byte_size() < 1024);
/// // Identical registers to the dense sketch of the same items:
/// let dense = sketch.to_dense();
/// assert_eq!(dense.occupied(), sketch.occupied());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdaptiveHyperMinHash {
    params: HmhParams,
    oracle: RandomOracle,
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum Repr {
    /// Sorted by bucket; every stored word is non-zero.
    Sparse(Vec<(u32, Word)>),
    Dense(HyperMinHash),
}

impl AdaptiveHyperMinHash {
    /// New empty sparse sketch with the default oracle.
    pub fn new(params: HmhParams) -> Self {
        Self::with_oracle(params, RandomOracle::default())
    }

    /// New empty sparse sketch with an explicit oracle.
    pub fn with_oracle(params: HmhParams, oracle: RandomOracle) -> Self {
        Self { params, oracle, repr: Repr::Sparse(Vec::new()) }
    }

    /// The sketch parameters.
    pub fn params(&self) -> HmhParams {
        self.params
    }

    /// The random oracle.
    pub fn oracle(&self) -> RandomOracle {
        self.oracle
    }

    /// True while the sparse layout is in use.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Number of occupied buckets.
    pub fn occupied(&self) -> usize {
        match &self.repr {
            Repr::Sparse(entries) => entries.len(),
            Repr::Dense(d) => d.occupied(),
        }
    }

    /// Current memory footprint in bytes: 8 bytes per sparse entry, or the
    /// packed dense size.
    pub fn byte_size(&self) -> usize {
        match &self.repr {
            Repr::Sparse(entries) => entries.len() * std::mem::size_of::<(u32, Word)>(),
            Repr::Dense(d) => d.byte_size(),
        }
    }

    /// Insert one item.
    pub fn insert<T: HashableItem + ?Sized>(&mut self, item: &T) {
        let digest = self.oracle.digest(item);
        let bucket = digest.take_bits(0, self.params.p()) as u32;
        let (counter, mantissa) =
            digest.rho_sigma(self.params.p(), self.params.cap(), self.params.r());
        debug_assert!(mantissa < self.params.mantissa_values(), "rho_sigma yields r ≤ 24 bits");
        self.observe(bucket as usize, counter, mantissa as u32);
    }

    /// Record a register observation directly.
    pub fn observe(&mut self, bucket: usize, counter: u32, mantissa: u32) {
        let candidate = registers::pack(self.params, counter, mantissa);
        match &mut self.repr {
            Repr::Sparse(entries) => {
                match entries.binary_search_by_key(&(bucket as u32), |&(b, _)| b) {
                    Ok(i) => {
                        if registers::beats(self.params, candidate, entries[i].1) {
                            entries[i].1 = candidate;
                        }
                    }
                    Err(i) => entries.insert(i, (bucket as u32, candidate)),
                }
                self.maybe_promote();
            }
            Repr::Dense(d) => d.observe(bucket, counter, mantissa),
        }
    }

    /// The packed word of `bucket` (0 = empty).
    pub fn word(&self, bucket: usize) -> Word {
        match &self.repr {
            Repr::Sparse(entries) => entries
                .binary_search_by_key(&(bucket as u32), |&(b, _)| b)
                .map(|i| entries[i].1)
                .unwrap_or(0),
            Repr::Dense(d) => d.word(bucket),
        }
    }

    /// Promote to the dense layout (no-op if already dense).
    pub fn promote(&mut self) {
        if let Repr::Sparse(entries) = &self.repr {
            let mut dense = HyperMinHash::with_oracle(self.params, self.oracle);
            for &(bucket, word) in entries {
                let (c, m) = registers::unpack(self.params, word);
                dense.observe(bucket as usize, c, m);
            }
            self.repr = Repr::Dense(dense);
        }
    }

    /// Convert into the dense sketch (promoting if needed).
    pub fn into_dense(mut self) -> HyperMinHash {
        self.promote();
        match self.repr {
            Repr::Dense(d) => d,
            // hmh-lint: allow(panic-in-lib) — promote() above guarantees Repr::Dense
            Repr::Sparse(_) => unreachable!("just promoted"),
        }
    }

    /// Materialize the dense equivalent without consuming `self`.
    pub fn to_dense(&self) -> HyperMinHash {
        self.clone().into_dense()
    }

    /// In-place union with another adaptive sketch.
    pub fn merge(&mut self, other: &Self) -> Result<(), HmhError> {
        self.check_compatible(other)?;
        match &other.repr {
            Repr::Sparse(entries) => {
                for &(bucket, word) in entries.clone().iter() {
                    let (c, m) = registers::unpack(self.params, word);
                    self.observe(bucket as usize, c, m);
                }
            }
            Repr::Dense(d) => {
                self.promote();
                if let Repr::Dense(mine) = &mut self.repr {
                    mine.merge(d)?;
                }
            }
        }
        Ok(())
    }

    /// Cardinality estimate (identical to the dense sketch's).
    pub fn cardinality(&self) -> f64 {
        match &self.repr {
            Repr::Dense(d) => d.cardinality(),
            Repr::Sparse(_) => self.to_dense().cardinality(),
        }
    }

    /// Jaccard estimate against another adaptive sketch (identical to the
    /// dense sketches').
    pub fn jaccard(&self, other: &Self) -> Result<crate::jaccard::JaccardEstimate, HmhError> {
        self.check_compatible(other)?;
        self.to_dense().jaccard(&other.to_dense())
    }

    fn check_compatible(&self, other: &Self) -> Result<(), HmhError> {
        if self.params != other.params {
            return Err(HmhError::ParameterMismatch { left: self.params, right: other.params });
        }
        if self.oracle != other.oracle {
            return Err(HmhError::OracleMismatch);
        }
        Ok(())
    }

    fn maybe_promote(&mut self) {
        let should = match &self.repr {
            Repr::Sparse(entries) => {
                entries.len() * std::mem::size_of::<(u32, Word)>() >= self.params.byte_size()
            }
            Repr::Dense(_) => false,
        };
        if should {
            self.promote();
        }
    }
}

impl From<HyperMinHash> for AdaptiveHyperMinHash {
    fn from(dense: HyperMinHash) -> Self {
        Self { params: dense.params(), oracle: dense.oracle(), repr: Repr::Dense(dense) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HmhParams {
        HmhParams::headline()
    }

    #[test]
    fn sparse_matches_dense_bit_for_bit() {
        let p = params();
        let mut adaptive = AdaptiveHyperMinHash::new(p);
        let mut dense = HyperMinHash::new(p);
        for i in 0..500u64 {
            adaptive.insert(&i);
            dense.insert(&i);
        }
        assert!(adaptive.is_sparse(), "500 items must stay sparse at 64 KiB params");
        for bucket in 0..p.num_buckets() {
            assert_eq!(adaptive.word(bucket), dense.word(bucket), "bucket {bucket}");
        }
        assert_eq!(adaptive.to_dense(), dense);
        assert_eq!(adaptive.cardinality(), dense.cardinality());
    }

    #[test]
    fn small_sets_are_small() {
        let p = params(); // dense = 64 KiB
        let mut s = AdaptiveHyperMinHash::new(p);
        for i in 0..100u64 {
            s.insert(&i);
        }
        assert!(s.byte_size() <= 100 * 8, "footprint {}", s.byte_size());
        assert!(s.byte_size() < p.byte_size() / 10);
    }

    #[test]
    fn promotion_happens_and_preserves_content() {
        let p = HmhParams::new(6, 4, 4).unwrap(); // dense = 64 B → promotes fast
        let mut adaptive = AdaptiveHyperMinHash::new(p);
        let mut dense = HyperMinHash::new(p);
        for i in 0..10_000u64 {
            adaptive.insert(&i);
            dense.insert(&i);
        }
        assert!(!adaptive.is_sparse(), "must have promoted");
        assert_eq!(adaptive.to_dense(), dense);
    }

    #[test]
    fn duplicate_and_order_invariance_in_sparse_mode() {
        let p = params();
        let mut a = AdaptiveHyperMinHash::new(p);
        let mut b = AdaptiveHyperMinHash::new(p);
        for i in 0..200u64 {
            a.insert(&i);
        }
        for i in (0..200u64).rev() {
            b.insert(&i);
            b.insert(&i);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_sparse_sparse_and_sparse_dense() {
        let p = HmhParams::new(8, 5, 8).unwrap();
        let mut sparse_a = AdaptiveHyperMinHash::new(p);
        let mut sparse_b = AdaptiveHyperMinHash::new(p);
        for i in 0..20u64 {
            sparse_a.insert(&i);
        }
        for i in 10..30u64 {
            sparse_b.insert(&i);
        }
        let mut merged = sparse_a.clone();
        merged.merge(&sparse_b).unwrap();
        let direct = {
            let mut s = AdaptiveHyperMinHash::new(p);
            for i in 0..30u64 {
                s.insert(&i);
            }
            s
        };
        assert_eq!(merged.to_dense(), direct.to_dense());

        // Sparse ∪ dense.
        let dense_c: AdaptiveHyperMinHash = HyperMinHash::from_items(p, 25..60u64).into();
        let mut all = merged.clone();
        all.merge(&dense_c).unwrap();
        assert!(!all.is_sparse());
        assert_eq!(all.to_dense(), HyperMinHash::from_items(p, 0..60u64));
    }

    #[test]
    fn jaccard_equals_dense_jaccard() {
        let p = HmhParams::new(10, 6, 10).unwrap();
        let mut a = AdaptiveHyperMinHash::new(p);
        let mut b = AdaptiveHyperMinHash::new(p);
        for i in 0..3000u64 {
            a.insert(&i);
        }
        for i in 1500..4500u64 {
            b.insert(&i);
        }
        let adaptive_j = a.jaccard(&b).unwrap();
        let dense_j = a.to_dense().jaccard(&b.to_dense()).unwrap();
        assert_eq!(adaptive_j, dense_j);
    }

    #[test]
    fn incompatible_merges_rejected() {
        let a = AdaptiveHyperMinHash::new(HmhParams::new(8, 4, 4).unwrap());
        let mut b = AdaptiveHyperMinHash::new(HmhParams::new(8, 4, 6).unwrap());
        assert!(b.merge(&a).is_err());
        let mut c = AdaptiveHyperMinHash::with_oracle(
            HmhParams::new(8, 4, 4).unwrap(),
            RandomOracle::with_seed(3),
        );
        assert!(c.merge(&a).is_err());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trip_both_layouts() {
        let p = HmhParams::new(7, 4, 4).unwrap();
        let mut s = AdaptiveHyperMinHash::new(p);
        for i in 0..5u64 {
            s.insert(&i);
        }
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(s, serde_json::from_str::<AdaptiveHyperMinHash>(&json).unwrap());

        for i in 0..5000u64 {
            s.insert(&i);
        }
        assert!(!s.is_sparse());
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(s, serde_json::from_str::<AdaptiveHyperMinHash>(&json).unwrap());
    }
}
