//! The `(p, q, r)` parameterization of a HyperMinHash sketch.

use crate::error::HmhError;

/// HyperMinHash parameters (Definition 1):
///
/// * `p` — partition exponent: `2^p` buckets.
/// * `q` — LogLog-counter width in bits; the counter saturates at
///   `cap = 2^q − 1` (see the crate docs for the cap convention).
/// * `r` — mantissa bits stored after the leading 1.
///
/// Each register occupies `q + r` bits; the sketch occupies
/// `2^p · (q + r)` bits. The paper's two reference configurations:
///
/// * Figure 6: `p = 8, q = 4, r = 4` — 256 buckets × 8 bits = 256 bytes.
/// * Headline (§5): `p = 15, q = 6, r = 10` — 2^15 × 16 bits = 64 KiB,
///   "estimating Jaccard indices of 0.01 for set cardinalities on the
///   order of 10^19 with accuracy around 5%".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HmhParams {
    p: u32,
    q: u32,
    r: u32,
}

impl HmhParams {
    /// Validated construction.
    ///
    /// Constraints:
    /// * `p ≤ 24` (register count; 16 Mi buckets is far past any published
    ///   use),
    /// * `1 ≤ q ≤ 6` (`q = 6` saturates at 63, covering cardinalities
    ///   ~2^64 — "storing 6 bits is sufficient", §2),
    /// * `1 ≤ r ≤ 24`, and `q + r ≤ 32` (one packed word),
    /// * `p + cap − 1 + r ≤ 128` (bits consumed from one digest).
    pub fn new(p: u32, q: u32, r: u32) -> Result<Self, HmhError> {
        let fail = |reason: String| Err(HmhError::InvalidParams { reason });
        if p > 24 {
            return fail(format!("p = {p} exceeds 24"));
        }
        if !(1..=6).contains(&q) {
            return fail(format!("q = {q} out of 1..=6"));
        }
        if !(1..=24).contains(&r) {
            return fail(format!("r = {r} out of 1..=24"));
        }
        if q + r > 32 {
            return fail(format!("q + r = {} exceeds one 32-bit register word", q + r));
        }
        let params = Self { p, q, r };
        let consumed = p + (params.cap() - 1) + r;
        if consumed > 128 {
            return fail(format!("p + cap − 1 + r = {consumed} exceeds the 128-bit digest"));
        }
        Ok(params)
    }

    /// The Figure 6 configuration: 256 bytes, `p = 8, q = 4, r = 4`.
    pub fn figure6() -> Self {
        Self::new(8, 4, 4).expect("invariant: figure 6 parameters are valid")
    }

    /// The §5 headline configuration: 64 KiB, `p = 15, q = 6, r = 10`.
    pub fn headline() -> Self {
        Self::new(15, 6, 10).expect("invariant: headline parameters are valid")
    }

    /// Partition exponent `p`.
    pub const fn p(self) -> u32 {
        self.p
    }

    /// Counter width `q` in bits.
    pub const fn q(self) -> u32 {
        self.q
    }

    /// Mantissa width `r` in bits.
    pub const fn r(self) -> u32 {
        self.r
    }

    /// Number of buckets `m = 2^p`.
    pub const fn num_buckets(self) -> usize {
        // hmh-lint: allow(shift-overflow-hazard) — p ≤ 24 enforced by HmhParams::new
        1 << self.p
    }

    /// Counter saturation value `cap = 2^q − 1`.
    pub const fn cap(self) -> u32 {
        // hmh-lint: allow(shift-overflow-hazard) — q ≤ 6 enforced by HmhParams::new
        (1 << self.q) - 1
    }

    /// Bits per packed register word (`q + r`).
    pub const fn word_bits(self) -> u32 {
        self.q + self.r
    }

    /// Number of mantissa values `2^r`.
    pub const fn mantissa_values(self) -> u64 {
        // hmh-lint: allow(shift-overflow-hazard) — r ≤ 24 enforced by HmhParams::new
        1 << self.r
    }

    /// Sketch size in bytes: `⌈2^p (q + r) / 8⌉`.
    pub const fn byte_size(self) -> usize {
        (self.num_buckets() * self.word_bits() as usize).div_ceil(8)
    }

    /// The largest cardinality before the LogLog counters hit their
    /// precision floor and the second Theorem-1 term starts to dominate:
    /// `2^{p + cap − 1 + r}`-scale ("around n > 2^{2^q + p} the number of
    /// collisions starts increasing", Appendix A.1).
    pub fn collision_range_limit(self) -> f64 {
        2f64.powi((self.p + self.cap() - 1) as i32)
    }
}

impl std::fmt::Display for HmhParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HmhParams(p={}, q={}, r={})", self.p, self.q, self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_configurations() {
        let fig6 = HmhParams::figure6();
        assert_eq!(fig6.num_buckets(), 256);
        assert_eq!(fig6.word_bits(), 8);
        assert_eq!(fig6.byte_size(), 256);
        assert_eq!(fig6.cap(), 15);

        let headline = HmhParams::headline();
        assert_eq!(headline.num_buckets(), 1 << 15);
        assert_eq!(headline.word_bits(), 16);
        assert_eq!(headline.byte_size(), 64 * 1024);
        assert_eq!(headline.cap(), 63);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(HmhParams::new(25, 4, 4).is_err());
        assert!(HmhParams::new(8, 0, 4).is_err());
        assert!(HmhParams::new(8, 7, 4).is_err());
        assert!(HmhParams::new(8, 4, 0).is_err());
        assert!(HmhParams::new(8, 4, 25).is_err());
        // The digest-width constraint is defensive: within the individual
        // caps above, p + cap − 1 + r maxes out at 110 < 128.
        assert!(HmhParams::new(24, 6, 24).is_ok());
    }

    #[test]
    fn validation_accepts_extremes() {
        assert!(HmhParams::new(0, 1, 1).is_ok(), "single bucket is legal");
        assert!(HmhParams::new(24, 6, 16).is_ok());
    }

    #[test]
    fn accessors_are_consistent() {
        let p = HmhParams::new(10, 5, 8).unwrap();
        assert_eq!(p.p(), 10);
        assert_eq!(p.q(), 5);
        assert_eq!(p.r(), 8);
        assert_eq!(p.cap(), 31);
        assert_eq!(p.mantissa_values(), 256);
        assert_eq!(p.byte_size(), 1024 * 13 / 8);
        assert!(p.collision_range_limit() > 1e12);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(HmhParams::figure6().to_string(), "HmhParams(p=8, q=4, r=4)");
    }
}
