//! Packed `(counter, mantissa)` register words.
//!
//! Appendix A.1, optimization 1: "Pack the hashed tuple into a single word;
//! this enables Jaccard index computation while using only one comparison
//! per bucket." A register word is `counter << r | mantissa` in `q + r`
//! bits; the empty register is the all-zero word (an occupied register has
//! `counter ≥ 1`, so its word is ≥ `2^r` and never collides with empty).
//!
//! Appendix A.1, optimization 2 ("use the max instead of min of the
//! subbuckets") is realized by [`rank`]: a monotone re-encoding under which
//! the *better* register (larger ρ, then smaller mantissa) is the *larger*
//! word, so unions and inserts are a single compare-and-swap.

use crate::params::HmhParams;

/// A packed register word (`q + r` significant bits, 0 = empty).
pub type Word = u32;

/// Pack `(counter, mantissa)` into a word.
#[inline]
pub fn pack(params: HmhParams, counter: u32, mantissa: u32) -> Word {
    debug_assert!(counter <= params.cap(), "counter {counter} > cap");
    debug_assert!(
        u64::from(mantissa) < params.mantissa_values(),
        "mantissa {mantissa} out of range"
    );
    (counter << params.r()) | mantissa
}

/// Unpack a word into `(counter, mantissa)`.
#[inline]
pub fn unpack(params: HmhParams, word: Word) -> (u32, u32) {
    let mask = (params.mantissa_values() - 1) as u32;
    (word >> params.r(), word & mask)
}

/// Monotone rank: `rank(a) > rank(b)` iff register `a` encodes a *smaller*
/// minimum hash than `b` (larger counter wins; ties broken by smaller
/// mantissa). The empty word ranks below every occupied word.
#[inline]
pub fn rank(params: HmhParams, word: Word) -> u32 {
    let mask = (params.mantissa_values() - 1) as u32;
    // Flip the mantissa bits: smaller mantissa → larger rank within a
    // counter class. Empty (0,0) → rank = mask < 2^r ≤ any occupied rank.
    (word | mask) - (word & mask)
}

/// Which of two register words represents the smaller minimum (i.e. should
/// survive a union). Returns `true` when `candidate` beats `incumbent`.
#[inline]
pub fn beats(params: HmhParams, candidate: Word, incumbent: Word) -> bool {
    rank(params, candidate) > rank(params, incumbent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HmhParams {
        HmhParams::new(8, 4, 6).unwrap()
    }

    #[test]
    fn pack_unpack_round_trip() {
        let p = params();
        for counter in 0..=p.cap() {
            for mantissa in [0u32, 1, 31, 63] {
                let w = pack(p, counter, mantissa);
                assert_eq!(unpack(p, w), (counter, mantissa));
            }
        }
    }

    #[test]
    fn empty_word_is_zero() {
        let p = params();
        assert_eq!(pack(p, 0, 0), 0);
        assert_eq!(unpack(p, 0), (0, 0));
    }

    #[test]
    fn occupied_words_are_nonzero() {
        let p = params();
        assert!(pack(p, 1, 0) > 0);
    }

    #[test]
    fn rank_orders_by_counter_then_inverse_mantissa() {
        let p = params();
        // Larger counter beats smaller.
        assert!(beats(p, pack(p, 5, 63), pack(p, 4, 0)));
        // Same counter: smaller mantissa beats larger.
        assert!(beats(p, pack(p, 5, 10), pack(p, 5, 11)));
        assert!(!beats(p, pack(p, 5, 11), pack(p, 5, 10)));
        // Equal registers: no strict beat.
        assert!(!beats(p, pack(p, 5, 10), pack(p, 5, 10)));
    }

    #[test]
    fn everything_beats_empty() {
        let p = params();
        for counter in 1..=p.cap() {
            for mantissa in [0u32, 63] {
                assert!(beats(p, pack(p, counter, mantissa), 0));
                assert!(!beats(p, 0, pack(p, counter, mantissa)));
            }
        }
        assert!(!beats(p, 0, 0));
    }

    #[test]
    fn rank_agrees_with_true_value_order() {
        // The register encodes the interval [s1, s2) of the underlying
        // minimum (Lemma 4); rank order must equal descending s1 order.
        let p = params();
        let s1 = |counter: u32, mantissa: u32| -> f64 {
            let r = p.r() as i32;
            let cap = p.cap();
            if counter < cap {
                (p.mantissa_values() as f64 + f64::from(mantissa))
                    / 2f64.powi(r + counter as i32)
            } else {
                f64::from(mantissa) / 2f64.powi(r + cap as i32 - 1)
            }
        };
        let mut entries: Vec<(u32, u32)> = Vec::new();
        for c in 1..=p.cap() {
            for m in [0u32, 1, 17, 63] {
                entries.push((c, m));
            }
        }
        for &(c1, m1) in &entries {
            for &(c2, m2) in &entries {
                let by_rank = rank(p, pack(p, c1, m1)).cmp(&rank(p, pack(p, c2, m2)));
                let by_value = s1(c2, m2)
                    .partial_cmp(&s1(c1, m1))
                    .expect("finite");
                assert_eq!(by_rank, by_value, "({c1},{m1}) vs ({c2},{m2})");
            }
        }
    }
}
