//! Property suite for the merge algebra the parallel ingest engine
//! leans on.
//!
//! `hmh-ingest` shards a stream across threads and folds the shards with
//! [`HyperMinHash::merge`]; its bit-for-bit determinism claim is exactly
//! the statement that `(sketches, merge)` is a bounded join-semilattice
//! whose join is a homomorphic image of set union. Each law below is one
//! of the obligations of that claim, checked over a deterministic seeded
//! sweep in the style of the workspace `tests/properties.rs` harness.

use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::RandomOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases per property (matches the workspace property harness).
const CASES: u64 = 64;

/// Deterministic input generator for one property case.
struct Gen {
    rng: StdRng,
}

impl Gen {
    fn new(property: u64, case: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(property.wrapping_mul(0x9e37_79b9) ^ case) }
    }

    /// Valid `HmhParams` spanning degenerate (`p = 0`) to mid-size
    /// sketches.
    fn params(&mut self) -> HmhParams {
        let p = self.rng.gen_range(0u32..=8);
        let q = self.rng.gen_range(2u32..=6);
        let r = self.rng.gen_range(1u32..=12);
        HmhParams::new(p, q, r).expect("ranges are valid")
    }

    /// A seeded oracle shared by every sketch of one case (merging is
    /// only defined between sketches of the same oracle).
    fn oracle(&mut self) -> RandomOracle {
        RandomOracle::with_seed(self.rng.gen())
    }

    /// Item vector of length 0..400 with arbitrary u64 items.
    fn items(&mut self) -> Vec<u64> {
        let len = self.rng.gen_range(0usize..400);
        (0..len).map(|_| self.rng.gen()).collect()
    }
}

/// Run `body` for `CASES` deterministic cases of property `id`.
fn check(id: u64, mut body: impl FnMut(&mut Gen)) {
    for case in 0..CASES {
        let mut g = Gen::new(id, case);
        body(&mut g);
    }
}

fn build(params: HmhParams, oracle: RandomOracle, items: &[u64]) -> HyperMinHash {
    let mut s = HyperMinHash::with_oracle(params, oracle);
    for item in items {
        s.insert(item);
    }
    s
}

/// In-place merge of a clone — the fold step `hmh-ingest` performs.
fn merged(a: &HyperMinHash, b: &HyperMinHash) -> HyperMinHash {
    let mut out = a.clone();
    out.merge(b).expect("same params and oracle");
    out
}

/// merge is commutative: the shard join order never matters.
#[test]
fn merge_is_commutative() {
    check(101, |g| {
        let (params, oracle) = (g.params(), g.oracle());
        let a = build(params, oracle, &g.items());
        let b = build(params, oracle, &g.items());
        assert_eq!(merged(&a, &b), merged(&b, &a));
    });
}

/// merge is associative: any shard grouping folds to the same sketch.
#[test]
fn merge_is_associative() {
    check(102, |g| {
        let (params, oracle) = (g.params(), g.oracle());
        let a = build(params, oracle, &g.items());
        let b = build(params, oracle, &g.items());
        let c = build(params, oracle, &g.items());
        assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    });
}

/// merge is idempotent: re-merging a shard is a no-op.
#[test]
fn merge_is_idempotent() {
    check(103, |g| {
        let (params, oracle) = (g.params(), g.oracle());
        let a = build(params, oracle, &g.items());
        assert_eq!(merged(&a, &a), a);
    });
}

/// The empty sketch is the identity — merging in an idle worker's
/// untouched shard changes nothing, on either side.
#[test]
fn empty_sketch_is_the_identity() {
    check(104, |g| {
        let (params, oracle) = (g.params(), g.oracle());
        let a = build(params, oracle, &g.items());
        let empty = HyperMinHash::with_oracle(params, oracle);
        assert_eq!(merged(&a, &empty), a);
        assert_eq!(merged(&empty, &a), a);
    });
}

/// merge(a, b) equals building one sketch from the union of the item
/// streams — the homomorphism that makes sharded ingest lossless.
#[test]
fn merge_equals_build_from_union() {
    check(105, |g| {
        let (params, oracle) = (g.params(), g.oracle());
        let xs = g.items();
        let ys = g.items();
        let a = build(params, oracle, &xs);
        let b = build(params, oracle, &ys);
        let mut all = xs;
        all.extend(ys);
        assert_eq!(merged(&a, &b), build(params, oracle, &all));
    });
}

/// In-place merge and the pure `union` constructor agree.
#[test]
fn merge_agrees_with_union() {
    check(106, |g| {
        let (params, oracle) = (g.params(), g.oracle());
        let a = build(params, oracle, &g.items());
        let b = build(params, oracle, &g.items());
        assert_eq!(merged(&a, &b), a.union(&b).expect("same params and oracle"));
    });
}

/// `insert_batch` — the worker fast path — is exactly an insert loop,
/// for every way of slicing a stream into batches.
#[test]
fn insert_batch_is_an_insert_loop_under_any_batching() {
    check(107, |g| {
        let (params, oracle) = (g.params(), g.oracle());
        let items = g.items();
        let reference = build(params, oracle, &items);
        let mut batched = HyperMinHash::with_oracle(params, oracle);
        let mut rest: &[u64] = &items;
        while !rest.is_empty() {
            let take = g.rng.gen_range(1usize..=rest.len());
            let (chunk, tail) = rest.split_at(take);
            batched.insert_batch(chunk);
            rest = tail;
        }
        assert_eq!(batched, reference);
    });
}

/// Sketches with different parameters or different oracles refuse to
/// merge instead of silently combining incompatible registers.
#[test]
fn incompatible_sketches_refuse_to_merge() {
    check(108, |g| {
        let oracle = g.oracle();
        let a_params = HmhParams::new(4, 4, 6).expect("valid");
        let b_params = HmhParams::new(5, 4, 6).expect("valid");
        let mut a = build(a_params, oracle, &g.items());
        let b = build(b_params, oracle, &g.items());
        assert!(a.merge(&b).is_err(), "params mismatch must be rejected");

        let c = build(a_params, RandomOracle::with_seed(g.rng.gen()), &g.items());
        assert!(a.merge(&c).is_err(), "oracle mismatch must be rejected");
    });
}
