//! Statistical regression tests against the paper's collision theory.
//!
//! Fully deterministic (seeded oracles, fixed item ranges), so a failure
//! is always a real regression, never flake. Each test measures register
//! collisions between sketches of disjoint sets and holds the
//! implementation to three results of the paper:
//!
//! * **Lemma 4 / Algorithm 5** — the exact expectation `Eγ(n, m)`
//!   (`collisions::expected_collisions`): the measured mean must sit
//!   within 3σ of it, with σ derived from the Theorem 2 variance bound.
//! * **Theorem 1** — the closed-form upper bound must dominate both the
//!   exact expectation and the measurement, and by the *right* margin:
//!   the paper calls the constant 5 "a gross overestimate", and the
//!   bound-to-exact ratio is pinned to a window so that perturbing the
//!   constant (or the exponent) moves the ratio out of range.
//! * **Theorem 2** — `Var(C) ≤ (EC)² + EC`: the sample variance of the
//!   collision count must respect the bound.

use hmh_core::collisions::bounds::{theorem1_bound, theorem2_variance_bound};
use hmh_core::collisions::exact::expected_collisions;
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::RandomOracle;
use hmh_math::Welford;

/// Trials per parameter set. Each trial re-seeds the oracle, which
/// re-randomizes every hash while keeping the run reproducible.
const TRIALS: u64 = 96;

/// Items per side; sits on the collision plateau (well inside the LogLog
/// counter range) for every parameter set below.
const N_ITEMS: u64 = 1500;

/// Small (p, q, r) grid: enough registers to collide measurably, small
/// enough that 96 trials stay fast. Chosen so expected collisions span
/// roughly 0.3 to 3 per trial.
fn grid() -> [HmhParams; 3] {
    [
        HmhParams::new(6, 4, 4).expect("valid"),
        HmhParams::new(7, 4, 6).expect("valid"),
        HmhParams::new(8, 5, 4).expect("valid"),
    ]
}

/// Sketch two disjoint item sets under one oracle and count buckets with
/// identical non-empty registers — the collision count `C` of the paper.
fn collision_count(params: HmhParams, seed: u64) -> u64 {
    let oracle = RandomOracle::with_seed(seed);
    let mut a = HyperMinHash::with_oracle(params, oracle);
    let mut b = HyperMinHash::with_oracle(params, oracle);
    for i in 0..N_ITEMS {
        a.insert(&i);
        b.insert(&(i + 0x4000_0000));
    }
    (0..params.num_buckets())
        .filter(|&bucket| a.word(bucket) != 0 && a.word(bucket) == b.word(bucket))
        .count() as u64
}

/// Collision statistics over the trial sweep for one parameter set.
fn measure(params: HmhParams, salt: u64) -> Welford {
    let mut stats = Welford::new();
    for t in 0..TRIALS {
        stats.add(collision_count(params, salt.wrapping_add(t)) as f64);
    }
    stats
}

/// The measured mean collision count must sit within 3σ of Lemma 4's
/// exact `Eγ(n, m)`, where σ is the standard error of the mean under the
/// Theorem 2 variance bound. Perturbing the exact formula (a boundary
/// off by one, a dropped register class) shifts `EC` by far more than
/// the window.
#[test]
fn collision_rate_matches_lemma4_within_3_sigma() {
    for (k, params) in grid().into_iter().enumerate() {
        let ec = expected_collisions(params, N_ITEMS as f64, N_ITEMS as f64);
        let stats = measure(params, 0x51A7_0000 + (k as u64) * 1000);
        let sigma_mean = (theorem2_variance_bound(ec) / TRIALS as f64).sqrt();
        assert!(
            (stats.mean() - ec).abs() <= 3.0 * sigma_mean,
            "{params}: measured mean {} vs Lemma 4 EC {ec} (3σ = {})",
            stats.mean(),
            3.0 * sigma_mean
        );
    }
}

/// Theorem 1 must dominate — and by the documented margin. On the
/// plateau the n-term is negligible, so the bound-to-exact ratio is
/// essentially `5 / (2^r · γ_bucket)` ≈ 27.7 on this grid; the (24, 32)
/// window fails if the constant 5 drifts by even ±1 or the exponent
/// `p + cap − 1 + r` changes.
#[test]
fn theorem1_dominates_with_the_documented_slack() {
    for (k, params) in grid().into_iter().enumerate() {
        let ec = expected_collisions(params, N_ITEMS as f64, N_ITEMS as f64);
        let bound = theorem1_bound(params, N_ITEMS as f64);
        assert!(ec <= bound, "{params}: exact {ec} above bound {bound}");

        let ratio = bound / ec;
        assert!(
            (24.0..32.0).contains(&ratio),
            "{params}: bound/exact ratio {ratio} outside the pinned window"
        );

        // The measurement itself must also sit below the bound.
        let stats = measure(params, 0x51A7_1000 + (k as u64) * 1000);
        assert!(
            stats.mean() < bound,
            "{params}: measured mean {} above Theorem 1 bound {bound}",
            stats.mean()
        );
    }
}

/// Theorem 2: the sample variance of `C` respects `(EC)² + EC`. The true
/// variance is near-Poisson (≈ EC), well under the bound, so a modest
/// tolerance for 96-trial sampling noise still leaves the assertion
/// sharp enough to catch variance-inflating register bugs.
#[test]
fn collision_variance_respects_theorem2() {
    for (k, params) in grid().into_iter().enumerate() {
        let ec = expected_collisions(params, N_ITEMS as f64, N_ITEMS as f64);
        let var_bound = theorem2_variance_bound(ec);
        let stats = measure(params, 0x51A7_2000 + (k as u64) * 1000);
        assert!(
            stats.sample_variance() <= var_bound * 1.5,
            "{params}: sample variance {} vs Theorem 2 bound {var_bound}",
            stats.sample_variance()
        );
        // Collisions do occur at these parameters; a zero variance would
        // mean the counting harness is broken.
        assert!(stats.sample_variance() > 0.0, "{params}: degenerate sweep");
    }
}
