//! Lightweight syntactic analysis layered on the lossless lexer.
//!
//! [`FileModel::build`] turns one lexed file into the structures the
//! concurrency and protocol-conformance rules reason about:
//!
//! * **const definitions** with module-qualified names (`op::PUT`) and,
//!   where the initializer is an integer literal or simple arithmetic
//!   over literals (`16 * 1024`, `1 << 20`), the evaluated value;
//! * **per-function models** — call sites with normalized callee and
//!   receiver names, `let`-binding and block-scope information (so a
//!   guard's lexical live region is computable), loop headers with
//!   their kind and condition shape, and `drop(var)` sites;
//! * **match models** — the qualified paths referenced by each arm's
//!   *pattern* (never its value expression), plus a wildcard flag, for
//!   the opcode-exhaustiveness check.
//!
//! This is deliberately not a full Rust parser. It never fails: on
//! input it cannot make sense of it records less, not wrong — brace
//! matching saturates at end-of-region, unknown initializers evaluate
//! to `None`, and unrecognized statements contribute no model. The
//! rules built on top are tuned so "less" degrades to silence, and the
//! firing fixtures in `tests/rules.rs` pin the shapes that must keep
//! being seen.

use crate::lexer::{ident_name, TokenKind};
use crate::source::SourceFile;

/// One source file plus everything the engine derived from it. The
/// workspace passes (lock-order, wire-drift, …) operate on slices of
/// these, one per file of a crate.
pub struct ParsedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Binary source (`src/main.rs` or `src/bin/**`).
    pub is_bin: bool,
    pub src: SourceFile,
    pub model: FileModel,
}

/// The syntactic model of one file.
#[derive(Debug, Default)]
pub struct FileModel {
    pub consts: Vec<ConstDef>,
    pub fns: Vec<FnModel>,
    pub matches: Vec<MatchModel>,
}

/// A `const NAME: T = expr;` item (module- or body-level).
#[derive(Debug)]
pub struct ConstDef {
    /// Module-qualified within the file: `op::PUT` for a const inside
    /// `mod op`. Bare name at file top level.
    pub name: String,
    pub line: usize,
    /// Evaluated value when the initializer is an integer literal or
    /// simple literal arithmetic (`+ - * << >>`, parens); `None` when
    /// it references other names — such a const is not *comparable*,
    /// and the drift check skips it rather than guessing.
    pub value: Option<i128>,
}

/// One function (or method), including nested closures' statements but
/// excluding nested named `fn` items (those get their own model).
#[derive(Debug, Default)]
pub struct FnModel {
    pub name: String,
    /// Line of the `fn` keyword.
    pub start_line: usize,
    /// Line of the body's closing `}` (== start_line for body-less
    /// trait signatures).
    pub end_line: usize,
    /// Flattened return-type text, empty when the function returns `()`.
    pub ret_type: String,
    pub calls: Vec<CallSite>,
    pub loops: Vec<LoopModel>,
    pub drops: Vec<DropCall>,
}

/// A call expression: `callee(...)` or `recv.callee(...)`.
#[derive(Debug)]
pub struct CallSite {
    /// Last path segment of the callee, raw-ident prefix stripped:
    /// `thread::sleep(..)` → `sleep`, `stream.r#try(..)` → `try`.
    pub callee: String,
    /// For method calls, the receiver's final field name with any
    /// indexing stripped: `self.trackers[g].lock()` → `trackers`.
    pub receiver: Option<String>,
    pub line: usize,
    /// `let` variable the call's result is bound to, when the call is a
    /// top-level part of a `let` initializer.
    pub bound_var: Option<String>,
    /// Line of the `}` closing the block the statement lives in — the
    /// lexical end of any binding this call produced.
    pub scope_end: usize,
    /// The result is consumed in place by a further `.method(...)`
    /// (`shared.queue().len()`): any guard it returned is a temporary.
    pub chained: bool,
}

/// A `drop(var)` statement.
#[derive(Debug)]
pub struct DropCall {
    pub var: String,
    pub line: usize,
}

/// What kind of loop a header introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    Loop,
    While,
    WhileLet,
    For,
}

/// One loop, with enough of its header shape to judge boundedness.
#[derive(Debug)]
pub struct LoopModel {
    pub kind: LoopKind,
    /// Line of the `loop` / `while` / `for` keyword.
    pub header_line: usize,
    /// Line of the body's closing `}`.
    pub end_line: usize,
    /// Does a `while` condition contain a comparison operator
    /// (`< > <= >= == !=`)? Comparison-headed loops visibly march a
    /// counter toward a bound; comparison-free ones are suspects.
    pub cond_has_comparison: bool,
}

/// One `match` expression: the qualified paths its arm patterns
/// reference, for the opcode-group exhaustiveness check.
#[derive(Debug)]
pub struct MatchModel {
    pub line: usize,
    /// Normalized (last-two-segment) paths in arm patterns:
    /// `proto::op::PUT =>` records `op::PUT`.
    pub pattern_paths: Vec<String>,
    pub has_wildcard: bool,
}

/// Normalize a `::`-path to its last two segments: `serve::proto::op::PUT`
/// → `op::PUT`; a bare name stays bare. Const definitions and pattern
/// references meet on this form regardless of import style.
pub fn normalize_path(path: &str) -> String {
    let segs: Vec<&str> = path.split("::").collect();
    if segs.len() >= 2 {
        format!("{}::{}", segs[segs.len() - 2], segs[segs.len() - 1])
    } else {
        path.to_string()
    }
}

impl ParsedFile {
    pub fn parse(rel: &str, is_bin: bool, text: &str) -> Self {
        let src = SourceFile::parse(text);
        let model = FileModel::build(&src);
        Self { rel: rel.to_string(), is_bin, src, model }
    }
}

/// A code token: text, line, kind (whitespace and comments filtered).
struct Tok<'a> {
    text: &'a str,
    line: usize,
    kind: TokenKind,
}

impl FileModel {
    pub fn build(src: &SourceFile) -> Self {
        let toks: Vec<Tok<'_>> = src
            .tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|t| Tok { text: t.text(&src.text), line: t.line, kind: t.kind })
            .collect();
        let mut p = Parser { toks, model: FileModel::default() };
        let end = p.toks.len();
        let mut mod_path = Vec::new();
        p.parse_items(0, end, &mut mod_path);
        p.model
    }
}

/// Rust keywords that look like a call when followed by `(`.
const NON_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "fn", "let", "move",
    "ref", "in", "as", "else", "unsafe", "dyn", "impl", "where", "pub", "use", "mod", "const",
    "static", "struct", "enum", "trait", "crate", "super", "self", "Self", "mut", "box", "await",
];

struct Parser<'a> {
    toks: Vec<Tok<'a>>,
    model: FileModel,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text)
    }

    fn line(&self, i: usize) -> usize {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    /// Index of the `}` matching the `{` at `open`, saturating to
    /// `hi - 1` when unmatched (the model must degrade, never panic).
    fn match_brace(&self, open: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < hi {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        hi.saturating_sub(1)
    }

    /// Scan forward from `i` to the first occurrence of `stop` at zero
    /// `()[]{}` depth, returning its index (or `hi` if absent).
    fn find_at_depth0(&self, mut i: usize, hi: usize, stop: &[&str]) -> usize {
        let mut depth = 0usize;
        while i < hi {
            let t = self.text(i);
            if depth == 0 && stop.contains(&t) {
                return i;
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                _ => {}
            }
            i += 1;
        }
        hi
    }

    /// Item-level walk: `mod` nesting (for const qualification), const
    /// definitions, and functions. Everything else is transparent —
    /// `impl`/`trait` braces are walked through, not modeled.
    fn parse_items(&mut self, lo: usize, hi: usize, mod_path: &mut Vec<String>) {
        let mut i = lo;
        while i < hi {
            match self.text(i) {
                "mod" if self.is_ident(i + 1) && self.text(i + 2) == "{" => {
                    let close = self.match_brace(i + 2, hi);
                    mod_path.push(ident_name(self.text(i + 1)).to_string());
                    self.parse_items(i + 3, close, mod_path);
                    mod_path.pop();
                    i = close + 1;
                }
                "const" if self.is_ident(i + 1) => {
                    i = self.parse_const(i, hi, mod_path);
                }
                "fn" if self.is_ident(i + 1) => {
                    i = self.parse_fn(i, hi, mod_path);
                }
                _ => i += 1,
            }
        }
    }

    /// `const NAME: T = expr;` → record, return index past the `;`.
    fn parse_const(&mut self, i: usize, hi: usize, mod_path: &[String]) -> usize {
        let name = ident_name(self.text(i + 1)).to_string();
        let line = self.line(i);
        let semi = self.find_at_depth0(i + 2, hi, &[";"]);
        let eq = self.find_at_depth0(i + 2, semi, &["="]);
        let value = if eq < semi { self.eval_const_expr(eq + 1, semi) } else { None };
        let qualified = if mod_path.is_empty() {
            name
        } else {
            format!("{}::{name}", mod_path.join("::"))
        };
        self.model.consts.push(ConstDef { name: qualified, line, value });
        semi + 1
    }

    /// Evaluate `+ - * << >>` over integer literals; `None` on anything
    /// else (idents, calls, floats).
    fn eval_const_expr(&self, lo: usize, hi: usize) -> Option<i128> {
        let mut pos = lo;
        let v = self.eval_shift(&mut pos, hi)?;
        if pos == hi {
            Some(v)
        } else {
            None
        }
    }

    fn eval_shift(&self, pos: &mut usize, hi: usize) -> Option<i128> {
        let mut acc = self.eval_add(pos, hi)?;
        while *pos + 1 < hi {
            let (a, b) = (self.text(*pos), self.text(*pos + 1));
            if (a, b) == ("<", "<") {
                *pos += 2;
                let rhs = self.eval_add(pos, hi)?;
                acc = acc.checked_shl(u32::try_from(rhs).ok()?)?;
            } else if (a, b) == (">", ">") {
                *pos += 2;
                let rhs = self.eval_add(pos, hi)?;
                acc = acc.checked_shr(u32::try_from(rhs).ok()?)?;
            } else {
                break;
            }
        }
        Some(acc)
    }

    fn eval_add(&self, pos: &mut usize, hi: usize) -> Option<i128> {
        let mut acc = self.eval_mul(pos, hi)?;
        while *pos < hi {
            match self.text(*pos) {
                "+" => {
                    *pos += 1;
                    acc = acc.checked_add(self.eval_mul(pos, hi)?)?;
                }
                "-" => {
                    *pos += 1;
                    acc = acc.checked_sub(self.eval_mul(pos, hi)?)?;
                }
                _ => break,
            }
        }
        Some(acc)
    }

    fn eval_mul(&self, pos: &mut usize, hi: usize) -> Option<i128> {
        let mut acc = self.eval_atom(pos, hi)?;
        while *pos < hi && self.text(*pos) == "*" {
            *pos += 1;
            acc = acc.checked_mul(self.eval_atom(pos, hi)?)?;
        }
        Some(acc)
    }

    fn eval_atom(&self, pos: &mut usize, hi: usize) -> Option<i128> {
        if *pos >= hi {
            return None;
        }
        match self.text(*pos) {
            "(" => {
                *pos += 1;
                let v = self.eval_shift(pos, hi)?;
                if self.text(*pos) != ")" {
                    return None;
                }
                *pos += 1;
                Some(v)
            }
            "-" => {
                *pos += 1;
                Some(-self.eval_atom(pos, hi)?)
            }
            _ => {
                let t = self.toks.get(*pos)?;
                if t.kind != TokenKind::Number {
                    return None;
                }
                *pos += 1;
                parse_int_literal(t.text)
            }
        }
    }

    /// `fn name<..>(..) -> Ret { body }` → build an [`FnModel`], return
    /// the index past the body (or past `;` for signatures).
    fn parse_fn(&mut self, i: usize, hi: usize, mod_path: &mut Vec<String>) -> usize {
        let name = ident_name(self.text(i + 1)).to_string();
        let start_line = self.line(i);
        let mut j = i + 2;
        // Generic parameters: `<` … `>` with `->`'s `>` excluded.
        if self.text(j) == "<" {
            let mut angle = 0i32;
            while j < hi {
                match self.text(j) {
                    "<" => angle += 1,
                    ">" if self.text(j.wrapping_sub(1)) != "-" => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Parameter list.
        if self.text(j) != "(" {
            return i + 2; // not a shape we model; resume scanning
        }
        let mut depth = 0usize;
        while j < hi {
            match self.text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // Return type: `->` up to the body `{`, a `;`, or `where`.
        let mut ret_type = String::new();
        if self.text(j) == "-" && self.text(j + 1) == ">" {
            j += 2;
            while j < hi && !matches!(self.text(j), "{" | ";" | "where") {
                if !ret_type.is_empty() {
                    ret_type.push(' ');
                }
                ret_type.push_str(self.text(j));
                j += 1;
            }
        }
        while j < hi && !matches!(self.text(j), "{" | ";") {
            j += 1; // where-clause
        }
        if self.text(j) == ";" {
            self.model.fns.push(FnModel {
                name,
                start_line,
                end_line: start_line,
                ret_type,
                ..FnModel::default()
            });
            return j + 1;
        }
        if self.text(j) != "{" {
            return j.max(i + 2);
        }
        let close = self.match_brace(j, hi);
        let mut fnm = FnModel {
            name,
            start_line,
            end_line: self.line(close),
            ret_type,
            ..FnModel::default()
        };
        self.parse_body(j + 1, close, &mut fnm, mod_path);
        self.model.fns.push(fnm);
        close + 1
    }

    /// Walk a function body recording calls, loops, drops, `let`
    /// bindings and `match` patterns. Nested named `fn` items recurse
    /// into their own models; closures stay part of this one.
    fn parse_body(&mut self, lo: usize, hi: usize, fnm: &mut FnModel, mod_path: &mut Vec<String>) {
        // Innermost-block tracking: `open_stack` holds indices of open
        // braces; `scope_end(i)` is the close line of the innermost.
        let mut open_stack: Vec<usize> = Vec::new();
        // Precompute close lines for every `{` in the region.
        let mut close_line: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        {
            let mut stack = Vec::new();
            for k in lo..hi {
                match self.text(k) {
                    "{" => stack.push(k),
                    "}" => {
                        if let Some(o) = stack.pop() {
                            close_line.insert(o, self.line(k));
                        }
                    }
                    _ => {}
                }
            }
            for o in stack {
                close_line.insert(o, self.line(hi.saturating_sub(1)));
            }
        }
        let body_end_line = self.line(hi.min(self.toks.len().saturating_sub(1)));
        // Active `let` binding: (var, token index of its `;`, brace
        // depth at which top-level initializer calls bind to it).
        let mut active_let: Option<(String, usize, usize)> = None;
        let mut i = lo;
        while i < hi {
            let t = self.text(i);
            match t {
                "{" => {
                    open_stack.push(i);
                    i += 1;
                }
                "}" => {
                    open_stack.pop();
                    i += 1;
                }
                "fn" if self.is_ident(i + 1) => {
                    i = self.parse_fn(i, hi, mod_path);
                }
                "const" if self.is_ident(i + 1) => {
                    i = self.parse_const(i, hi, mod_path);
                }
                "let" => {
                    let mut j = i + 1;
                    if self.text(j) == "mut" {
                        j += 1;
                    }
                    // First ident of the pattern names the binding (for
                    // tuple patterns: the first element).
                    let mut var = None;
                    let stop = self.find_at_depth0(j, hi, &["=", ";"]);
                    for k in j..stop {
                        if self.is_ident(k) && !NON_CALLEES.contains(&self.text(k)) {
                            var = Some(ident_name(self.text(k)).to_string());
                            break;
                        }
                    }
                    if self.text(stop) == "=" {
                        let semi = self.find_at_depth0(stop + 1, hi, &[";"]);
                        if let Some(v) = var {
                            active_let = Some((v, semi, open_stack.len()));
                        }
                        i = stop + 1;
                    } else {
                        i = stop + 1;
                    }
                }
                "loop" | "while" | "for" => {
                    i = self.parse_loop(i, hi, fnm, &close_line);
                }
                "match" => {
                    self.scan_match(i, hi);
                    i += 1;
                }
                _ => {
                    if self.is_ident(i) && self.text(i + 1) == "(" && !NON_CALLEES.contains(&t) {
                        self.record_call(i, hi, fnm, &open_stack, &close_line, body_end_line, &active_let);
                    }
                    i += 1;
                }
            }
            if let Some((_, semi, _)) = &active_let {
                if i > *semi {
                    active_let = None;
                }
            }
        }
    }

    /// Record the call whose callee ident sits at `i` (next token `(`).
    #[allow(clippy::too_many_arguments)]
    fn record_call(
        &mut self,
        i: usize,
        hi: usize,
        fnm: &mut FnModel,
        open_stack: &[usize],
        close_line: &std::collections::BTreeMap<usize, usize>,
        body_end_line: usize,
        active_let: &Option<(String, usize, usize)>,
    ) {
        let callee = ident_name(self.text(i)).to_string();
        let line = self.line(i);
        // Receiver: walk back across `.`-chains, `[...]` indexing and
        // `(...)` calls to the nearest field/variable ident.
        let receiver = if self.text(i.wrapping_sub(1)) == "." {
            let mut k = i.wrapping_sub(2);
            loop {
                match self.text(k) {
                    "]" => {
                        let mut d = 0usize;
                        while k > 0 {
                            match self.text(k) {
                                "]" => d += 1,
                                "[" => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k = k.wrapping_sub(1);
                        }
                        k = k.wrapping_sub(1);
                    }
                    ")" => {
                        let mut d = 0usize;
                        while k > 0 {
                            match self.text(k) {
                                ")" => d += 1,
                                "(" => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k = k.wrapping_sub(1);
                        }
                        k = k.wrapping_sub(1);
                    }
                    _ => break,
                }
            }
            if self.is_ident(k) && self.text(k) != "self" {
                Some(ident_name(self.text(k)).to_string())
            } else {
                None
            }
        } else {
            None
        };
        // Find the call's closing paren to detect in-place chaining.
        let mut depth = 0usize;
        let mut k = i + 1;
        while k < hi {
            match self.text(k) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let mut after = k + 1;
        if self.text(after) == "?" {
            after += 1;
        }
        let chained = self.text(after) == ".";
        let scope_end = open_stack
            .last()
            .and_then(|o| close_line.get(o).copied())
            .unwrap_or(body_end_line);
        let bound_var = match active_let {
            Some((var, semi, at_depth)) if i < *semi && open_stack.len() == *at_depth => {
                Some(var.clone())
            }
            _ => None,
        };
        if callee == "drop" && self.is_ident(i + 2) && self.text(i + 3) == ")" {
            fnm.drops
                .push(DropCall { var: ident_name(self.text(i + 2)).to_string(), line });
        }
        fnm.calls.push(CallSite { callee, receiver, line, bound_var, scope_end, chained });
    }

    /// Record a loop header at `i`; returns the index of the body `{`
    /// plus one (the body itself is walked by the caller's loop so its
    /// calls and nested loops are recorded normally).
    fn parse_loop(
        &mut self,
        i: usize,
        hi: usize,
        fnm: &mut FnModel,
        close_line: &std::collections::BTreeMap<usize, usize>,
    ) -> usize {
        let header_line = self.line(i);
        let kw = self.text(i);
        let (kind, body_open) = match kw {
            "loop" => (LoopKind::Loop, i + 1),
            "for" => {
                let open = self.find_paren_free_brace(i + 1, hi);
                (LoopKind::For, open)
            }
            _ => {
                // `while` / `while let`.
                if self.text(i + 1) == "let" {
                    (LoopKind::WhileLet, self.find_paren_free_brace(i + 2, hi))
                } else {
                    (LoopKind::While, self.find_paren_free_brace(i + 1, hi))
                }
            }
        };
        if self.text(body_open) != "{" {
            return i + 1;
        }
        let mut cond_has_comparison = false;
        if kind == LoopKind::While {
            let mut k = i + 1;
            while k < body_open {
                match self.text(k) {
                    "<" | ">" => cond_has_comparison = true,
                    "=" if matches!(self.text(k.wrapping_sub(1)), "=" | "!" | "<" | ">") => {
                        cond_has_comparison = true;
                    }
                    _ => {}
                }
                k += 1;
            }
            // `while true { … }` is sugar for `loop`.
            if body_open == i + 2 && self.text(i + 1) == "true" {
                cond_has_comparison = false;
            }
        }
        let end_line = close_line.get(&body_open).copied().unwrap_or_else(|| {
            let c = self.match_brace(body_open, hi);
            self.line(c)
        });
        fnm.loops.push(LoopModel { kind, header_line, end_line, cond_has_comparison });
        i + 1
    }

    /// First `{` at zero `()[]` depth — the body of a `while`/`for`
    /// header (struct literals are not legal there unparenthesized).
    fn find_paren_free_brace(&self, mut i: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        while i < hi {
            match self.text(i) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => return i,
                _ => {}
            }
            i += 1;
        }
        hi
    }

    /// Read-only scan of a `match` at `i`: collect the qualified paths
    /// referenced by arm *patterns* (values are skipped balanced, so a
    /// nested match's patterns are not attributed to this one).
    fn scan_match(&mut self, i: usize, hi: usize) {
        let line = self.line(i);
        let open = self.find_paren_free_brace(i + 1, hi);
        if self.text(open) != "{" {
            return;
        }
        let close = self.match_brace(open, hi);
        let mut pattern_paths = Vec::new();
        let mut has_wildcard = false;
        let mut k = open + 1;
        while k < close {
            // Pattern region: up to `=>` at depth 0.
            let arrow = {
                let mut depth = 0usize;
                let mut a = k;
                let mut found = close;
                while a < close {
                    match self.text(a) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "=" if depth == 0 && self.text(a + 1) == ">" => {
                            found = a;
                            break;
                        }
                        _ => {}
                    }
                    a += 1;
                }
                found
            };
            if arrow >= close {
                break;
            }
            // Collect paths and wildcards from the pattern.
            let mut a = k;
            while a < arrow {
                if self.text(a) == "_" {
                    has_wildcard = true;
                    a += 1;
                    continue;
                }
                if self.is_ident(a) && !NON_CALLEES.contains(&self.text(a)) {
                    let mut path = ident_name(self.text(a)).to_string();
                    let mut b = a + 1;
                    while self.text(b) == ":"
                        && self.text(b + 1) == ":"
                        && self.is_ident(b + 2)
                    {
                        path.push_str("::");
                        path.push_str(ident_name(self.text(b + 2)));
                        b += 3;
                    }
                    pattern_paths.push(normalize_path(&path));
                    a = b;
                    continue;
                }
                a += 1;
            }
            // Skip the arm value: a balanced `{}` block, or tokens to
            // the next `,` at depth 0.
            let mut v = arrow + 2;
            if self.text(v) == "{" {
                v = self.match_brace(v, close) + 1;
                if self.text(v) == "," {
                    v += 1;
                }
            } else {
                let mut depth = 0usize;
                while v < close {
                    match self.text(v) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "," if depth == 0 => {
                            v += 1;
                            break;
                        }
                        _ => {}
                    }
                    v += 1;
                }
            }
            k = v;
        }
        self.model.matches.push(MatchModel { line, pattern_paths, has_wildcard });
    }
}

/// Parse a Rust integer literal (radix prefixes, `_` separators, type
/// suffix) to a value; `None` for floats or malformed text.
fn parse_int_literal(text: &str) -> Option<i128> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(hex) = clean.strip_prefix("0x").or(clean.strip_prefix("0X")) {
        (hex, 16)
    } else if let Some(oct) = clean.strip_prefix("0o").or(clean.strip_prefix("0O")) {
        (oct, 8)
    } else if let Some(bin) = clean.strip_prefix("0b").or(clean.strip_prefix("0B")) {
        (bin, 2)
    } else {
        (clean.as_str(), 10)
    };
    // Strip a type suffix (`u8`…`usize`, `i8`…`isize`).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    // Anything after the digits must be a valid integer suffix, not a
    // float marker.
    let suffix = &digits[end..];
    if !suffix.is_empty() && !suffix.starts_with('u') && !suffix.starts_with('i') {
        return None;
    }
    i128::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build(&SourceFile::parse(src))
    }

    #[test]
    fn consts_qualify_and_evaluate() {
        let m = model(
            "pub const A: usize = 16 * 1024;\n\
             mod op {\n    pub const PUT: u8 = 1;\n    pub const GET: u8 = 0x2;\n}\n\
             pub const B: usize = A + 1;\n\
             pub const C: usize = 1 << 20;\n",
        );
        let by_name: std::collections::BTreeMap<_, _> =
            m.consts.iter().map(|c| (c.name.as_str(), c.value)).collect();
        assert_eq!(by_name["A"], Some(16 * 1024));
        assert_eq!(by_name["op::PUT"], Some(1));
        assert_eq!(by_name["op::GET"], Some(2));
        assert_eq!(by_name["B"], None, "ident-referencing initializer is not comparable");
        assert_eq!(by_name["C"], Some(1 << 20));
    }

    #[test]
    fn fn_models_capture_calls_and_scopes() {
        let m = model(
            "fn f(s: &Shared) {\n\
             \x20   let mut queue = s.queue.lock();\n\
             \x20   queue.push(1);\n\
             \x20   drop(queue);\n\
             \x20   write_frame(s);\n\
             }\n",
        );
        assert_eq!(m.fns.len(), 1);
        let f = &m.fns[0];
        let lock = f.calls.iter().find(|c| c.callee == "lock").expect("lock call");
        assert_eq!(lock.receiver.as_deref(), Some("queue"));
        assert_eq!(lock.bound_var.as_deref(), Some("queue"));
        assert_eq!(lock.scope_end, 6);
        assert!(!lock.chained);
        assert_eq!(f.drops.len(), 1);
        assert_eq!(f.drops[0].var, "queue");
        assert_eq!(f.drops[0].line, 4);
    }

    #[test]
    fn chained_guard_is_a_temporary() {
        let m = model("fn f(s: &S) -> usize {\n    s.queue.lock().len()\n}\n");
        let lock = m.fns[0].calls.iter().find(|c| c.callee == "lock").unwrap();
        assert!(lock.chained);
        assert!(lock.bound_var.is_none());
    }

    #[test]
    fn indexed_receiver_normalizes_to_field() {
        let m = model("fn f(&self, g: usize) {\n    let t = self.trackers[g].lock();\n    t.go();\n}\n");
        let lock = m.fns[0].calls.iter().find(|c| c.callee == "lock").unwrap();
        assert_eq!(lock.receiver.as_deref(), Some("trackers"));
        assert_eq!(lock.bound_var.as_deref(), Some("t"));
    }

    #[test]
    fn loops_classify_by_header_shape() {
        let m = model(
            "fn f(stop: &B, xs: &[u8]) {\n\
             \x20   loop {\n        body();\n    }\n\
             \x20   while !stop.load() {\n        body();\n    }\n\
             \x20   while next < xs.len() {\n        body();\n    }\n\
             \x20   while let Some(x) = it.next() {\n        body();\n    }\n\
             \x20   for x in xs {\n        body();\n    }\n\
             }\n",
        );
        let kinds: Vec<(LoopKind, bool)> =
            m.fns[0].loops.iter().map(|l| (l.kind, l.cond_has_comparison)).collect();
        assert_eq!(
            kinds,
            vec![
                (LoopKind::Loop, false),
                (LoopKind::While, false),
                (LoopKind::While, true),
                (LoopKind::WhileLet, false),
                (LoopKind::For, false),
            ]
        );
        assert!(m.fns[0].loops.iter().all(|l| l.end_line > l.header_line));
    }

    #[test]
    fn match_patterns_collect_paths_not_values() {
        let m = model(
            "fn f(b: u8) -> R {\n\
             \x20   match b {\n\
             \x20       op::PUT => handle(op::GET),\n\
             \x20       proto::op::DELETE => {\n            match c { status::OK => x(), _ => y() }\n        }\n\
             \x20       _ => other(),\n\
             \x20   }\n\
             }\n",
        );
        assert_eq!(m.matches.len(), 2);
        let outer = &m.matches[0];
        assert!(outer.pattern_paths.contains(&"op::PUT".to_string()));
        assert!(outer.pattern_paths.contains(&"op::DELETE".to_string()), "{:?}", outer.pattern_paths);
        assert!(!outer.pattern_paths.contains(&"op::GET".to_string()), "arm values are not patterns");
        assert!(!outer.pattern_paths.contains(&"status::OK".to_string()), "nested match patterns stay theirs");
        assert!(outer.has_wildcard);
        let inner = &m.matches[1];
        assert!(inner.pattern_paths.contains(&"status::OK".to_string()));
    }

    #[test]
    fn guard_returning_fn_signature_is_visible() {
        let m = model(
            "impl Shared {\n\
             \x20   fn queue(&self) -> MutexGuard<'_, VecDeque<TcpStream>> {\n\
             \x20       self.queue.lock().unwrap()\n\
             \x20   }\n\
             }\n",
        );
        assert_eq!(m.fns.len(), 1);
        assert!(m.fns[0].ret_type.contains("MutexGuard"));
        let lock = m.fns[0].calls.iter().find(|c| c.callee == "lock").unwrap();
        assert_eq!(lock.receiver.as_deref(), Some("queue"));
        assert!(lock.chained, "unwrap() consumes in place");
    }

    #[test]
    fn raw_identifiers_normalize() {
        let m = model("fn r#try(x: u8) {\n    r#match(x);\n}\n");
        assert_eq!(m.fns[0].name, "try");
        assert!(m.fns[0].calls.iter().any(|c| c.callee == "match"));
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in ["fn f( {", "match {", "const = ;", "}}}{{{", "fn <<>> (", "let = ="] {
            let _ = model(src);
        }
    }
}
