//! The rule set and the scaffolding rules share.
//!
//! Each rule is a pure function over one [`FileCtx`]: the scrubbed,
//! test-region-aware view of a source file plus the workspace config.
//! Rules are *workspace-native* — their heuristics are tuned to this
//! codebase's real hazard classes (LogLog register shifts, digest
//! slicing, fsync-before-rename), not to generic Rust. Where a
//! heuristic cannot see a bound that genuinely exists, the escape hatch
//! is an inline suppression with a written reason, which the engine
//! enforces.

use crate::config::Config;
use crate::diag::{Diagnostic, Severity};
use crate::source::SourceFile;

mod cast;
pub mod concurrency;
mod durability;
mod float;
pub mod netloop;
mod nondet;
mod panic;
mod shift;
pub mod wire;

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    /// Short crate name: the directory under `crates/`, or the root
    /// package name for the facade crate.
    pub crate_name: &'a str,
    /// Workspace-relative path, `/`-separated.
    pub path: &'a str,
    /// Binary source (`src/main.rs` or `src/bin/**`) — panic discipline
    /// does not apply there.
    pub is_bin: bool,
    pub src: &'a SourceFile,
    pub config: &'a Config,
}

impl<'a> FileCtx<'a> {
    /// Iterate `(1-based line number, scrubbed text)` over non-test lines.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.src
            .lines
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.src.test_lines.get(*i).copied().unwrap_or(false))
            .map(|(i, l)| (i + 1, l.as_str()))
    }

    /// A rule's string-list option, with a default.
    pub fn list_opt(&self, rule: &str, key: &str, default: &[&str]) -> Vec<String> {
        match self.config.get_list(&format!("rules.{rule}.{key}")) {
            Some(v) => v.to_vec(),
            None => default.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    pub fn int_opt(&self, rule: &str, key: &str, default: i64) -> i64 {
        self.config.get_int(&format!("rules.{rule}.{key}"), default)
    }

    pub fn str_opt(&self, rule: &str, key: &str, default: &str) -> String {
        self.config
            .get_str(&format!("rules.{rule}.{key}"))
            .map_or_else(|| default.to_string(), str::to_string)
    }

    pub fn error(&self, rule: &str, line: usize, col: usize, message: String) -> Diagnostic {
        Diagnostic::new(rule, Severity::Error, self.path, line, col, message)
    }
}

/// A lint rule.
pub trait Rule {
    fn name(&self) -> &'static str;
    /// One-line description for `hmh-lint rules` and the docs.
    fn describe(&self) -> &'static str;
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// The full rule set, in stable order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(shift::ShiftOverflowHazard),
        Box::new(cast::TruncatingCast),
        Box::new(panic::PanicInLib),
        Box::new(float::FloatEq),
        Box::new(nondet::Nondeterminism),
        Box::new(durability::Durability),
    ]
}

/// The syntactic workspace rules: they run over whole crates (or, for
/// `wire-drift`, the whole workspace) on the models from
/// [`crate::syntax`], not file by file. `(name, description)` pairs —
/// the check functions live in [`concurrency`], [`netloop`], [`wire`].
pub fn workspace_rules() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "lock-order",
            "lock acquisition graph per crate: re-acquisition, cycles, inconsistent order",
        ),
        (
            "blocking-under-lock",
            "sleep/join/channel-recv/dial reached while a MutexGuard is lexically live",
        ),
        (
            "unbounded-net-loop",
            "loop containing dial/frame I/O must show an attempt counter, budget or pacer",
        ),
        (
            "wire-drift",
            "opcode/cap/seed constants must agree across crates; opcode matches exhaustive",
        ),
    ]
}

/// Every rule name the engine accepts in `allow(...)` and `Lint.toml`,
/// including the workspace-level and engine-level checks that are not
/// per-file rules.
pub fn known_rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all_rules().iter().map(|r| r.name()).collect();
    names.extend(workspace_rules().iter().map(|(n, _)| *n));
    names.push("forbid-unsafe");
    names
}

// ---------------------------------------------------------------------
// Shared text helpers.
// ---------------------------------------------------------------------

/// Identifiers in an expression snippet (ASCII idents, keywords included).
pub fn idents_in(expr: &str) -> Vec<&str> {
    let bytes = expr.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'_' || b.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.push(&expr[start..i]);
        } else {
            i += 1;
        }
    }
    out
}

/// Word-boundary containment test for an identifier.
pub fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(at) = line[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let before_ok = start == 0 || {
            let c = bytes[start - 1];
            c != b'_' && !c.is_ascii_alphanumeric()
        };
        let after_ok = end == bytes.len() || {
            let c = bytes[end];
            c != b'_' && !c.is_ascii_alphanumeric()
        };
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Does a line look like it *establishes a bound* on one of `idents`?
/// Guard shapes: asserts, branch/loop headers naming the identifier,
/// `.min(...)`, a `%` reduction, a `&` mask, or a call whose contract
/// bounds its result (the configured `bounded_calls`).
pub fn line_guards(line: &str, idents: &[&str], bounded_calls: &[String]) -> bool {
    let mentions = idents.iter().any(|id| contains_word(line, id));
    if !mentions {
        return false;
    }
    const GUARD_TOKENS: &[&str] =
        &["assert", "if ", "if(", "match ", "while ", "for ", ".min(", "%", "& ", "&("];
    GUARD_TOKENS.iter().any(|t| line.contains(t))
        || bounded_calls.iter().any(|c| line.contains(c.as_str()))
}

/// Scan upward from `line_no` (inclusive) through at most `window`
/// lines looking for a guard on `idents`. The scan stops at a function
/// boundary — a guard in a *different* function bounds nothing here.
pub fn guarded_within(
    src: &SourceFile,
    line_no: usize,
    window: usize,
    idents: &[&str],
    bounded_calls: &[String],
) -> bool {
    for back in 0..=window {
        let Some(n) = line_no.checked_sub(back) else { break };
        if n == 0 {
            break;
        }
        let line = src.line(n);
        if line_guards(line, idents, bounded_calls) {
            return true;
        }
        // Function boundary (checked after the guard test: the header
        // itself may carry the bound, e.g. a `where` clause or an
        // argument pattern — and the hazard line `back == 0` is never a
        // boundary for itself).
        if back > 0 {
            let trimmed = line.trim_start();
            if trimmed.starts_with("fn ")
                || trimmed.starts_with("pub fn ")
                || trimmed.starts_with("pub(crate) fn ")
                || trimmed.starts_with("pub(super) fn ")
            {
                break;
            }
        }
    }
    false
}

/// Match a balanced `(...)` group starting at `open` (which must index a
/// `(`), returning the text inside the parens.
pub fn balanced_group(line: &str, open: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    if bytes.get(open) != Some(&b'(') {
        return None;
    }
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&line[open + 1..i]);
                }
            }
            _ => {}
        }
    }
    None
}
