//! `float-eq` — exact equality on floating-point values.
//!
//! The estimator stack (Algorithms 3–6: HLL head, collision correction,
//! Jaccard, intersection) is float arithmetic end to end. `==`/`!=`
//! against a computed float is order-of-evaluation-dependent and breaks
//! under `-ffast-math`-style reassociation or a refactor that changes
//! summation order (the Kahan module exists precisely because order
//! matters). Comparisons against *exactly representable sentinels*
//! (`0.0`, `1.0` — the configured `allow_literals`) are the idiom this
//! codebase uses for "is this the degenerate case" guards and are
//! allowed. Comparing with `NAN` is flagged unconditionally: it is
//! always false and therefore always a bug.

use super::{FileCtx, Rule};
use crate::diag::Diagnostic;

pub struct FloatEq;

const NAME: &str = "float-eq";

impl Rule for FloatEq {
    fn name(&self) -> &'static str {
        NAME
    }

    fn describe(&self) -> &'static str {
        "==/!= on floats outside the sentinel guards (0.0, 1.0); NAN comparisons always flagged"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let allowed = ctx.list_opt(NAME, "allow_literals", &["0.0", "1.0", "-1.0"]);
        for (line_no, line) in ctx.code_lines() {
            // Segment the line at boolean/statement boundaries so a float
            // literal elsewhere on the line cannot taint an integer
            // comparison (and vice versa).
            let mut seg_start = 0usize;
            for (end, boundary) in segment_boundaries(line) {
                let seg = &line[seg_start..end];
                check_segment(ctx, line_no, seg_start, seg, &allowed, out);
                seg_start = end + boundary;
            }
        }
    }
}

/// Yields `(byte_offset, boundary_len)` for each segment split point,
/// plus a final `(line.len(), 0)`.
fn segment_boundaries(line: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if i + 1 < bytes.len() && (&bytes[i..i + 2] == b"&&" || &bytes[i..i + 2] == b"||") {
            out.push((i, 2));
            i += 2;
            continue;
        }
        if bytes[i] == b',' || bytes[i] == b';' || bytes[i] == b'{' || bytes[i] == b'}' {
            out.push((i, 1));
        }
        i += 1;
    }
    out.push((line.len(), 0));
    out
}

fn check_segment(
    ctx: &FileCtx<'_>,
    line_no: usize,
    seg_offset: usize,
    seg: &str,
    allowed: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let cmp_at = find_comparison(seg);
    let Some(cmp) = cmp_at else { return };
    if seg.contains("::NAN") {
        out.push(
            ctx.error(
                NAME,
                line_no,
                seg_offset + cmp + 1,
                "comparison with NAN is always false".to_string(),
            )
            .with_note("use `.is_nan()`".to_string()),
        );
        return;
    }
    for lit in float_literals(seg) {
        let canon = canonical_float(lit);
        if !allowed.iter().any(|a| a.as_str() == canon) {
            out.push(
                ctx.error(
                    NAME,
                    line_no,
                    seg_offset + cmp + 1,
                    format!("exact float comparison against `{lit}`"),
                )
                .with_note(
                    "compare with a tolerance, or restructure so the sentinel is exactly \
                     representable (0.0 / 1.0 guards are allowed)"
                        .to_string(),
                ),
            );
            return; // one finding per comparison segment
        }
    }
}

/// Offset of `==` or `!=` in the segment, excluding `<=`, `>=`, `=>`.
fn find_comparison(seg: &str) -> Option<usize> {
    let bytes = seg.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        let two = &bytes[i..i + 2];
        if two == b"!=" {
            return Some(i);
        }
        if two == b"==" {
            // Not `<==`-style (doesn't exist) and not the tail of `<=`/`>=`.
            let prev = i.checked_sub(1).map(|p| bytes[p]);
            if prev != Some(b'<') && prev != Some(b'>') && prev != Some(b'=') && prev != Some(b'!')
            {
                return Some(i);
            }
        }
    }
    None
}

/// Float-literal substrings in a scrubbed segment: `1.5`, `2e-3`, `3f64`.
fn float_literals(seg: &str) -> Vec<&str> {
    let bytes = seg.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit()
            && (i == 0 || {
                let p = bytes[i - 1];
                p != b'_' && p != b'.' && !p.is_ascii_alphanumeric()
            })
        {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let sign = usize::from(matches!(bytes.get(i + 1), Some(b'+' | b'-')));
                if bytes.get(i + 1 + sign).is_some_and(u8::is_ascii_digit) {
                    is_float = true;
                    i += 1 + sign;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            if seg[i..].starts_with("f32") || seg[i..].starts_with("f64") {
                is_float = true;
                i += 3;
            }
            if is_float {
                out.push(&seg[start..i]);
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Normalize a literal for the allow-list: strip `_` and float suffixes.
fn canonical_float(lit: &str) -> String {
    lit.replace('_', "").trim_end_matches("f64").trim_end_matches("f32").to_string()
}
