//! `truncating-cast` — narrowing `as` casts with no adjacent mask.
//!
//! `x as u32` keeps the low 32 bits and throws the rest away without a
//! trace. In digest-slicing and register-packing code that is exactly
//! how a 128-bit hash silently loses entropy or a length field silently
//! lies (a `name.len() as u16` on a 70 KiB name writes a plausible,
//! wrong record). The rule accepts a narrowing cast when the bound is
//! *visible*: the operand is masked (`&`), reduced (`%`, `.min`,
//! `.clamp`), produced by a call whose contract bounds it
//! (`take_bits`, `params.p()` — the configured `bounded_calls`), is a
//! float rounding (saturating in Rust, not bit-truncating), is masked
//! immediately after the cast, or sits under an assert/branch naming it
//! within the enclosing lines.

use super::{guarded_within, idents_in, FileCtx, Rule};
use crate::diag::Diagnostic;

pub struct TruncatingCast;

const NAME: &str = "truncating-cast";

impl Rule for TruncatingCast {
    fn name(&self) -> &'static str {
        NAME
    }

    fn describe(&self) -> &'static str {
        "narrowing `as u8/u16/u32` cast whose operand has no visible bound or mask"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let widths = ctx.list_opt(NAME, "widths", &["u8", "u16", "u32"]);
        let bounded = ctx.list_opt(NAME, "bounded_calls", &[]);
        let window = ctx.int_opt(NAME, "guard_window", 10).max(0) as usize;
        for (line_no, line) in ctx.code_lines() {
            for (pos, width) in narrowing_casts(line, &widths) {
                let operand = operand_before(line, pos);
                if operand.is_empty() || is_literal(operand) {
                    continue;
                }
                if operand_is_bounded(operand, &bounded) {
                    continue;
                }
                // Masked or clamped immediately after the cast:
                // `(v as u32) & mask`, `(x as u32).min(cap)` — closing
                // parens of the cast group don't break the adjacency.
                let after = line[pos + 4 + width.len()..].trim_start_matches([')', ' ']);
                if after.starts_with('&')
                    || after.starts_with(".min(")
                    || after.starts_with(".clamp(")
                {
                    continue;
                }
                let idents = idents_in(operand);
                if !idents.is_empty() && guarded_within(ctx.src, line_no, window, &idents, &bounded)
                {
                    continue;
                }
                out.push(
                    ctx.error(
                        NAME,
                        line_no,
                        pos + 1,
                        format!(
                            "truncating cast `{} as {width}` with no visible bound",
                            operand.trim()
                        ),
                    )
                    .with_note(
                        "a narrowing `as` cast drops high bits silently; mask the operand, \
                         bound it, or use try_into() so the overflow is an error"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

/// Positions of ` as <width>` casts: yields `(offset_of_space, width)`.
fn narrowing_casts<'a>(line: &str, widths: &'a [String]) -> Vec<(usize, &'a str)> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find(" as ") {
        let pos = from + rel;
        from = pos + 4;
        let rest = &line[pos + 4..];
        for w in widths {
            if let Some(tail) = rest.strip_prefix(w.as_str()) {
                let boundary =
                    tail.bytes().next().is_none_or(|c| c != b'_' && !c.is_ascii_alphanumeric());
                if boundary {
                    out.push((pos, w.as_str()));
                }
                break;
            }
        }
    }
    out
}

/// The expression text just before ` as `: a balanced `(...)` group with
/// any leading path (`params.mantissa_values()`), or a path/field chain
/// (`self.bits`, `label`).
fn operand_before(line: &str, as_pos: usize) -> &str {
    let bytes = line.as_bytes();
    let mut end = as_pos;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    loop {
        if start > 0 && bytes[start - 1] == b')' {
            // Walk back over a balanced group.
            let mut depth = 0usize;
            let mut i = start;
            while i > 0 {
                i -= 1;
                match bytes[i] {
                    b')' => depth += 1,
                    b'(' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if depth != 0 {
                break; // unbalanced on this line; give up gracefully
            }
            start = i;
            continue;
        }
        if start > 0
            && (bytes[start - 1] == b'_'
                || bytes[start - 1] == b'.'
                || bytes[start - 1] == b':'
                || bytes[start - 1].is_ascii_alphanumeric())
        {
            start -= 1;
            continue;
        }
        break;
    }
    &line[start..end]
}

fn is_literal(operand: &str) -> bool {
    !operand.is_empty()
        && operand
            .bytes()
            .all(|b| b.is_ascii_digit() || b == b'_' || b == b'x' || b.is_ascii_hexdigit())
        && operand.bytes().next().is_some_and(|b| b.is_ascii_digit())
}

fn operand_is_bounded(operand: &str, bounded_calls: &[String]) -> bool {
    const BOUNDING: &[&str] = &[
        "&",
        "%",
        ".min(",
        ".clamp(",
        ".floor(",
        ".round(",
        ".ceil(",
        ".trunc(",
        ".leading_zeros(",
        ".trailing_zeros(",
        ".count_ones(",
        "to_byte(",
    ];
    BOUNDING.iter().any(|t| operand.contains(t))
        || bounded_calls.iter().any(|c| operand.contains(c.as_str()))
}
