//! `durability` — writes and renames that skip the fsync discipline.
//!
//! The store's crash-safety contract (DESIGN.md §6.6) is
//! write-temp → `sync_all` → rename: a rename publishes whatever bytes
//! the filesystem got around to flushing, so renaming an unsynced file
//! can atomically install *garbage* after a power loss — the salvage
//! scanner exists because of exactly this window. In the configured
//! crates, a bare `fs::write` or any rename without a preceding
//! fsync-shaped call (`sync_all` / `sync_data` / `fsync` /
//! `atomic_write`, which encapsulates the discipline) within the same
//! function is flagged. The `Backend` trait's own primitives are the
//! sanctioned exceptions and carry inline suppressions explaining the
//! contract.

use super::{FileCtx, Rule};
use crate::diag::Diagnostic;

pub struct Durability;

const NAME: &str = "durability";

const HAZARDS: &[(&str, &str)] = &[
    ("fs::write(", "whole-file write with no fsync before it becomes visible"),
    ("fs::rename(", "rename publishes possibly-unsynced bytes"),
    (".rename(", "rename publishes possibly-unsynced bytes"),
];

const SYNC_TOKENS: &[&str] = &["sync_all", "sync_data", "fsync", "atomic_write"];

impl Rule for Durability {
    fn name(&self) -> &'static str {
        NAME
    }

    fn describe(&self) -> &'static str {
        "fs::write / rename without a preceding sync_all-shaped call in the same function"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let window = ctx.int_opt(NAME, "sync_window", 12).max(0) as usize;
        for (line_no, line) in ctx.code_lines() {
            for (needle, why) in HAZARDS {
                let Some(pos) = line.find(needle) else { continue };
                if synced_within(ctx, line_no, window) {
                    continue;
                }
                out.push(
                    ctx.error(
                        NAME,
                        line_no,
                        pos + 1,
                        format!(
                            "`{}` without a preceding fsync: {why}",
                            needle.trim_end_matches('(')
                        ),
                    )
                    .with_note(
                        "use atomic_write (write-temp + sync_all + rename), or fsync the \
                         source before renaming it into place"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

/// Any fsync-shaped call on this line or the `window` lines above it,
/// stopping at a function boundary.
fn synced_within(ctx: &FileCtx<'_>, line_no: usize, window: usize) -> bool {
    for back in 0..=window {
        let Some(n) = line_no.checked_sub(back) else { break };
        if n == 0 {
            break;
        }
        let line = ctx.src.line(n);
        if SYNC_TOKENS.iter().any(|t| line.contains(t)) {
            return true;
        }
        if back > 0 {
            let trimmed = line.trim_start();
            if trimmed.starts_with("fn ")
                || trimmed.starts_with("pub fn ")
                || trimmed.starts_with("pub(crate) fn ")
                || trimmed.starts_with("pub(super) fn ")
            {
                break;
            }
        }
    }
    false
}
