//! `panic-in-lib` — panicking calls in library code.
//!
//! A production sketch service must degrade, not die: `unwrap()` on a
//! merge of incompatible parameters takes the whole shard down, where a
//! `Result` would fail one request. Library crates therefore return
//! errors; the *documented* escape hatch for genuinely unreachable
//! states is `expect("invariant: …")` — the message prefix is the
//! machine-checked marker that someone wrote down *why* the state is
//! impossible, not just that they hoped it was. Bare `unwrap()`,
//! undocumented `expect()`, and `panic!`/`unreachable!`/`todo!`/
//! `unimplemented!` are flagged. Binary sources (`src/main.rs`,
//! `src/bin/**`) and the crates in `allow_crates` (CLI, bench drivers)
//! are exempt: a process entry point is allowed to die loudly.

use super::{FileCtx, Rule};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

pub struct PanicInLib;

const NAME: &str = "panic-in-lib";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Rule for PanicInLib {
    fn name(&self) -> &'static str {
        NAME
    }

    fn describe(&self) -> &'static str {
        "unwrap/undocumented expect/panic! in library code (use Result or `expect(\"invariant: …\")`)"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.is_bin {
            return;
        }
        let allow_crates = ctx.list_opt(NAME, "allow_crates", &[]);
        if allow_crates.iter().any(|c| c == ctx.crate_name) {
            return;
        }
        let prefix = ctx.str_opt(NAME, "invariant_prefix", "invariant: ");
        let text = &ctx.src.text;
        // Code tokens only (comments/whitespace out), indexed neighbors.
        let code: Vec<&crate::lexer::Token> = ctx
            .src
            .tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect();
        for (i, t) in code.iter().enumerate() {
            if t.kind != TokenKind::Ident || ctx.src.is_test_line(t.line) {
                continue;
            }
            let name = t.text(text);
            let prev_is_dot = i > 0 && code[i - 1].text(text) == ".";
            let next = |k: usize| code.get(i + k).map(|n| n.text(text));
            match name {
                "unwrap" if prev_is_dot && next(1) == Some("(") => {
                    out.push(
                        ctx.error(NAME, t.line, t.col, "`unwrap()` in library code".to_string())
                            .with_note(format!(
                                "return a Result, or use `expect(\"{prefix}…\")` documenting why \
                             this cannot fail"
                            )),
                    );
                }
                "expect" if prev_is_dot && next(1) == Some("(") => {
                    let msg_tok = code.get(i + 2);
                    let documented = msg_tok.is_some_and(|m| {
                        m.kind == TokenKind::Str
                            && m.text(text).trim_start_matches('"').starts_with(prefix.as_str())
                    });
                    if !documented {
                        out.push(
                            ctx.error(
                                NAME,
                                t.line,
                                t.col,
                                "`expect()` without a documented invariant".to_string(),
                            )
                            .with_note(format!(
                                "prefix the message with `{prefix}` and state why the value \
                                 is always present, or return a Result"
                            )),
                        );
                    }
                }
                _ if PANIC_MACROS.contains(&name) && !prev_is_dot && next(1) == Some("!") => {
                    out.push(
                        ctx.error(NAME, t.line, t.col, format!("`{name}!` in library code"))
                            .with_note(
                                "library crates surface failures as Result so callers choose \
                                 the blast radius"
                                    .to_string(),
                            ),
                    );
                }
                _ => {}
            }
        }
    }
}
