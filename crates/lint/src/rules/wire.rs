//! `wire-drift`: the wire protocol's constants must agree everywhere
//! they are restated, and opcode matches must be exhaustive.
//!
//! `serve::proto` is the protocol's home, but `replica`, `route`,
//! `ingest` and the client all restate pieces of it — opcode bytes,
//! frame caps, batch limits, hash seeds. Two restatements that drift
//! produce the worst failure class this repo has: both sides keep
//! running and the sketches silently stop converging (the CRDT merge
//! laws only hold on byte-identical frames). Two checks:
//!
//! * **constant drift** — collect every `const` whose module path is in
//!   `const_groups` (`op::`, `status::`) or whose bare name matches
//!   `name_patterns` (`PROTO_*`, `MAX_*`, `*_SEED`), across every
//!   scoped crate. Same normalized name + different evaluated value =
//!   one finding per divergent site, pointing at the first definition.
//!   Constants whose initializer the parser cannot evaluate to an
//!   integer are skipped, not guessed about.
//! * **match exhaustiveness** — a `match` whose arm *patterns* name ≥ 2
//!   constants of a `match_groups` group must name the whole group. A
//!   `_` wildcard does not excuse the gap: for dispatch on wire
//!   opcodes, "forgot the new opcode" and "deliberate default" are
//!   indistinguishable, and the cost of the former (a silently dropped
//!   frame type) is the whole reason this rule exists. Single-constant
//!   matches (`if let`-style peeks) are out of scope.

use crate::config::Config;
use crate::diag::{Diagnostic, Severity};
use crate::syntax::ParsedFile;

const DEFAULT_CONST_GROUPS: &[&str] = &["op", "status"];
const DEFAULT_NAME_PATTERNS: &[&str] = &["PROTO_", "MAX_", "_SEED"];
const DEFAULT_MATCH_GROUPS: &[&str] = &["op"];

fn list(config: &Config, key: &str, default: &[&str]) -> Vec<String> {
    config
        .get_list(key)
        .map(<[String]>::to_vec)
        .unwrap_or_else(|| default.iter().map(|s| (*s).to_string()).collect())
}

/// Does a bare constant name match a pattern? Leading `_` patterns are
/// suffix matches (`_SEED`), all others prefix matches (`MAX_`).
fn name_matches(name: &str, pattern: &str) -> bool {
    if let Some(suffix) = pattern.strip_prefix('_') {
        name.ends_with(&format!("_{suffix}"))
    } else {
        name.starts_with(pattern)
    }
}

/// One definition site of a wire constant.
struct Site<'a> {
    file: &'a str,
    line: usize,
    value: i128,
}

/// `wire-drift` runs across *all* scoped crates at once — drift is by
/// definition a cross-crate property.
pub fn check_wire_drift(files: &[&ParsedFile], config: &Config, out: &mut Vec<Diagnostic>) {
    let const_groups = list(config, "rules.wire-drift.const_groups", DEFAULT_CONST_GROUPS);
    let name_patterns = list(config, "rules.wire-drift.name_patterns", DEFAULT_NAME_PATTERNS);
    let match_groups = list(config, "rules.wire-drift.match_groups", DEFAULT_MATCH_GROUPS);

    // Phase 1: collect every relevant constant, keyed by normalized name.
    let mut sites: std::collections::BTreeMap<String, Vec<Site<'_>>> =
        std::collections::BTreeMap::new();
    // Group → every member name defined anywhere (evaluated or not),
    // for the exhaustiveness check.
    let mut members: std::collections::BTreeMap<String, std::collections::BTreeSet<String>> =
        std::collections::BTreeMap::new();
    for pf in files {
        for c in &pf.model.consts {
            if pf.src.is_test_line(c.line) {
                continue;
            }
            let key = crate::syntax::normalize_path(&c.name);
            let relevant = match key.split_once("::") {
                Some((group, _)) => {
                    if const_groups.iter().any(|g| g == group) {
                        members.entry(group.to_string()).or_default().insert(key.clone());
                        true
                    } else {
                        false
                    }
                }
                None => name_patterns.iter().any(|p| name_matches(&key, p)),
            };
            if !relevant {
                continue;
            }
            if let Some(v) = c.value {
                sites
                    .entry(key)
                    .or_default()
                    .push(Site { file: &pf.rel, line: c.line, value: v });
            }
        }
    }

    // Phase 2: report each site that disagrees with the first.
    for (name, mut defs) in sites {
        defs.sort_by(|a, b| (a.file, a.line).cmp(&(b.file, b.line)));
        let canonical = &defs[0];
        for d in &defs[1..] {
            if d.value != canonical.value {
                out.push(
                    Diagnostic::new(
                        "wire-drift",
                        Severity::Error,
                        d.file,
                        d.line,
                        1,
                        format!(
                            "wire constant `{name}` is {} here but {} at {}:{}",
                            d.value, canonical.value, canonical.file, canonical.line
                        ),
                    )
                    .with_note(
                        "both sides keep running on drifted constants — frames mis-route \
                         or truncate instead of failing loudly"
                            .to_string(),
                    ),
                );
            }
        }
    }

    // Phase 3: opcode-match exhaustiveness.
    for pf in files {
        for m in &pf.model.matches {
            if pf.src.is_test_line(m.line) {
                continue;
            }
            for group in &match_groups {
                let prefix = format!("{group}::");
                let referenced: std::collections::BTreeSet<&String> =
                    m.pattern_paths.iter().filter(|p| p.starts_with(&prefix)).collect();
                if referenced.len() < 2 {
                    continue;
                }
                let Some(all) = members.get(group) else { continue };
                let missing: Vec<&str> = all
                    .iter()
                    .filter(|k| !referenced.contains(k))
                    .map(String::as_str)
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                out.push(
                    Diagnostic::new(
                        "wire-drift",
                        Severity::Error,
                        &pf.rel,
                        m.line,
                        1,
                        format!(
                            "match covers {} of {} `{group}::` constants; missing: {}",
                            referenced.len(),
                            all.len(),
                            missing.join(", ")
                        ),
                    )
                    .with_note(
                        "a wildcard arm does not count: for wire opcodes, an unhandled \
                         case must be a compile-visible decision, not a default"
                            .to_string(),
                    ),
                );
            }
        }
    }
}
