//! Lock-discipline rules: `lock-order` and `blocking-under-lock`.
//!
//! Both operate on the per-function models from [`crate::syntax`],
//! crate-wide (a lock-order inversion is by nature a property of two
//! call sites that may live in different files).
//!
//! ## The guard-region model
//!
//! An acquisition is either **bound** (`let queue = shared.queue();`) —
//! its guard lives from the acquire line to the end of the enclosing
//! block, truncated at an explicit `drop(queue)` — or a **temporary**
//! (`shared.queue().len()`, or a bare statement call), which lives for
//! its own line only. This is deliberately lexical: `std::sync` guards
//! drop at end of scope, and this workspace's code style (enforced by
//! these very rules) releases early via `drop(...)`, never by moving
//! guards across functions.
//!
//! ## Lock identity
//!
//! A lock is named by the field the guard comes from. Two forms are
//! resolved:
//!
//! * **direct**: `self.queue.lock()` / `self.trackers[g].lock()` — the
//!   receiver field (`queue`, `trackers`) names the lock;
//! * **via helper**: any same-crate function whose return type mentions
//!   `MutexGuard`/`RwLockReadGuard`/`RwLockWriteGuard` and whose body
//!   contains a direct acquisition maps its *name* to that lock, so
//!   `shared.store()` in `serve` and the free `lock(&shared)` helper in
//!   `ingest` resolve to `store` and `state` respectively.
//!
//! Names are compared per crate. That is the right granularity here:
//! each networked crate has its own `Shared` struct, and a `queue` in
//! `serve` never interacts with a `queue` in `route`.

use crate::config::Config;
use crate::diag::{Diagnostic, Severity};
use crate::syntax::{CallSite, FnModel, ParsedFile};

/// Methods that acquire a std guard directly off a lock field.
const DIRECT_ACQUIRES: &[&str] = &["lock"];
/// Methods accepted as the acquisition inside a guard-returning helper
/// (here `read`/`write` are safe to include: the return type already
/// proved a guard is produced).
const HELPER_ACQUIRES: &[&str] = &["lock", "read", "write"];
/// Return types that mark a function as a guard-returning helper.
const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// A resolved lock acquisition with its lexical live region.
struct Acquire {
    lock: String,
    line: usize,
    /// First line past the guard's life: `drop(var)` line if one
    /// follows in the same function, else one past the enclosing
    /// block's closing line.
    until: usize,
}

impl Acquire {
    fn covers(&self, line: usize) -> bool {
        line > self.line && line < self.until
    }
}

/// Map helper-function name → lock name, across the crate's files.
fn guard_helpers(files: &[&ParsedFile]) -> std::collections::BTreeMap<String, String> {
    let mut out = std::collections::BTreeMap::new();
    for pf in files {
        for f in &pf.model.fns {
            if !GUARD_TYPES.iter().any(|g| f.ret_type.contains(g)) {
                continue;
            }
            let direct = f.calls.iter().find(|c| {
                HELPER_ACQUIRES.contains(&c.callee.as_str()) && c.receiver.is_some()
            });
            if let Some(c) = direct {
                out.insert(f.name.clone(), c.receiver.clone().unwrap_or_default());
            }
        }
    }
    out
}

/// Resolve one call site to the lock it acquires, if any.
fn resolve_lock(c: &CallSite, helpers: &std::collections::BTreeMap<String, String>) -> Option<String> {
    if DIRECT_ACQUIRES.contains(&c.callee.as_str()) {
        if let Some(r) = &c.receiver {
            return Some(r.clone());
        }
        // Receiver-less `lock(...)`: a free helper (ingest style).
        return helpers.get(&c.callee).cloned();
    }
    helpers.get(&c.callee).cloned()
}

/// All acquisitions in one function, with live regions.
fn acquires_in(
    f: &FnModel,
    helpers: &std::collections::BTreeMap<String, String>,
) -> Vec<Acquire> {
    let mut out = Vec::new();
    for c in &f.calls {
        let Some(lock) = resolve_lock(c, helpers) else { continue };
        let until = match &c.bound_var {
            Some(var) if !c.chained => {
                let dropped = f
                    .drops
                    .iter()
                    .filter(|d| &d.var == var && d.line >= c.line)
                    .map(|d| d.line)
                    .min();
                dropped.unwrap_or(c.scope_end + 1)
            }
            // Temporaries (statement calls, chained `…lock().x()`)
            // live for their own line only.
            _ => c.line + 1,
        };
        out.push(Acquire { lock, line: c.line, until });
    }
    out
}

/// Should this function's findings be reported? Test-only code is out
/// of scope for every rule.
fn in_scope(pf: &ParsedFile, f: &FnModel) -> bool {
    !pf.src.is_test_line(f.start_line)
}

/// `lock-order`: build the crate's lock-acquisition graph and report
/// self-reacquisition and cycles (a 2-cycle is an inconsistent
/// acquisition order between two call sites; either shape deadlocks
/// once the two paths run concurrently).
pub fn check_lock_order(files: &[&ParsedFile], _config: &Config, out: &mut Vec<Diagnostic>) {
    let helpers = guard_helpers(files);
    // Edge (held → acquired) → first evidence site.
    let mut edges: std::collections::BTreeMap<(String, String), (String, usize)> =
        std::collections::BTreeMap::new();
    for pf in files {
        for f in &pf.model.fns {
            if !in_scope(pf, f) {
                continue;
            }
            let acqs = acquires_in(f, &helpers);
            for held in &acqs {
                for inner in &acqs {
                    if !held.covers(inner.line) {
                        continue;
                    }
                    if held.lock == inner.lock {
                        out.push(
                            Diagnostic::new(
                                "lock-order",
                                Severity::Error,
                                &pf.rel,
                                inner.line,
                                1,
                                format!(
                                    "lock `{}` re-acquired while its guard from line {} is \
                                     still live",
                                    inner.lock, held.line
                                ),
                            )
                            .with_note(
                                "std::sync::Mutex is not reentrant — this deadlocks on the \
                                 spot; drop the first guard before re-acquiring"
                                    .to_string(),
                            ),
                        );
                        continue;
                    }
                    edges
                        .entry((held.lock.clone(), inner.lock.clone()))
                        .or_insert_with(|| (pf.rel.to_string(), inner.line));
                }
            }
        }
    }
    // Cycle detection over the (small) graph: DFS from each node in
    // sorted order; canonicalized cycles report once.
    let nodes: std::collections::BTreeSet<&String> =
        edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let mut reported: std::collections::BTreeSet<Vec<String>> = std::collections::BTreeSet::new();
    for start in &nodes {
        let mut path: Vec<&String> = vec![start];
        dfs_cycles(start, &edges, &mut path, &mut reported, out);
    }
}

fn dfs_cycles<'a>(
    node: &'a String,
    edges: &'a std::collections::BTreeMap<(String, String), (String, usize)>,
    path: &mut Vec<&'a String>,
    reported: &mut std::collections::BTreeSet<Vec<String>>,
    out: &mut Vec<Diagnostic>,
) {
    let nexts: Vec<&(String, String)> = edges.keys().filter(|(a, _)| a == node).collect();
    for key in nexts {
        let to = &key.1;
        if let Some(at) = path.iter().position(|n| *n == to) {
            // Cycle: path[at..] + back-edge. Canonical form rotates the
            // smallest lock name to the front so each cycle reports once.
            let cycle: Vec<String> = path[at..].iter().map(|s| (*s).to_string()).collect();
            let min_at = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.as_str())
                .map_or(0, |(i, _)| i);
            let mut canon = cycle.clone();
            canon.rotate_left(min_at);
            if reported.insert(canon.clone()) {
                let (file, line) = &edges[key];
                let shown: Vec<&str> = canon.iter().map(String::as_str).collect();
                let msg = if canon.len() == 2 {
                    format!(
                        "inconsistent lock acquisition order: `{}` and `{}` are taken in \
                         both orders in this crate",
                        shown[0], shown[1]
                    )
                } else {
                    format!(
                        "lock acquisition cycle: {} → {}",
                        shown.join(" → "),
                        shown[0]
                    )
                };
                out.push(
                    Diagnostic::new("lock-order", Severity::Error, file, *line, 1, msg).with_note(
                        "pick one global order for these locks and release before \
                         acquiring against it"
                            .to_string(),
                    ),
                );
            }
            continue;
        }
        path.push(to);
        dfs_cycles(to, edges, path, reported, out);
        path.pop();
    }
}

/// `blocking-under-lock`: a configured blocking call reached while a
/// guard is lexically live.
pub fn check_blocking_under_lock(files: &[&ParsedFile], config: &Config, out: &mut Vec<Diagnostic>) {
    let blocking: Vec<String> = config
        .get_list("rules.blocking-under-lock.blocking_calls")
        .map(<[String]>::to_vec)
        .unwrap_or_else(|| {
            ["sleep", "join", "recv", "recv_timeout", "connect", "accept"]
                .iter()
                .map(|s| (*s).to_string())
                .collect()
        });
    let helpers = guard_helpers(files);
    for pf in files {
        for f in &pf.model.fns {
            if !in_scope(pf, f) {
                continue;
            }
            let acqs = acquires_in(f, &helpers);
            for c in &f.calls {
                if !blocking.contains(&c.callee) {
                    continue;
                }
                let Some(held) = acqs.iter().find(|a| a.covers(c.line)) else { continue };
                out.push(
                    Diagnostic::new(
                        "blocking-under-lock",
                        Severity::Error,
                        &pf.rel,
                        c.line,
                        1,
                        format!(
                            "`{}` called while the `{}` guard from line {} is live",
                            c.callee, held.lock, held.line
                        ),
                    )
                    .with_note(
                        "every thread that wants this lock now waits on the blocked call \
                         too — drop the guard first (`drop(...)`) or move the call out of \
                         the region"
                            .to_string(),
                    ),
                );
            }
        }
    }
}
