//! `shift-overflow-hazard` — variable-amount shifts without a visible
//! bound.
//!
//! The sketch's registers live and die by `1 << p`, `counter << r`,
//! `word >> offset`-shaped expressions (Algorithms 1–6 all slice bit
//! fields). A shift amount that can reach the operand width is *not* a
//! crash in release builds — it wraps or produces an unspecified value
//! and silently corrupts every estimate downstream, the exact failure
//! class safe reimplementations of these sketches exist to kill. This
//! rule demands that every variable shift amount has a *visible* bound:
//! a literal, an assert/branch naming the amount within the enclosing
//! lines, a `% w` / `.min(w)` reduction, a `checked_`/`wrapping_` shift,
//! or a call whose contract bounds its result (`params.r()` et al. —
//! the configured `bounded_calls`).

use super::{balanced_group, guarded_within, idents_in, FileCtx, Rule};
use crate::diag::Diagnostic;

pub struct ShiftOverflowHazard;

const NAME: &str = "shift-overflow-hazard";

impl Rule for ShiftOverflowHazard {
    fn name(&self) -> &'static str {
        NAME
    }

    fn describe(&self) -> &'static str {
        "variable shift amount with no visible bound (mask, assert, branch or bounded call)"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let bounded = ctx.list_opt(NAME, "bounded_calls", &[]);
        let window = ctx.int_opt(NAME, "guard_window", 10).max(0) as usize;
        for (line_no, line) in ctx.code_lines() {
            let mut at = 0usize;
            while let Some(rel) = find_shift(&line[at..]) {
                let pos = at + rel;
                at = pos + 2;
                let Some(rhs) = shift_rhs(line, pos + 2) else { continue };
                let idents = idents_in(rhs);
                if idents.is_empty() {
                    continue; // literal amount — the compiler checks it
                }
                if is_self_bounding(rhs, &bounded) {
                    continue;
                }
                if guarded_within(ctx.src, line_no, window, &idents, &bounded) {
                    continue;
                }
                out.push(
                    ctx.error(
                        NAME,
                        line_no,
                        pos + 1,
                        format!("variable shift amount `{}` has no visible bound", rhs.trim()),
                    )
                    .with_note(
                        "an out-of-range shift wraps silently in release builds, corrupting \
                         register values; bound it (assert / % / .min) or use checked_shl/shr"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

/// Find the next `<<` or `>>` that is an operator, not a generics
/// closer. Returns the byte offset of the first character.
///
/// Two disambiguators against generics: runs of three or more angles
/// (`Box<Vec<u64>>>`-shaped) are never shifts, and a shift operator in
/// rustfmt-formatted code is always preceded by whitespace (`a << b`,
/// or the operator leading a wrapped continuation line), while generic
/// closers hug the preceding type (`IntoIterator<Item = T>>(`).
fn find_shift(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        if two == b"<<" || two == b">>" {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] == bytes[i] {
                j += 1;
            }
            let spaced_before = i == 0 || bytes[i - 1].is_ascii_whitespace();
            if j == i + 2 && spaced_before {
                return Some(i);
            }
            i = j;
            continue;
        }
        i += 1;
    }
    None
}

/// Extract the shift-amount expression starting at `from` (just past
/// the operator). `None` when this is not actually a shift (generics
/// artifacts, closing delimiters).
fn shift_rhs(line: &str, mut from: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    if bytes.get(from) == Some(&b'=') {
        from += 1; // `<<=`
    }
    while bytes.get(from) == Some(&b' ') {
        from += 1;
    }
    match bytes.get(from)? {
        b'(' => {
            let inner = balanced_group(line, from)?;
            Some(inner)
        }
        b'{' | b',' | b';' | b')' | b']' | b'>' | b'<' | b'=' | b'&' | b'|' => None,
        _ => {
            // A primary expression: path segments, field accesses, calls
            // and index groups, e.g. `self.params.r()` or `attempt.min(16)`.
            let start = from;
            let mut i = from;
            while i < bytes.len() {
                let b = bytes[i];
                if b == b'_' || b.is_ascii_alphanumeric() || b == b'.' || b == b':' {
                    i += 1;
                } else if b == b'(' {
                    let group = balanced_group(line, i)?;
                    i += group.len() + 2;
                } else {
                    break;
                }
            }
            (i > start).then(|| &line[start..i])
        }
    }
}

/// Is the amount expression bounded on its face?
fn is_self_bounding(rhs: &str, bounded_calls: &[String]) -> bool {
    rhs.contains('%')
        || rhs.contains(".min(")
        || rhs.contains("checked_sh")
        || rhs.contains("wrapping_sh")
        || bounded_calls.iter().any(|c| rhs.contains(c.as_str()))
}
