//! `nondeterminism` — wall clocks and randomized iteration order in
//! deterministic paths.
//!
//! The simulator and workload generators are the repo's ground truth:
//! every experiment (`EXPERIMENTS.md`) and every seeded property test
//! assumes the same inputs produce byte-identical outputs, and the
//! fault-injection harness replays exact schedules. `Instant::now` /
//! `SystemTime::now` smuggle wall-clock state in; `HashMap`/`HashSet`
//! with the default `RandomState` hasher randomize iteration order per
//! process (by design — HashDoS resistance), which silently reorders
//! any derived output. Deterministic crates use `BTreeMap`/`BTreeSet`
//! or explicitly seeded hashers, and take time as data, not ambient
//! state.

use super::{contains_word, FileCtx, Rule};
use crate::diag::Diagnostic;

pub struct Nondeterminism;

const NAME: &str = "nondeterminism";

/// `(needle, word_match, what, fix)` per hazard.
const HAZARDS: &[(&str, bool, &str, &str)] = &[
    ("Instant::now", false, "wall-clock read", "take the timestamp as a parameter"),
    ("SystemTime::now", false, "wall-clock read", "take the timestamp as a parameter"),
    ("thread_rng", true, "OS-seeded RNG", "use a seeded StdRng passed in by the caller"),
    ("from_entropy", true, "OS-seeded RNG", "use seed_from_u64 with an explicit seed"),
    (
        "HashMap",
        true,
        "randomized iteration order (default RandomState hasher)",
        "use BTreeMap, or a fixed-seed hasher if O(1) lookup matters",
    ),
    (
        "HashSet",
        true,
        "randomized iteration order (default RandomState hasher)",
        "use BTreeSet, or a fixed-seed hasher if O(1) lookup matters",
    ),
];

impl Rule for Nondeterminism {
    fn name(&self) -> &'static str {
        NAME
    }

    fn describe(&self) -> &'static str {
        "wall clocks, OS entropy, or default-hasher maps in deterministic crates"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        for (line_no, line) in ctx.code_lines() {
            for (needle, word, what, fix) in HAZARDS {
                let hit = if *word { contains_word(line, needle) } else { line.contains(needle) };
                if hit {
                    let col = line.find(needle).map_or(1, |p| p + 1);
                    out.push(
                        ctx.error(
                            NAME,
                            line_no,
                            col,
                            format!("`{needle}` in a deterministic crate: {what}"),
                        )
                        .with_note((*fix).to_string()),
                    );
                }
            }
        }
    }
}
