//! `unbounded-net-loop`: every loop that talks to the network must show
//! its bound.
//!
//! The replication engine, the router's dial paths, and the failover
//! client all retry; PRs 4–6 repeatedly found the same bug shape — a
//! `loop` around a dial or frame read whose exit condition lived only
//! in the author's head. The rule makes the bound a syntactic
//! obligation:
//!
//! * **suspect loops**: `loop { … }`, `while let … { … }`, and any
//!   `while` whose condition contains no comparison operator (a
//!   comparison-headed `while next < names.len()` visibly marches
//!   toward a bound; `while !done.load()` does not). `for` loops are
//!   exempt — they consume a finite iterator by construction.
//! * **network content**: the loop body (header line through closing
//!   brace) contains a call whose *name* is in the configured
//!   `net_calls` list (dials, frame I/O, replication RPCs). Name-level
//!   matching keeps `sync_with_peer` from matching `sync`.
//! * **visible bound**: the same region mentions one of the configured
//!   `bound_tokens` (attempt counters, budgets, backoff pacers,
//!   shutdown flags, pagination cursors) as a whole word, or any
//!   `ALL_CAPS` identifier containing `MAX`/`CAP`/`LIMIT`.
//!
//! A loop that is genuinely bounded by something the rule cannot see
//! (e.g. a per-connection frame loop bounded by socket deadlines and
//! EOF) carries an inline suppression whose reason states that bound —
//! which is exactly the documentation the next reader needs.

use crate::config::Config;
use crate::diag::{Diagnostic, Severity};
use crate::rules::contains_word;
use crate::syntax::{LoopKind, ParsedFile};

const DEFAULT_NET_CALLS: &[&str] =
    &["connect", "connect_timeout", "accept", "write_frame", "read_frame"];
const DEFAULT_BOUND_TOKENS: &[&str] =
    &["attempt", "attempts", "retry", "retries", "budget", "backoff", "deadline", "shutdown"];

fn list(config: &Config, key: &str, default: &[&str]) -> Vec<String> {
    config
        .get_list(key)
        .map(<[String]>::to_vec)
        .unwrap_or_else(|| default.iter().map(|s| (*s).to_string()).collect())
}

/// Does this `ALL_CAPS` identifier look like a capacity constant?
fn caps_bound_ident(word: &str) -> bool {
    word.len() > 1
        && word.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && ["MAX", "CAP", "LIMIT"].iter().any(|m| word.contains(m))
}

pub fn check_unbounded_net_loop(files: &[&ParsedFile], config: &Config, out: &mut Vec<Diagnostic>) {
    let net_calls = list(config, "rules.unbounded-net-loop.net_calls", DEFAULT_NET_CALLS);
    let bound_tokens = list(config, "rules.unbounded-net-loop.bound_tokens", DEFAULT_BOUND_TOKENS);
    for pf in files {
        for f in &pf.model.fns {
            if pf.src.is_test_line(f.start_line) {
                continue;
            }
            for lp in &f.loops {
                let suspect = match lp.kind {
                    LoopKind::Loop | LoopKind::WhileLet => true,
                    LoopKind::While => !lp.cond_has_comparison,
                    LoopKind::For => false,
                };
                if !suspect {
                    continue;
                }
                let in_region = |line: usize| line >= lp.header_line && line <= lp.end_line;
                let Some(net) = f
                    .calls
                    .iter()
                    .find(|c| in_region(c.line) && net_calls.contains(&c.callee))
                else {
                    continue;
                };
                let bounded = (lp.header_line..=lp.end_line).any(|n| {
                    let line = pf.src.line(n);
                    bound_tokens.iter().any(|t| contains_word(line, t))
                        || crate::rules::idents_in(line).iter().any(|w| caps_bound_ident(w))
                });
                if bounded {
                    continue;
                }
                out.push(
                    Diagnostic::new(
                        "unbounded-net-loop",
                        Severity::Error,
                        &pf.rel,
                        lp.header_line,
                        1,
                        format!(
                            "network loop calls `{}` (line {}) with no visible bound in \
                             its condition or body",
                            net.callee, net.line
                        ),
                    )
                    .with_note(
                        "reference an attempt counter, budget, backoff pacer or shutdown \
                         flag in the loop — or suppress with the bound written out"
                            .to_string(),
                    ),
                );
            }
        }
    }
}
