//! `hmh-lint` binary: `check [--deny] [--json] [--root <dir>]`, `rules`.

use std::path::PathBuf;
use std::process::ExitCode;

use hmh_lint::diag::{render_human, render_json};
use hmh_lint::rules::all_rules;
use hmh_lint::{check_workspace, find_workspace_root, load_config};

const USAGE: &str = "\
hmh-lint — workspace-native static analysis for the HyperMinHash repo

USAGE:
    hmh-lint check [--deny] [--json] [--root <dir>]
    hmh-lint rules

COMMANDS:
    check    Lint every workspace crate's src/ tree against Lint.toml
    rules    List the rule set with one-line descriptions

OPTIONS:
    --deny         Treat warnings as errors (exit 1 on any finding)
    --json         Emit diagnostics as a JSON array on stdout
    --root <dir>   Workspace root (default: walk up from the current dir)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for rule in all_rules() {
                println!("{:<24} {}", rule.name(), rule.describe());
            }
            println!(
                "{:<24} engine check: #![forbid(unsafe_code)] must stay in configured lib.rs files",
                "forbid-unsafe"
            );
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(flags: &[String]) -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let config = match load_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("config error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match check_workspace(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", render_json(&report.diagnostics));
    } else {
        for d in &report.diagnostics {
            print!("{}", render_human(d));
        }
        eprintln!(
            "hmh-lint: {} crates, {} files scanned: {} error(s), {} warning(s)",
            report.crates_scanned,
            report.files_scanned,
            report.error_count(),
            report.warning_count(),
        );
    }

    let failed = report.error_count() > 0 || (deny && !report.diagnostics.is_empty());
    let has_warnings_only =
        report.error_count() == 0 && report.warning_count() > 0 && !deny && !json;
    if has_warnings_only {
        eprintln!("hmh-lint: warnings do not fail the build without --deny");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
