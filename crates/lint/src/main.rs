//! `hmh-lint` binary: `check [--deny] [--json] [--ratchet]
//! [--write-baseline] [--root <dir>]`, `audit [--json]`, `scopes`,
//! `rules`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hmh_lint::baseline::{diff, parse_baseline, render_baseline, render_diff_json};
use hmh_lint::diag::{json_str, render_human, render_json};
use hmh_lint::rules::{all_rules, known_rule_names, workspace_rules};
use hmh_lint::{
    check_workspace, collect_suppressions, discovered_crate_names, find_workspace_root,
    load_config,
};

const USAGE: &str = "\
hmh-lint — workspace-native static analysis for the HyperMinHash repo

USAGE:
    hmh-lint check [--deny] [--json] [--ratchet] [--write-baseline] [--root <dir>]
    hmh-lint audit [--json] [--root <dir>]
    hmh-lint scopes [--root <dir>]
    hmh-lint rules

COMMANDS:
    check    Lint every workspace crate's src/ tree against Lint.toml
    audit    List every inline suppression with file:line, rule and reason
    scopes   Assert Lint.toml's [workspace] crates list matches the crates on disk
    rules    List the rule set with one-line descriptions

OPTIONS:
    --deny             Treat warnings as errors (exit 1 on any finding)
    --json             Emit machine-readable JSON on stdout
    --ratchet          Compare findings against lint-baseline.json: fail on any
                       finding not in the baseline AND on stale baseline entries
    --write-baseline   Regenerate lint-baseline.json from the current findings
    --root <dir>       Workspace root (default: walk up from the current dir)
";

/// Committed ratchet baseline, looked up at the workspace root.
const BASELINE_FILE: &str = "lint-baseline.json";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("audit") => audit(&args[1..]),
        Some("scopes") => scopes(&args[1..]),
        Some("rules") => {
            for rule in all_rules() {
                println!("{:<24} {}", rule.name(), rule.describe());
            }
            for (name, describe) in workspace_rules() {
                println!("{name:<24} {describe}");
            }
            println!(
                "{:<24} engine check: #![forbid(unsafe_code)] must stay in configured lib.rs files",
                "forbid-unsafe"
            );
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Resolve `--root` / walk up from the cwd. Shared by every command.
fn resolve_root(root: Option<PathBuf>) -> Result<PathBuf, ExitCode> {
    match root {
        Some(r) => Ok(r),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            find_workspace_root(&cwd).ok_or_else(|| {
                eprintln!("no workspace root found above {}", cwd.display());
                ExitCode::from(2)
            })
        }
    }
}

fn check(flags: &[String]) -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut ratchet = false;
    let mut write_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--ratchet" => ratchet = true,
            "--write-baseline" => write_baseline = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };

    let config = match load_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("config error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match check_workspace(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan error: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, render_baseline(&report.diagnostics)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "hmh-lint: wrote {} entries to {}",
            report.diagnostics.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if ratchet {
        return check_ratchet(&root, &report, json);
    }

    if json {
        println!("{}", render_json(&report.diagnostics));
    } else {
        for d in &report.diagnostics {
            print!("{}", render_human(d));
        }
        eprintln!(
            "hmh-lint: {} crates, {} files scanned: {} error(s), {} warning(s)",
            report.crates_scanned,
            report.files_scanned,
            report.error_count(),
            report.warning_count(),
        );
    }

    let failed = report.error_count() > 0 || (deny && !report.diagnostics.is_empty());
    let has_warnings_only =
        report.error_count() == 0 && report.warning_count() > 0 && !deny && !json;
    if has_warnings_only {
        eprintln!("hmh-lint: warnings do not fail the build without --deny");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `check --ratchet`: success iff the findings and the committed
/// baseline are in exact agreement — no new findings, no stale entries.
/// `--deny` is implied: the ratchet has no warning tier.
fn check_ratchet(root: &Path, report: &hmh_lint::Report, json: bool) -> ExitCode {
    let path = root.join(BASELINE_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "cannot read {}: {e}\nrun `hmh-lint check --write-baseline` to create it",
                path.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match parse_baseline(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let d = diff(&report.diagnostics, &baseline);
    if json {
        print!("{}", render_diff_json(&d));
    } else {
        for e in &d.new {
            eprintln!("ratchet: NEW finding not in baseline: {}:{} {}", e.file, e.line, e.rule);
        }
        for e in &d.stale {
            eprintln!(
                "ratchet: STALE baseline entry no longer fires: {}:{} {}",
                e.file, e.line, e.rule
            );
        }
        eprintln!(
            "hmh-lint: ratchet vs {} entries: {} new, {} stale",
            baseline.len(),
            d.new.len(),
            d.stale.len()
        );
        if !d.stale.is_empty() {
            eprintln!("hmh-lint: regenerate with `hmh-lint check --write-baseline`");
        }
    }
    if d.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `audit`: the suppression inventory — every place the workspace has
/// argued its way past a rule, with the argument.
fn audit(flags: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let sups = match collect_suppressions(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scan error: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        let mut out = String::from("[");
        for (i, (krate, file, s)) in sups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"crate\": {}, \"file\": {}, \"line\": {}, \"rules\": [{}], \
                 \"reason\": {}}}",
                json_str(krate),
                json_str(file),
                s.comment_line,
                s.rules.iter().map(|r| json_str(r)).collect::<Vec<_>>().join(", "),
                json_str(&s.reason),
            ));
        }
        if !sups.is_empty() {
            out.push('\n');
        }
        out.push(']');
        println!("{out}");
    } else {
        for (_, file, s) in &sups {
            println!("{}:{}: allow({}) — {}", file, s.comment_line, s.rules.join(", "), s.reason);
        }
        eprintln!("hmh-lint: {} suppression(s)", sups.len());
    }
    ExitCode::SUCCESS
}

/// `scopes`: `Lint.toml` must declare, under `[workspace] crates`, the
/// exact set of crates that exist on disk — and every crate named in a
/// rule scope must be in that set. A new crate that nobody added to the
/// config is invisible to crate-scoped rules; this makes that loud.
fn scopes(flags: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let config = match load_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("config error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(declared) = config.get_list("workspace.crates").map(<[String]>::to_vec) else {
        eprintln!("scopes: Lint.toml has no `[workspace] crates = [...]` list");
        return ExitCode::from(2);
    };
    let discovered = match discovered_crate_names(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("scan error: {e}");
            return ExitCode::from(2);
        }
    };
    let declared_set: std::collections::BTreeSet<&str> =
        declared.iter().map(String::as_str).collect();
    let discovered_set: std::collections::BTreeSet<&str> =
        discovered.iter().map(String::as_str).collect();
    let mut failed = false;
    for missing in discovered_set.difference(&declared_set) {
        eprintln!("scopes: crate `{missing}` exists on disk but is not in [workspace] crates");
        failed = true;
    }
    for ghost in declared_set.difference(&discovered_set) {
        eprintln!("scopes: [workspace] crates lists `{ghost}` but no such crate exists");
        failed = true;
    }
    for rule in known_rule_names() {
        for key in ["crates", "allow_crates"] {
            let Some(scoped) = config.get_list(&format!("rules.{rule}.{key}")) else { continue };
            for name in scoped {
                if !declared_set.contains(name.as_str()) {
                    eprintln!(
                        "scopes: rules.{rule}.{key} names `{name}`, which is not in \
                         [workspace] crates"
                    );
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!(
            "hmh-lint: scopes OK — {} crates declared, {} discovered",
            declared.len(),
            discovered.len()
        );
        ExitCode::SUCCESS
    }
}
