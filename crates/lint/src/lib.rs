#![forbid(unsafe_code)]
//! # hmh-lint
//!
//! Workspace-native static analysis for the HyperMinHash repo: machine-
//! checks the bit-level and durability invariants that otherwise exist
//! only as prose in DESIGN.md. The sketch's correctness lives in
//! fragile bit manipulation — `q`-bit LogLog counters, `r`-bit
//! mantissas, 128-bit digest slicing — where a shift overflow or a
//! truncating cast silently corrupts estimates rather than crashing.
//! These rules make that failure class a CI error:
//!
//! | rule | protects |
//! |---|---|
//! | `shift-overflow-hazard` | register packing/unpacking (Algs. 1–6) |
//! | `truncating-cast`       | digest slicing, wire-format fields |
//! | `panic-in-lib`          | service availability of library crates |
//! | `float-eq`              | estimator reproducibility (Algs. 3–6) |
//! | `nondeterminism`        | simulator/workload ground truth |
//! | `durability`            | fsync-before-rename (DESIGN.md §6.6) |
//! | `forbid-unsafe`         | `#![forbid(unsafe_code)]` stays put |
//! | `lock-order`            | a global lock order (no AB/BA deadlock) |
//! | `blocking-under-lock`   | no sleeps/joins/recvs under a held guard |
//! | `unbounded-net-loop`    | retry/accept loops show a visible bound |
//! | `wire-drift`            | one opcode table across all crates |
//!
//! The last four are *workspace rules*: they run over a syntactic model
//! ([`syntax`]) of every file — per-function call sites, guard-holding
//! regions, loop headers, and const values — rather than line-by-line,
//! and `wire-drift` compares const definitions *across* crates.
//!
//! Self-contained by design: its own lexer ([`lexer`]), parser
//! ([`syntax`]), config parser ([`config`]), JSON emitter ([`diag`]) and
//! ratchet baseline codec ([`baseline`]) — no dependencies, so the
//! linter can never be broken by the code it checks.
//!
//! ```text
//! cargo run -p hmh-lint -- check [--deny] [--json] [--ratchet] [--root <dir>]
//! cargo run -p hmh-lint -- audit [--json]     # suppression inventory
//! cargo run -p hmh-lint -- scopes             # Lint.toml covers every crate
//! ```
//!
//! `--ratchet` compares findings against the committed
//! `lint-baseline.json` and fails on anything new *or* on stale entries
//! — the baseline only shrinks. `--write-baseline` regenerates it.
//!
//! Suppressions are inline, per-rule, and must argue their case:
//!
//! ```text
//! let m = 1u64 << self.p; // hmh-lint: allow(shift-overflow-hazard) — p ≤ 24 by HmhParams::new
//! ```
//!
//! A suppression with no reason, naming an unknown rule, or matching no
//! finding is itself a diagnostic.

pub mod baseline;
pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod syntax;

pub use config::Config;
pub use diag::{Diagnostic, Severity};
pub use engine::{
    check_workspace, collect_suppressions, discovered_crate_names, find_workspace_root, lint_text,
    Report,
};

/// Name of the workspace config file, looked up at the workspace root.
pub const CONFIG_FILE: &str = "Lint.toml";

/// Load `Lint.toml` from the workspace root.
///
/// # Errors
/// If the file is missing or fails to parse — a linter whose config
/// fails open is worse than no linter.
pub fn load_config(root: &std::path::Path) -> Result<Config, String> {
    let path = root.join(CONFIG_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Config::parse(&text).map_err(|(line, msg)| format!("{}:{line}: {msg}", path.display()))
}
