//! The findings ratchet: a committed `lint-baseline.json` records every
//! currently-accepted finding, and `--ratchet` makes the count one-way.
//!
//! A check run under `--ratchet` fails in two directions:
//!
//! * a finding **not** in the baseline — new debt is rejected at the
//!   door;
//! * a baseline entry that **no longer fires** — the baseline must be
//!   regenerated (`--write-baseline`) so fixed findings cannot silently
//!   come back later under the cover of a stale entry.
//!
//! Entries are identified by `(rule, file, line)`. Line numbers do make
//! entries brittle against unrelated edits to the same file; that is
//! accepted on purpose — an entry that drifted is an entry someone must
//! re-look at, which is the ratchet's whole job. The workspace baseline
//! is empty today (every finding was fixed or suppressed with a reason
//! at introduction time), so in practice this file is the contract that
//! keeps it empty.
//!
//! The parser below reads exactly what [`render_baseline`] writes — a
//! JSON array of flat `{"rule","file","line"}` objects — plus arbitrary
//! whitespace. It is not a general JSON parser and rejects anything
//! else; a hand-edited baseline that drifts from the format is a config
//! error, not something to guess about.

use crate::diag::Diagnostic;

/// One accepted finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub line: usize,
}

impl BaselineEntry {
    pub fn of(d: &Diagnostic) -> Self {
        Self { rule: d.rule.clone(), file: d.file.clone(), line: d.line }
    }
}

/// Result of diffing a report against the baseline.
#[derive(Debug, Default)]
pub struct RatchetDiff {
    /// Findings not covered by the baseline — the check must fail.
    pub new: Vec<BaselineEntry>,
    /// Baseline entries that no longer fire — stale; the check must
    /// also fail until the baseline is regenerated.
    pub stale: Vec<BaselineEntry>,
}

impl RatchetDiff {
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Diff current findings against the baseline. Both directions are
/// set-wise on `(rule, file, line)`; duplicates collapse.
pub fn diff(findings: &[Diagnostic], baseline: &[BaselineEntry]) -> RatchetDiff {
    let current: std::collections::BTreeSet<BaselineEntry> =
        findings.iter().map(BaselineEntry::of).collect();
    let accepted: std::collections::BTreeSet<BaselineEntry> = baseline.iter().cloned().collect();
    RatchetDiff {
        new: current.difference(&accepted).cloned().collect(),
        stale: accepted.difference(&current).cloned().collect(),
    }
}

/// Serialize entries in the committed-file format: sorted, one object
/// per line, trailing newline — byte-stable so regeneration diffs are
/// minimal.
pub fn render_baseline(findings: &[Diagnostic]) -> String {
    let mut entries: Vec<BaselineEntry> = findings.iter().map(BaselineEntry::of).collect();
    entries.sort();
    entries.dedup();
    let mut out = String::from("[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&format!(
            "{{\"rule\": {}, \"file\": {}, \"line\": {}}}",
            crate::diag::json_str(&e.rule),
            crate::diag::json_str(&e.file),
            e.line
        ));
    }
    if !entries.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Render a ratchet diff as JSON (the CI artifact format).
pub fn render_diff_json(diff: &RatchetDiff) -> String {
    fn entries(list: &[BaselineEntry]) -> String {
        let mut out = String::from("[");
        for (i, e) in list.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"rule\": {}, \"file\": {}, \"line\": {}}}",
                crate::diag::json_str(&e.rule),
                crate::diag::json_str(&e.file),
                e.line
            ));
        }
        out.push(']');
        out
    }
    format!("{{\"new\": {}, \"stale\": {}}}\n", entries(&diff.new), entries(&diff.stale))
}

/// Parse the committed baseline format.
///
/// # Errors
/// A human-readable message naming the first malformed construct.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut p = Cursor { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.eat(b'[')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
        p.skip_ws();
        return p.at_end().map(|()| out);
    }
    loop {
        out.push(p.object()?);
        p.skip_ws();
        match p.next() {
            Some(b',') => p.skip_ws(),
            Some(b']') => break,
            _ => return Err(p.err("expected `,` or `]` after entry")),
        }
    }
    p.skip_ws();
    p.at_end().map(|()| out)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, what: &str) -> String {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        format!("baseline line {line}: {what}")
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.next() == Some(want) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", want as char)))
        }
    }

    fn at_end(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.err("trailing content after baseline array"))
        }
    }

    /// One `{"rule": "...", "file": "...", "line": N}` object; keys in
    /// any order, each required exactly once.
    fn object(&mut self) -> Result<BaselineEntry, String> {
        self.skip_ws();
        self.eat(b'{')?;
        let (mut rule, mut file, mut line) = (None, None, None);
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            match key.as_str() {
                "rule" => rule = Some(self.string()?),
                "file" => file = Some(self.string()?),
                "line" => line = Some(self.number()?),
                other => return Err(self.err(&format!("unknown key `{other}`"))),
            }
            self.skip_ws();
            match self.next() {
                Some(b',') => {}
                Some(b'}') => break,
                _ => return Err(self.err("expected `,` or `}` in entry")),
            }
        }
        match (rule, file, line) {
            (Some(rule), Some(file), Some(line)) => Ok(BaselineEntry { rule, file, line }),
            _ => Err(self.err("entry must have `rule`, `file` and `line`")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    _ => return Err(self.err("unsupported escape in string")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-read the full UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a line number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("line number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn d(rule: &str, file: &str, line: usize) -> Diagnostic {
        Diagnostic::new(rule, Severity::Error, file, line, 1, "m".to_string())
    }

    #[test]
    fn empty_baseline_round_trips() {
        assert_eq!(render_baseline(&[]), "[]\n");
        assert_eq!(parse_baseline("[]\n").unwrap(), vec![]);
        assert_eq!(parse_baseline("  [\n]  ").unwrap(), vec![]);
    }

    #[test]
    fn entries_round_trip_sorted_and_deduped() {
        let findings = vec![
            d("wire-drift", "crates/b/src/lib.rs", 9),
            d("lock-order", "crates/a/src/lib.rs", 3),
            d("lock-order", "crates/a/src/lib.rs", 3),
        ];
        let text = render_baseline(&findings);
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].rule, "lock-order");
        assert_eq!(parsed[1].line, 9);
    }

    #[test]
    fn diff_reports_both_directions() {
        let baseline =
            vec![BaselineEntry { rule: "r".into(), file: "f".into(), line: 1 }];
        let findings = vec![d("r", "f", 2)];
        let diff = diff(&findings, &baseline);
        assert_eq!(diff.new.len(), 1);
        assert_eq!(diff.new[0].line, 2);
        assert_eq!(diff.stale.len(), 1);
        assert_eq!(diff.stale[0].line, 1);
        assert!(!diff.is_clean());
        assert!(super::diff(&[], &[]).is_clean());
    }

    #[test]
    fn malformed_baselines_are_errors() {
        for bad in [
            "",
            "{}",
            "[{}]",
            "[{\"rule\": \"r\"}]",
            "[{\"rule\": \"r\", \"file\": \"f\", \"line\": 1}] x",
            "[{\"rule\": \"r\", \"file\": \"f\", \"line\": 1, \"extra\": 2}]",
        ] {
            assert!(parse_baseline(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn diff_json_shape() {
        let diff = RatchetDiff {
            new: vec![BaselineEntry { rule: "r".into(), file: "f".into(), line: 1 }],
            stale: vec![],
        };
        assert_eq!(
            render_diff_json(&diff),
            "{\"new\": [{\"rule\": \"r\", \"file\": \"f\", \"line\": 1}], \"stale\": []}\n"
        );
    }
}
