//! Per-file source model the rules run against.
//!
//! From the raw text and its token stream this builds:
//!
//! * **scrubbed lines** — the source with every comment, string and char
//!   literal blanked to spaces (newlines preserved), so text-level rule
//!   scans can never fire inside a literal or a doc example;
//! * **test-region map** — which lines sit inside `#[cfg(test)]` items or
//!   `#[test]` functions (rules skip them: tests may `unwrap`, compare
//!   floats, and use `HashMap` freely);
//! * **suppressions** — parsed `// hmh-lint: allow(rule) — reason`
//!   comments, each tied to the code line it governs. A suppression
//!   without a written reason is itself a diagnostic; the acceptance bar
//!   for silencing the linter is an argument, not a flag.

use crate::lexer::{lex, Token, TokenKind};

/// A parsed inline suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules it silences.
    pub rules: Vec<String>,
    /// The justification text after the separator (may be empty — the
    /// engine turns that into a `bad-suppression` diagnostic).
    pub reason: String,
    /// 1-based line of the comment itself.
    pub comment_line: usize,
    /// 1-based code line the suppression governs (same line for trailing
    /// comments, the next code line for standalone ones).
    pub applies_to: usize,
}

/// A malformed `hmh-lint:` comment (bad syntax — cannot be honored).
#[derive(Debug, Clone)]
pub struct BadSuppression {
    pub line: usize,
    pub what: String,
}

/// One lexed and indexed source file.
pub struct SourceFile {
    pub text: String,
    pub tokens: Vec<Token>,
    /// Scrubbed text split into lines (no trailing newlines).
    pub lines: Vec<String>,
    /// `test_lines[i]` — is 1-based line `i + 1` inside test-only code?
    pub test_lines: Vec<bool>,
    pub suppressions: Vec<Suppression>,
    pub bad_suppressions: Vec<BadSuppression>,
}

impl SourceFile {
    pub fn parse(text: &str) -> Self {
        let tokens = lex(text);
        let lines = scrub(text, &tokens);
        let test_lines = mark_test_lines(text, &tokens, lines.len());
        let (suppressions, bad_suppressions) = parse_suppressions(text, &tokens);
        Self { text: text.to_string(), tokens, lines, test_lines, suppressions, bad_suppressions }
    }

    /// Scrubbed text of 1-based line `n` (empty if out of range).
    pub fn line(&self, n: usize) -> &str {
        if n == 0 {
            return "";
        }
        self.lines.get(n - 1).map_or("", String::as_str)
    }

    /// Is 1-based line `n` inside test-only code?
    pub fn is_test_line(&self, n: usize) -> bool {
        n > 0 && self.test_lines.get(n - 1).copied().unwrap_or(false)
    }
}

/// Blank comment/string/char token bodies to spaces, preserving layout.
fn scrub(text: &str, tokens: &[Token]) -> Vec<String> {
    let mut out = String::with_capacity(text.len());
    for t in tokens {
        let body = t.text(text);
        match t.kind {
            TokenKind::LineComment
            | TokenKind::BlockComment
            | TokenKind::Str
            | TokenKind::RawStr
            | TokenKind::ByteStr
            | TokenKind::RawByteStr
            | TokenKind::CStr
            | TokenKind::RawCStr
            | TokenKind::Char
            | TokenKind::Byte => {
                for c in body.chars() {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            _ => out.push_str(body),
        }
    }
    out.split('\n').map(str::to_string).collect()
}

/// Mark lines covered by `#[cfg(test)]` / `#[test]` items.
fn mark_test_lines(text: &str, tokens: &[Token], line_count: usize) -> Vec<bool> {
    let mut marked = vec![false; line_count];
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut i = 0;
    while i < code.len() {
        if let Some((attr_end, is_test)) = parse_attr(text, &code, i) {
            if is_test {
                let item_end = end_of_item(text, &code, attr_end);
                let from = code[i].line;
                let to = code.get(item_end.saturating_sub(1)).map_or(from, |t| t.line);
                for l in from..=to.min(line_count) {
                    marked[l - 1] = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    marked
}

/// If `code[i]` starts an attribute `#[…]`, return (index one past the
/// closing `]`, whether it is a test marker). Test markers: `#[test]`,
/// any `#[cfg(… test …)]` (covers `cfg(test)`, `cfg(all(test, …))`).
fn parse_attr(text: &str, code: &[&Token], i: usize) -> Option<(usize, bool)> {
    if code[i].text(text) != "#" {
        return None;
    }
    let mut j = i + 1;
    // Inner attributes `#![…]` never gate an item as test code here.
    let inner = code.get(j).is_some_and(|t| t.text(text) == "!");
    if inner {
        j += 1;
    }
    if code.get(j).is_some_and(|t| t.text(text) == "[") {
        let mut depth = 0usize;
        let mut saw_cfg = false;
        let mut saw_test = false;
        let mut first_ident: Option<String> = None;
        while j < code.len() {
            let t = code[j].text(text);
            match t {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        let bare_test = first_ident.as_deref() == Some("test");
                        return Some((j + 1, !inner && (bare_test || (saw_cfg && saw_test))));
                    }
                }
                _ => {
                    if code[j].kind == TokenKind::Ident {
                        if first_ident.is_none() {
                            first_ident = Some(t.to_string());
                        }
                        if t == "cfg" {
                            saw_cfg = true;
                        }
                        if t == "test" {
                            saw_test = true;
                        }
                    }
                }
            }
            j += 1;
        }
    }
    None
}

/// Index one past the end of the item following an attribute: skips any
/// further stacked attributes, then runs to the matching `}` of the
/// item's first brace block, or to the first `;` for block-less items.
fn end_of_item(text: &str, code: &[&Token], mut i: usize) -> usize {
    // Additional attributes stacked on the same item: `#[…] #[…] fn …`.
    while code.get(i).is_some_and(|t| t.text(text) == "#") {
        let mut depth = 0usize;
        i += 1; // past `#`
        while let Some(t) = code.get(i) {
            match t.text(text) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let mut brace_depth = 0usize;
    let mut entered = false;
    while let Some(t) = code.get(i) {
        i += 1;
        match t.text(text) {
            "{" => {
                brace_depth += 1;
                entered = true;
            }
            "}" => {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    return i;
                }
            }
            ";" if !entered => return i,
            _ => {}
        }
    }
    i
}

/// Parse every `hmh-lint:` comment in the token stream.
fn parse_suppressions(text: &str, tokens: &[Token]) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for (idx, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text(text);
        // Doc comments (`///`, `//!`) describe the syntax; only plain
        // `//` comments can carry a live suppression.
        if body.starts_with("///") || body.starts_with("//!") {
            continue;
        }
        let Some(at) = body.find("hmh-lint:") else { continue };
        let rest = body[at + "hmh-lint:".len()..].trim_start();
        let Some(open) = rest.strip_prefix("allow(") else {
            bad.push(BadSuppression {
                line: t.line,
                what: "expected `allow(<rule>[, <rule>…])` after `hmh-lint:`".to_string(),
            });
            continue;
        };
        let Some(close) = open.find(')') else {
            bad.push(BadSuppression {
                line: t.line,
                what: "unclosed `allow(` in suppression".to_string(),
            });
            continue;
        };
        let rules: Vec<String> = open[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad.push(BadSuppression {
                line: t.line,
                what: "suppression names no rules".to_string(),
            });
            continue;
        }
        let reason = open[close + 1..]
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim()
            .to_string();
        // Trailing comment (code earlier on the line) governs its own
        // line; a standalone comment governs the next code line.
        let has_code_before =
            tokens[..idx].iter().rev().take_while(|p| p.line == t.line).any(|p| {
                !matches!(
                    p.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            });
        let applies_to = if has_code_before {
            t.line
        } else {
            tokens[idx + 1..]
                .iter()
                .find(|n| {
                    !matches!(
                        n.kind,
                        TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                    )
                })
                .map_or(t.line, |n| n.line)
        };
        good.push(Suppression { rules, reason, comment_line: t.line, applies_to });
    }
    (good, bad)
}
