//! `Lint.toml` — a minimal TOML-subset parser.
//!
//! The linter has no crates.io dependencies, so it reads its own config:
//! `[section.sub]` headers, `key = value` pairs where a value is a bool,
//! an integer, a `"string"`, or an array of strings (single-line or
//! spread over multiple lines). That is the entire dialect `Lint.toml`
//! uses; anything else is a parse error with a line number, not a silent
//! misread — a linter whose config fails open is worse than no linter.

use std::collections::BTreeMap;

/// A parsed config value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Bool(bool),
    Int(i64),
    Str(String),
    List(Vec<String>),
}

/// Parsed configuration: `section.key` → value (BTreeMap for
/// deterministic iteration — diagnostics must be byte-stable run to run).
#[derive(Debug, Clone, Default)]
pub struct Config {
    entries: BTreeMap<String, Value>,
}

impl Config {
    /// Parse config text; `Err` carries `(line, message)`.
    pub fn parse(text: &str) -> Result<Self, (usize, String)> {
        let mut entries = BTreeMap::new();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err((lineno, format!("unclosed section header `{line}`")));
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, val)) = line.split_once('=') else {
                return Err((lineno, format!("expected `key = value`, got `{line}`")));
            };
            let key = key.trim();
            let mut val = val.trim().to_string();
            // Multi-line array: keep consuming until the bracket closes.
            if val.starts_with('[') && !balanced(&val) {
                for (_, cont) in lines.by_ref() {
                    val.push(' ');
                    val.push_str(strip_comment(cont).trim());
                    if balanced(&val) {
                        break;
                    }
                }
            }
            let parsed = parse_value(&val).map_err(|e| (lineno, e))?;
            let full_key =
                if section.is_empty() { key.to_string() } else { format!("{section}.{key}") };
            entries.insert(full_key, parsed);
        }
        Ok(Self { entries })
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    pub fn get_bool(&self, key: &str, default: bool) -> bool {
        match self.entries.get(key) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }

    pub fn get_int(&self, key: &str, default: i64) -> i64 {
        match self.entries.get(key) {
            Some(Value::Int(n)) => *n,
            _ => default,
        }
    }

    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.entries.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// String-list value; `None` when the key is absent (callers treat
    /// that as "default scope"), `Some(vec![])` for an explicit `[]`.
    pub fn get_list(&self, key: &str) -> Option<&[String]> {
        match self.entries.get(key) {
            Some(Value::List(v)) => Some(v),
            _ => None,
        }
    }
}

/// Strip a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Are `[`/`]` and quotes balanced (i.e. is this value complete)?
fn balanced(val: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in val.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0 && !in_str
}

fn parse_value(val: &str) -> Result<Value, String> {
    if val == "true" {
        return Ok(Value::Bool(true));
    }
    if val == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = val.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(format!("unclosed array `{val}`"));
        };
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                other => return Err(format!("arrays hold strings only, got `{other:?}`")),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(body) = val.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("unclosed string `{val}`"));
        };
        return Ok(Value::Str(body.replace("\\\"", "\"").replace("\\\\", "\\")));
    }
    val.parse::<i64>().map(Value::Int).map_err(|_| format!("unrecognized value `{val}`"))
}

/// Split on commas outside quotes.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&body[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_dialect() {
        let cfg = Config::parse(
            r#"
# top comment
[rules.panic-in-lib]
allow_crates = ["cli", "bench"]  # trailing comment
invariant_prefix = "invariant: "
enabled = true
window = 10

[rules.float-eq]
allow_literals = [
    "0.0",
    "1.0",
]
"#,
        )
        .expect("parses");
        assert_eq!(
            cfg.get_list("rules.panic-in-lib.allow_crates"),
            Some(&["cli".to_string(), "bench".to_string()][..])
        );
        assert_eq!(cfg.get_str("rules.panic-in-lib.invariant_prefix"), Some("invariant: "));
        assert!(cfg.get_bool("rules.panic-in-lib.enabled", false));
        assert_eq!(cfg.get_int("rules.panic-in-lib.window", 0), 10);
        assert_eq!(cfg.get_list("rules.float-eq.allow_literals").map(<[String]>::len), Some(2));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Config::parse("[unclosed").is_err());
        assert!(Config::parse("key value").is_err());
        assert!(Config::parse("key = [\"a\"").is_err());
        assert!(Config::parse("key = nonsense").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("key = \"a # b\"").expect("parses");
        assert_eq!(cfg.get_str("key"), Some("a # b"));
    }
}
