//! A small, self-contained Rust lexer.
//!
//! Tokenizes exactly the surface the rules need to reason about safely:
//! string/char/byte literals (including raw strings with arbitrary `#`
//! guards), line and block comments (including nesting), identifiers,
//! numbers, lifetimes, and punctuation. The guarantee the rule engine
//! depends on is *full fidelity*: concatenating the text of every token
//! reproduces the input byte-for-byte, so byte offsets, line and column
//! numbers in diagnostics are exact, and "is this `<<` inside a string?"
//! has a definite answer.
//!
//! Unrecognized bytes degrade to one-byte [`TokenKind::Punct`] tokens —
//! the linter must never panic on weird input (it scans the same files a
//! crash-safety-obsessed store crate does).

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* … */`, nesting respected; unterminated runs to end of input.
    BlockComment,
    /// `"…"` with escapes.
    Str,
    /// `r"…"` / `r#"…"#` with any number of `#` guards.
    RawStr,
    /// `b"…"` byte string.
    ByteStr,
    /// `br"…"` / `br#"…"#` raw byte string.
    RawByteStr,
    /// `c"…"` C-string literal (Rust 1.77+).
    CStr,
    /// `cr"…"` / `cr#"…"#` raw C-string literal.
    RawCStr,
    /// `'x'`, `'\n'`, `'\''`, `'"'` — a character literal.
    Char,
    /// `b'x'` byte literal.
    Byte,
    /// `'label` / `'a` — a lifetime or loop label.
    Lifetime,
    /// Identifier or keyword, including raw `r#ident`.
    Ident,
    /// Integer or float literal, with suffix if present.
    Number,
    /// Any single other byte (operators, brackets, `…`).
    Punct,
}

/// One lexed token: classification plus its exact span in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based column (in bytes) of the first byte.
    pub col: usize,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lex `src` into a full-fidelity token stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = self.next_kind();
            out.push(Token { kind, start, end: self.pos, line, col });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advance one byte, maintaining line/col. Multi-byte UTF-8
    /// continuation bytes do not advance the column, keeping columns
    /// meaningful for ASCII-heavy source.
    fn bump(&mut self) {
        let b = self.src[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            self.col += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.src.len() {
                self.bump();
            }
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.src[self.pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while let Some(c) = self.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    self.bump();
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 && self.pos < self.src.len() {
                    if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                        self.bump_n(2);
                        depth += 1;
                    } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                        self.bump_n(2);
                        depth -= 1;
                    } else {
                        self.bump();
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                self.quoted_string();
                TokenKind::Str
            }
            b'r' if self.raw_string_ahead(1) => {
                self.bump(); // r
                self.raw_string_body();
                TokenKind::RawStr
            }
            b'b' if self.peek(1) == Some(b'"') => {
                self.bump(); // b
                self.quoted_string();
                TokenKind::ByteStr
            }
            b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                self.bump_n(2); // br
                self.raw_string_body();
                TokenKind::RawByteStr
            }
            b'b' if self.peek(1) == Some(b'\'') => {
                self.bump(); // b
                self.char_literal();
                TokenKind::Byte
            }
            b'c' if self.peek(1) == Some(b'"') => {
                self.bump(); // c
                self.quoted_string();
                TokenKind::CStr
            }
            b'c' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                self.bump_n(2); // cr
                self.raw_string_body();
                TokenKind::RawCStr
            }
            b'\'' => self.quote(),
            _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                // `r#ident` raw identifiers fold into Ident.
                if b == b'r'
                    && self.peek(1) == Some(b'#')
                    && self.peek(2).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
                {
                    self.bump_n(2);
                }
                while self
                    .peek(0)
                    .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
                {
                    self.bump();
                }
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                self.number();
                TokenKind::Number
            }
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    /// Is `r#*"` (zero or more `#`) next, starting `offset` bytes ahead?
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    /// Consume `#*" … "#*` (caller consumed the `r` / `br` prefix).
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        'scan: while self.pos < self.src.len() {
            if self.peek(0) == Some(b'"') {
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        self.bump();
                        continue 'scan;
                    }
                }
                self.bump_n(1 + hashes);
                return;
            }
            self.bump();
        }
    }

    /// Consume `"…"` with `\`-escapes; unterminated runs to end of input.
    fn quoted_string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consume `'…'` after an optional `b`; caller consumed the `b`.
    fn char_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    return;
                }
                b'\n' => return, // malformed; don't swallow the file
                _ => self.bump(),
            }
        }
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime) from a stray quote.
    fn quote(&mut self) -> TokenKind {
        // An escape is always a char literal: '\n', '\'', '\u{1F600}'.
        if self.peek(1) == Some(b'\\') {
            self.char_literal();
            return TokenKind::Char;
        }
        // One (possibly multi-byte) char followed by a closing quote. Scan
        // past UTF-8 continuation bytes to find the candidate close.
        let mut i = 2;
        while self.peek(i).is_some_and(|c| c & 0xc0 == 0x80) {
            i += 1;
        }
        if self.peek(1).is_some_and(|c| c != b'\'' && c != b'\n') && self.peek(i) == Some(b'\'') {
            self.char_literal();
            return TokenKind::Char;
        }
        // Lifetime: quote followed by ident chars.
        if self.peek(1).is_some_and(|c| c == b'_' || c.is_ascii_alphabetic()) {
            self.bump(); // '
            while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
                self.bump();
            }
            return TokenKind::Lifetime;
        }
        self.bump();
        TokenKind::Punct
    }

    /// Consume an integer or float literal, including `0x…` radix
    /// prefixes, `_` separators, exponents and type suffixes.
    fn number(&mut self) {
        let radix_prefixed = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
        if radix_prefixed {
            self.bump_n(2);
            while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
                self.bump();
            }
            return;
        }
        while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_digit()) {
            self.bump();
        }
        // Fraction: `.` followed by a digit (so `1..10` and `x.0` and
        // method calls like `1.max(2)` stay out).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_digit()) {
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
            if self.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                self.bump_n(1 + sign);
                while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        // Suffix: `u64`, `f32`, `usize`, …
        while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric()) {
            self.bump();
        }
    }
}

/// The name an [`TokenKind::Ident`] token denotes: strips the `r#`
/// raw-identifier prefix so `r#type` and `type` compare equal. The
/// syntactic analyzer keys call sites and const names on this form.
pub fn ident_name(text: &str) -> &str {
    text.strip_prefix("r#").unwrap_or(text)
}

/// Whether a [`TokenKind::Number`] literal text denotes a float.
pub fn number_is_float(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    text.contains("f32")
        || text.contains("f64")
        || text.contains('.')
        || (text.contains(['e', 'E']) && !text.contains(['u', 'i']))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn round_trip_is_lossless() {
        let src = r###"fn main() { let s = r#"raw "inner" text"#; /* a /* nested */ comment */ let c = '"'; } // tail"###;
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn classifies_the_tricky_cases() {
        let got = kinds(r#"'a' 'b "x" // not a comment inside"#);
        assert_eq!(got[0], (TokenKind::Char, "'a'".into()));
        assert_eq!(got[1], (TokenKind::Lifetime, "'b".into()));
        assert_eq!(got[2], (TokenKind::Str, "\"x\"".into()));
        assert_eq!(got[3].0, TokenKind::LineComment);
    }

    #[test]
    fn numbers_and_floats() {
        assert!(number_is_float("1.5"));
        assert!(number_is_float("1e-9"));
        assert!(number_is_float("2f64"));
        assert!(!number_is_float("0xff"));
        assert!(!number_is_float("1_000u64"));
        let got = kinds("1..10 1.5e3 0b1010u8");
        assert_eq!(got[0], (TokenKind::Number, "1".into()));
        assert_eq!(got[1], (TokenKind::Punct, ".".into()));
        assert_eq!(got[2], (TokenKind::Punct, ".".into()));
        assert_eq!(got[3], (TokenKind::Number, "10".into()));
        assert_eq!(got[4], (TokenKind::Number, "1.5e3".into()));
        assert_eq!(got[5], (TokenKind::Number, "0b1010u8".into()));
    }

    #[test]
    fn raw_identifiers_fold_into_ident() {
        let got = kinds("let r#type = r#match; r# ident");
        assert_eq!(got[1], (TokenKind::Ident, "r#type".into()));
        assert_eq!(got[3], (TokenKind::Ident, "r#match".into()));
        // A dangling `r#` (no ident after) degrades losslessly.
        assert_round_trips("r# ");
        assert_eq!(ident_name("r#type"), "type");
        assert_eq!(ident_name("plain"), "plain");
    }

    #[test]
    fn c_string_literals() {
        let got = kinds(r##"let a = c"null\0terminated"; let b = cr#"raw c "str""#;"##);
        assert_eq!(got[3].0, TokenKind::CStr);
        assert_eq!(got[8].0, TokenKind::RawCStr);
        assert_round_trips(r##"c"x" cr"y" cr#"z"#"##);
        // `c` and `cr` stay ordinary identifiers when no string follows.
        let got = kinds("let c = cr + 1;");
        assert_eq!(got[1], (TokenKind::Ident, "c".into()));
        assert_eq!(got[3], (TokenKind::Ident, "cr".into()));
    }

    fn assert_round_trips(src: &str) {
        let rebuilt: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "ab\n  cd";
        let toks: Vec<Token> =
            lex(src).into_iter().filter(|t| t.kind == TokenKind::Ident).collect();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
