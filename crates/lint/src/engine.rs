//! The rule engine: workspace discovery, per-crate rule scoping,
//! suppression application, and the engine-level checks that are not
//! per-file rules (`forbid-unsafe`, suppression hygiene).
//!
//! Scope: every workspace member's `src/` tree — `crates/*/src` plus the
//! root facade crate — in sorted order so output is byte-stable.
//! `vendor/` (external stand-ins) and `target/` are never scanned.
//! Test code rides along inside `src/` via `#[cfg(test)]` modules; the
//! source model marks those regions and every rule skips them.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::diag::{sort_diagnostics, Diagnostic, Severity};
use crate::rules::{all_rules, concurrency, known_rule_names, netloop, wire, FileCtx};
use crate::source::{SourceFile, Suppression};
use crate::syntax::ParsedFile;

/// Result of a workspace check.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    pub crates_scanned: usize,
}

impl Report {
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }
}

/// A discovered workspace member.
struct CrateDir {
    /// Short name used for rule scoping: directory name under `crates/`,
    /// or the root package's name.
    name: String,
    src: PathBuf,
}

/// Walk up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Check the whole workspace rooted at `root` with `config`.
///
/// Pipeline order matters: every per-file and workspace rule runs
/// *raw* first, and suppressions are applied per file at the very end
/// — a suppression for a workspace finding (say `unbounded-net-loop`)
/// must see that finding, or it would be reported as unused.
pub fn check_workspace(root: &Path, config: &Config) -> io::Result<Report> {
    let mut report = Report::default();
    let crates = discover_crates(root)?;
    report.crates_scanned = crates.len();

    // Phase 1: parse every file, run the per-file rules raw.
    let mut parsed: Vec<(String, Vec<ParsedFile>)> = Vec::new();
    let mut raw: std::collections::BTreeMap<String, Vec<Diagnostic>> =
        std::collections::BTreeMap::new();
    for krate in &crates {
        let mut files = Vec::new();
        collect_rs_files(&krate.src, &mut files)?;
        files.sort();
        let mut crate_parsed = Vec::new();
        for file in files {
            let text = fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
            let is_bin = rel.ends_with("/main.rs") || rel.contains("/bin/");
            let pf = ParsedFile::parse(&rel, is_bin, &text);
            let ctx =
                FileCtx { crate_name: &krate.name, path: &rel, is_bin, src: &pf.src, config };
            let diags = raw.entry(rel.clone()).or_default();
            for rule in all_rules() {
                if rule_applies(config, rule.name(), &krate.name) {
                    rule.check(&ctx, diags);
                }
            }
            crate_parsed.push(pf);
            report.files_scanned += 1;
        }
        check_forbid_unsafe(root, krate, config, &mut report.diagnostics);
        parsed.push((krate.name.clone(), crate_parsed));
    }

    // Phase 2: crate-scoped workspace rules.
    let mut ws_diags = Vec::new();
    for (name, files) in &parsed {
        let slice: Vec<&ParsedFile> = files.iter().collect();
        if rule_applies(config, "lock-order", name) {
            concurrency::check_lock_order(&slice, config, &mut ws_diags);
        }
        if rule_applies(config, "blocking-under-lock", name) {
            concurrency::check_blocking_under_lock(&slice, config, &mut ws_diags);
        }
        if rule_applies(config, "unbounded-net-loop", name) {
            netloop::check_unbounded_net_loop(&slice, config, &mut ws_diags);
        }
    }

    // Phase 3: wire-drift across every scoped crate at once.
    let wire_files: Vec<&ParsedFile> = parsed
        .iter()
        .filter(|(name, _)| rule_applies(config, "wire-drift", name))
        .flat_map(|(_, files)| files.iter())
        .collect();
    wire::check_wire_drift(&wire_files, config, &mut ws_diags);

    // Phase 4: distribute workspace findings to their files, then apply
    // suppressions file by file.
    for d in ws_diags {
        raw.entry(d.file.clone()).or_default().push(d);
    }
    for (_, files) in &parsed {
        for pf in files {
            let diags = raw.remove(&pf.rel).unwrap_or_default();
            report.diagnostics.extend(apply_suppressions(&pf.src, &pf.rel, diags));
        }
    }
    sort_diagnostics(&mut report.diagnostics);
    Ok(report)
}

/// Lint one file's text through the *full* pipeline — per-file rules,
/// the workspace rules restricted to this single file, and suppression
/// application. Public so fixture tests can exercise rules on files
/// that are not part of any real workspace.
pub fn lint_text(
    crate_name: &str,
    rel_path: &str,
    is_bin: bool,
    text: &str,
    config: &Config,
) -> Vec<Diagnostic> {
    let pf = ParsedFile::parse(rel_path, is_bin, text);
    let ctx = FileCtx { crate_name, path: rel_path, is_bin, src: &pf.src, config };
    let mut raw = Vec::new();
    for rule in all_rules() {
        if rule_applies(config, rule.name(), crate_name) {
            rule.check(&ctx, &mut raw);
        }
    }
    let slice = [&pf];
    if rule_applies(config, "lock-order", crate_name) {
        concurrency::check_lock_order(&slice, config, &mut raw);
    }
    if rule_applies(config, "blocking-under-lock", crate_name) {
        concurrency::check_blocking_under_lock(&slice, config, &mut raw);
    }
    if rule_applies(config, "unbounded-net-loop", crate_name) {
        netloop::check_unbounded_net_loop(&slice, config, &mut raw);
    }
    if rule_applies(config, "wire-drift", crate_name) {
        wire::check_wire_drift(&slice, config, &mut raw);
    }
    apply_suppressions(&pf.src, rel_path, raw)
}

/// Sorted names of the workspace members `check_workspace` would scan —
/// the discovery ground truth the `scopes` subcommand audits `Lint.toml`
/// against.
pub fn discovered_crate_names(root: &Path) -> io::Result<Vec<String>> {
    Ok(discover_crates(root)?.into_iter().map(|c| c.name).collect())
}

/// Every inline suppression in the workspace, as
/// `(crate, file, suppression)`, in scan order — the `audit`
/// subcommand's data source.
pub fn collect_suppressions(root: &Path) -> io::Result<Vec<(String, String, Suppression)>> {
    let mut out = Vec::new();
    for krate in discover_crates(root)? {
        let mut files = Vec::new();
        collect_rs_files(&krate.src, &mut files)?;
        files.sort();
        for file in files {
            let text = fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
            let src = SourceFile::parse(&text);
            for s in src.suppressions {
                out.push((krate.name.clone(), rel.clone(), s));
            }
        }
    }
    Ok(out)
}

/// Is `rule` enabled and in scope for `crate_name`?
fn rule_applies(config: &Config, rule: &str, crate_name: &str) -> bool {
    if !config.get_bool(&format!("rules.{rule}.enabled"), true) {
        return false;
    }
    match config.get_list(&format!("rules.{rule}.crates")) {
        Some(list) => list.iter().any(|c| c == crate_name),
        None => true,
    }
}

/// Drop suppressed findings; emit diagnostics for malformed, reasonless,
/// unknown-rule and unused suppressions. Runs once per file, after
/// every rule (per-file and workspace) has contributed to `raw`.
fn apply_suppressions(src: &SourceFile, path: &str, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let known = known_rule_names();
    let mut used = vec![false; src.suppressions.len()];
    let mut out: Vec<Diagnostic> = Vec::new();
    for diag in raw {
        let matched = src.suppressions.iter().enumerate().find(|(_, s)| {
            s.applies_to == diag.line && s.rules.iter().any(|r| r == &diag.rule)
        });
        match matched {
            Some((i, s)) if !s.reason.is_empty() => used[i] = true,
            Some((i, _)) => {
                // Reasonless suppression: the finding stands AND the
                // suppression is reported below (it stays unused).
                let _ = i;
                out.push(diag);
            }
            None => out.push(diag),
        }
    }
    for (i, s) in src.suppressions.iter().enumerate() {
        if s.reason.is_empty() {
            out.push(
                Diagnostic::new(
                    "bad-suppression",
                    Severity::Error,
                    path,
                    s.comment_line,
                    1,
                    "suppression carries no written reason".to_string(),
                )
                .with_note(
                    "format: `// hmh-lint: allow(<rule>) — <why the invariant holds>`".to_string(),
                ),
            );
            continue;
        }
        for r in &s.rules {
            if !known.contains(&r.as_str()) {
                out.push(Diagnostic::new(
                    "bad-suppression",
                    Severity::Error,
                    path,
                    s.comment_line,
                    1,
                    format!("suppression names unknown rule `{r}`"),
                ));
            }
        }
        if !used[i] && s.rules.iter().all(|r| known.contains(&r.as_str())) {
            out.push(
                Diagnostic::new(
                    "unused-suppression",
                    Severity::Warning,
                    path,
                    s.comment_line,
                    1,
                    format!("suppression for `{}` matches no finding", s.rules.join(", ")),
                )
                .with_note("delete it, or re-anchor it to the hazardous line".to_string()),
            );
        }
    }
    for b in &src.bad_suppressions {
        out.push(Diagnostic::new(
            "bad-suppression",
            Severity::Error,
            path,
            b.line,
            1,
            b.what.clone(),
        ));
    }
    out
}

/// Engine check: crates listed under `rules.forbid-unsafe.crates` must
/// keep `#![forbid(unsafe_code)]` at the top of their `lib.rs`.
fn check_forbid_unsafe(root: &Path, krate: &CrateDir, config: &Config, out: &mut Vec<Diagnostic>) {
    let Some(listed) = config.get_list("rules.forbid-unsafe.crates") else { return };
    if !listed.iter().any(|c| c == &krate.name) {
        return;
    }
    let lib = krate.src.join("lib.rs");
    let rel = lib.strip_prefix(root).unwrap_or(&lib).to_string_lossy().replace('\\', "/");
    let Ok(text) = fs::read_to_string(&lib) else {
        out.push(Diagnostic::new(
            "forbid-unsafe",
            Severity::Error,
            &rel,
            1,
            1,
            format!("crate `{}` has no readable src/lib.rs to carry the attribute", krate.name),
        ));
        return;
    };
    // Search the scrubbed text so a comment can't satisfy the check.
    let src = SourceFile::parse(&text);
    let has_attr = src.lines.iter().any(|l| l.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if !has_attr {
        out.push(
            Diagnostic::new(
                "forbid-unsafe",
                Severity::Error,
                &rel,
                1,
                1,
                format!("crate `{}` must keep `#![forbid(unsafe_code)]` in lib.rs", krate.name),
            )
            .with_note(
                "pure-logic crates stay unsafe-free so bit-level invariants are the only \
                 soundness surface"
                    .to_string(),
            ),
        );
    }
}

/// Workspace members with a `src/` tree: `crates/*` plus the root
/// package. `vendor/*` is deliberately out of scope.
fn discover_crates(root: &Path) -> io::Result<Vec<CrateDir>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for dir in entries {
            let src = dir.join("src");
            if src.is_dir() && dir.join("Cargo.toml").is_file() {
                let name =
                    dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
                out.push(CrateDir { name, src });
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() && root.join("Cargo.toml").is_file() {
        out.push(CrateDir { name: "hyperminhash".to_string(), src: root_src });
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
