//! Diagnostics: the linter's output type and its two renderers.
//!
//! Human output mirrors rustc's shape (`error[rule]: message` with a
//! `-->` span line) so editors that parse rustc output get clickable
//! spans for free. JSON output is a stable array-of-objects for CI and
//! tooling; it is emitted by a hand-rolled serializer so the lint crate
//! stays dependency-free.

use std::fmt::Write as _;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; fails the run only under `--deny`.
    Warning,
    /// An invariant violation; always fails the run.
    Error,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding with an exact span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: String,
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    pub message: String,
    /// Optional hint: why this matters / how to fix or suppress.
    pub note: Option<String>,
}

impl Diagnostic {
    pub fn new(
        rule: &str,
        severity: Severity,
        file: &str,
        line: usize,
        col: usize,
        message: String,
    ) -> Self {
        Self {
            rule: rule.to_string(),
            severity,
            file: file.to_string(),
            line,
            col,
            message,
            note: None,
        }
    }

    pub fn with_note(mut self, note: String) -> Self {
        self.note = Some(note);
        self
    }
}

/// Sort for stable output: file, then line, then column, then rule.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
}

/// Render one diagnostic for humans.
pub fn render_human(d: &Diagnostic) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", d.severity.label(), d.rule, d.message);
    let _ = writeln!(out, "  --> {}:{}:{}", d.file, d.line, d.col);
    if let Some(note) = &d.note {
        let _ = writeln!(out, "  note: {note}");
    }
    out
}

/// Render the full run as a JSON array (one object per diagnostic).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(
            out,
            "\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}",
            json_str(&d.rule),
            json_str(d.severity.label()),
            json_str(&d.file),
            d.line,
            d.col,
            json_str(&d.message),
        );
        if let Some(note) = &d.note {
            let _ = write!(out, ",\"note\":{}", json_str(note));
        }
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// JSON string escaping per RFC 8259 — shared by every JSON emitter in
/// the tool (diagnostics, baseline, audit).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic::new("float-eq", Severity::Error, "a/b.rs", 3, 7, "x \"y\"\n".into());
        let json = render_json(&[d]);
        assert!(json.contains("\"rule\":\"float-eq\""));
        assert!(json.contains("\\\"y\\\"\\n"));
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(render_json(&[]), "[]");
    }

    #[test]
    fn human_render_has_clickable_span() {
        let d = Diagnostic::new("durability", Severity::Warning, "s.rs", 9, 2, "m".into())
            .with_note("n".into());
        let text = render_human(&d);
        assert!(text.contains("warning[durability]: m"));
        assert!(text.contains("--> s.rs:9:2"));
        assert!(text.contains("note: n"));
    }
}
