//! The linter's own acceptance bar: the workspace it ships in is clean.
//!
//! This is the machine-checked version of "the invariants hold today":
//! any new unguarded shift, undocumented panic, or fsync-skipping write
//! breaks this test before it breaks an estimate.

use hmh_lint::{check_workspace, load_config};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let config = load_config(&root).expect("Lint.toml parses");
    let report = check_workspace(&root, &config).expect("scan succeeds");
    assert!(
        report.diagnostics.is_empty(),
        "workspace must be lint-clean; found:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  [{}] {}:{}:{} {}", d.rule, d.file, d.line, d.col, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Guard against a silently hollow scan: all workspace crates, with
    // the full src trees, must actually have been visited.
    assert!(report.crates_scanned >= 16, "only {} crates scanned", report.crates_scanned);
    assert!(report.files_scanned >= 100, "only {} files scanned", report.files_scanned);
}

#[test]
fn every_workspace_crate_is_discovered_and_declared() {
    // The scan is only exhaustive if discovery sees every crate; the
    // `[workspace] crates` list in Lint.toml is only honest if it names
    // exactly what discovery sees (the `scopes` subcommand's contract,
    // held here as a test so CI fails before the CLI step even runs).
    let root = workspace_root();
    let discovered = hmh_lint::discovered_crate_names(&root).expect("discovery succeeds");
    for krate in [
        "bench", "cli", "cnf", "core", "hash", "hll", "hyperminhash", "ingest", "lint", "math",
        "minhash", "replica", "route", "serve", "simulate", "store", "workloads",
    ] {
        assert!(discovered.iter().any(|c| c == krate), "crate `{krate}` not discovered");
    }
    let config = load_config(&root).expect("Lint.toml parses");
    let declared = config.get_list("workspace.crates").expect("[workspace] crates is configured");
    let mut declared: Vec<&str> = declared.iter().map(String::as_str).collect();
    let mut found: Vec<&str> = discovered.iter().map(String::as_str).collect();
    declared.sort_unstable();
    found.sort_unstable();
    assert_eq!(declared, found, "Lint.toml [workspace] crates drifted from the tree");
}

#[test]
fn committed_baseline_matches_the_current_findings() {
    // The ratchet contract, held in-process: the committed baseline must
    // parse, and diffing it against a fresh scan must be clean in both
    // directions (no unratcheted findings, no stale entries).
    let root = workspace_root();
    let config = load_config(&root).expect("Lint.toml parses");
    let report = check_workspace(&root, &config).expect("scan succeeds");
    let text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is committed at the workspace root");
    let baseline = hmh_lint::baseline::parse_baseline(&text).expect("baseline parses");
    let diff = hmh_lint::baseline::diff(&report.diagnostics, &baseline);
    assert!(
        diff.is_clean(),
        "ratchet drifted — new: {:?}, stale: {:?}",
        diff.new,
        diff.stale
    );
}

#[test]
fn forbid_unsafe_scope_covers_the_pure_logic_crates() {
    // The attribute check is only as strong as its scope: if a crate is
    // dropped from the list, `#![forbid(unsafe_code)]` could regress
    // without failing the self-check above.
    let config = load_config(&workspace_root()).expect("Lint.toml parses");
    let listed =
        config.get_list("rules.forbid-unsafe.crates").expect("forbid-unsafe scope is configured");
    for krate in ["core", "hll", "minhash", "math", "cnf", "hash", "simulate", "workloads", "lint"]
    {
        assert!(
            listed.iter().any(|c| c == krate),
            "crate `{krate}` missing from rules.forbid-unsafe.crates"
        );
    }
}

#[test]
fn every_workspace_suppression_carries_a_reason() {
    // Belt and braces on top of `workspace_is_lint_clean`: walk the tree
    // ourselves and parse each file's suppressions directly, so even a
    // suppression the engine somehow skipped must still argue its case.
    let root = workspace_root();
    let mut checked = 0usize;
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target" || n == "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path).expect("readable source");
                let parsed = hmh_lint::source::SourceFile::parse(&text);
                for s in &parsed.suppressions {
                    assert!(
                        !s.reason.is_empty(),
                        "{}:{} suppression has no written reason",
                        path.display(),
                        s.comment_line
                    );
                    checked += 1;
                }
                assert!(
                    parsed.bad_suppressions.is_empty(),
                    "{} has malformed hmh-lint comments",
                    path.display()
                );
            }
        }
    }
    assert!(checked >= 8, "expected the tree's documented suppressions, saw {checked}");
}
