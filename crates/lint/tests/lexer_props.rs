//! Lexer edge cases and a seeded round-trip property.
//!
//! The linter's claims are only as good as its lexer: if a string body
//! leaks into the scrubbed view, rules fire inside doc examples; if a
//! token is dropped, spans drift. The round-trip property (concatenated
//! token texts reproduce the input byte-for-byte) is the losslessness
//! contract, swept over seeded random token soup with the same
//! deterministic-harness pattern as the workspace `tests/properties.rs`.

use hmh_lint::lexer::{lex, TokenKind};
use hmh_lint::source::SourceFile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Concatenating every token's text must reproduce the input exactly.
fn assert_round_trip(src: &str) {
    let tokens = lex(src);
    let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
    assert_eq!(rebuilt, src, "lexer dropped or duplicated bytes");
}

/// The scrubbed view must keep line structure and per-line byte length.
fn assert_scrub_shape(src: &str) {
    let file = SourceFile::parse(src);
    let original: Vec<&str> = src.split('\n').collect();
    assert_eq!(file.lines.len(), original.len(), "scrub changed the line count");
    for (scrubbed, orig) in file.lines.iter().zip(&original) {
        assert_eq!(scrubbed.len(), orig.len(), "scrub changed a line's length");
    }
}

#[test]
fn raw_strings_with_hash_guards() {
    let src = r####"let a = r"plain raw";
let b = r#"has "quotes" inside"#;
let c = r##"ends with one guard: "# still going"##;
let d = br#"raw bytes "too""#;
"####;
    assert_round_trip(src);
    let file = SourceFile::parse(src);
    // Nothing inside the raw strings survives scrubbing.
    assert!(!file.lines.iter().any(|l| l.contains("quotes")));
    assert!(!file.lines.iter().any(|l| l.contains("still going")));
    let kinds: Vec<TokenKind> = lex(src).iter().map(|t| t.kind).collect();
    assert!(kinds.contains(&TokenKind::RawStr));
    assert!(kinds.contains(&TokenKind::RawByteStr));
}

#[test]
fn nested_block_comments() {
    let src = "/* outer /* inner */ still outer */ let x = 1;\n";
    assert_round_trip(src);
    let file = SourceFile::parse(src);
    // The whole nested comment is one token; `still outer` is scrubbed,
    // `let x = 1;` survives.
    assert!(!file.lines[0].contains("still outer"));
    assert!(file.lines[0].contains("let x = 1;"));
    let comments = lex(src).iter().filter(|t| t.kind == TokenKind::BlockComment).count();
    assert_eq!(comments, 1, "nested comment must lex as a single token");
}

#[test]
fn char_literals_that_look_like_other_tokens() {
    // A `"` inside a char must not open a string; a `/` inside a char
    // must not open a comment.
    let src = "let quote = '\"';\nlet slash = '/';\nlet escaped = '\\'';\nlet nl = '\\n';\n";
    assert_round_trip(src);
    let file = SourceFile::parse(src);
    for line in &file.lines {
        assert!(!line.contains('"'), "char-quoted `\"` leaked into scrubbed view");
        assert!(!line.contains('/'), "char-quoted `/` leaked into scrubbed view");
    }
    let chars = lex(src).iter().filter(|t| t.kind == TokenKind::Char).count();
    assert_eq!(chars, 4);
}

#[test]
fn string_with_comment_markers_is_not_a_comment() {
    let src = "let url = \"https://example.com\"; // real comment\nlet block = \"/* not a comment */\";\n";
    assert_round_trip(src);
    let file = SourceFile::parse(src);
    assert!(!file.lines[0].contains("example.com"));
    assert!(file.lines[0].contains("let url ="));
    assert!(file.lines[1].contains("let block ="));
    assert!(!file.lines[1].contains("not a comment"));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn first<'a>(xs: &'a [u32]) -> &'a u32 {\n    &xs[0]\n}\n";
    assert_round_trip(src);
    let tokens = lex(src);
    assert!(tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
    assert!(!tokens.iter().any(|t| t.kind == TokenKind::Char));
}

// -----------------------------------------------------------------
// Seeded round-trip property (same pattern as tests/properties.rs).
// -----------------------------------------------------------------

const CASES: u64 = 64;

/// Complete token fragments the generator samples from — each is
/// individually well-formed, and any concatenation (joined by spaces or
/// newlines) must still round-trip.
const FRAGMENTS: &[&str] = &[
    "ident",
    "r#match",
    "r#type",
    "c\"c string body\"",
    "c\"with \\\" escape\"",
    "cr#\"raw c \"body\"\"#",
    "x1_y2",
    "0xfe_ed",
    "0b1010",
    "1_000_000u64",
    "3.25f32",
    "2e-9",
    "'c'",
    "'\\n'",
    "'\"'",
    "'a",
    "b'z'",
    "\"string body\"",
    "\"with \\\" escape\"",
    "\"// not a comment\"",
    "r#\"raw \"quoted\" body\"#",
    "br\"raw bytes\"",
    "b\"bytes\"",
    "// line comment",
    "/// doc comment",
    "/* block */",
    "/* nested /* deeper */ out */",
    "<<",
    ">>",
    "::",
    "->",
    "=>",
    "==",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "#",
    "&",
    "|",
    "^",
    "%",
];

#[test]
fn seeded_token_soup_round_trips() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15 ^ case);
        let len = rng.gen_range(1usize..60);
        let mut src = String::new();
        for _ in 0..len {
            src.push_str(FRAGMENTS[rng.gen_range(0usize..FRAGMENTS.len())]);
            // Line comments swallow to end-of-line, so newline separators
            // keep later fragments alive; spaces exercise adjacency.
            src.push(if rng.gen_range(0u32..4) == 0 { '\n' } else { ' ' });
        }
        assert_round_trip(&src);
        assert_scrub_shape(&src);
    }
}

#[test]
fn seeded_ascii_noise_round_trips() {
    // Arbitrary printable ASCII — including unterminated strings and
    // stray quotes. The lexer must stay total and lossless on garbage:
    // it scans the same bytes a hostile editor might save.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5bf0_3635 ^ case);
        let len = rng.gen_range(0usize..200);
        let src: String = (0..len)
            .map(|_| {
                let c = rng.gen_range(0x20u8..0x7f);
                if rng.gen_range(0u32..12) == 0 {
                    '\n'
                } else {
                    c as char
                }
            })
            .collect();
        assert_round_trip(&src);
        assert_scrub_shape(&src);
    }
}
