//! Fixture: `truncating-cast` must fire — `word` keeps only its low 32
//! bits with nothing bounding it.

pub fn to_register(word: u64) -> u32 {
    word as u32
}
