//! FIXTURE: a channel receive while the queue guard is live — every
//! other thread that wants the queue now waits on the channel too.

pub struct Shared {
    pub queue: std::sync::Mutex<Vec<u64>>,
}

pub fn drain_one(s: &Shared, rx: &std::sync::mpsc::Receiver<u64>) {
    let mut queue = s.queue.lock();
    let item = rx.recv();
    if let Ok(v) = item {
        queue.push(v);
    }
}
