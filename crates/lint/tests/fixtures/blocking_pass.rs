//! FIXTURE: the guard is dropped before the blocking receive — the
//! discipline the firing fixture violates.

pub struct Shared {
    pub queue: std::sync::Mutex<Vec<u64>>,
}

pub fn drain_one(s: &Shared, rx: &std::sync::mpsc::Receiver<u64>) {
    let mut queue = s.queue.lock();
    queue.push(0);
    drop(queue);
    let _ = rx.recv();
}
