//! Fixture: `float-eq` must stay silent — sentinel guards against the
//! exactly-representable allow-list, and tolerance comparisons.

pub fn is_empty_estimate(estimate: f64) -> bool {
    estimate == 0.0
}

pub fn is_full(fraction: f64) -> bool {
    fraction == 1.0
}

pub fn close_to(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn integer_eq(n: u64) -> bool {
    n == 42
}
