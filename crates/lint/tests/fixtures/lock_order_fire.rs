//! FIXTURE: two functions take the same two locks in opposite orders —
//! the classic AB/BA deadlock once both run concurrently.

pub struct Shared {
    pub store: std::sync::Mutex<u64>,
    pub queue: std::sync::Mutex<u64>,
}

pub fn forward(s: &Shared) -> u64 {
    let store = s.store.lock();
    let queue = s.queue.lock();
    *store + *queue
}

pub fn backward(s: &Shared) -> u64 {
    let queue = s.queue.lock();
    let store = s.store.lock();
    *store + *queue
}
