//! Fixture: `panic-in-lib` must stay silent — the expect message
//! documents its invariant, and test code is exempt.

pub fn first(values: &[u32]) -> u32 {
    *values.first().expect("invariant: caller guarantees non-empty input")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
        panic!("even this is allowed in a test");
    }
}
