//! Fixture: `nondeterminism` must fire — wall clock and default-hasher
//! map in a crate whose outputs must be byte-identical across runs.

use std::collections::HashMap;
use std::time::Instant;

pub fn timed_histogram(items: &[u64]) -> HashMap<u64, usize> {
    let start = Instant::now();
    let mut counts = HashMap::new();
    for item in items {
        *counts.entry(*item).or_default() += 1;
    }
    let _ = start.elapsed();
    counts
}
