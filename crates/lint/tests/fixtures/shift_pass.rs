//! Fixture: `shift-overflow-hazard` must stay silent — every variable
//! amount is visibly bounded (assert, bounded call, `%` reduction).

pub fn bucket_mask(p: u32) -> u64 {
    assert!(p < 64, "p must fit a u64 shift");
    (1u64 << p) - 1
}

pub fn low_word(word: u64, params: &Params) -> u64 {
    word >> params.p()
}

pub fn rotated(x: u64, k: u32) -> u64 {
    x << (k % 64)
}

pub fn literal_amount(x: u64) -> u64 {
    x << 7
}
