//! Fixture: `truncating-cast` must stay silent — masked operand,
//! bounded call, post-cast mask, and an assert within the guard window.

pub fn masked(word: u64) -> u32 {
    (word & 0xffff_ffff) as u32
}

pub fn sliced(digest: &Digest128) -> u32 {
    digest.take_bits(0, 6) as u32
}

pub fn masked_after(word: u64) -> u32 {
    (word as u32) & 0x00ff_ffff
}

pub fn asserted(len: usize) -> u16 {
    debug_assert!(len <= 65_535, "record length fits the wire field");
    len as u16
}
