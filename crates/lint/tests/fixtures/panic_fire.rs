//! Fixture: `panic-in-lib` must fire — bare unwrap, undocumented
//! expect, and a panic macro in library code.

pub fn first(values: &[u32]) -> u32 {
    *values.first().unwrap()
}

pub fn parse(a: &str) -> u32 {
    a.parse().expect("parses")
}

pub fn later() -> u32 {
    todo!("write this")
}
