//! FIXTURE: an opcode dispatch that names two of the group's three
//! constants and hides the third behind a wildcard — exactly how a
//! newly added opcode gets silently dropped.

pub mod op {
    pub const PUT: u8 = 1;
    pub const GET: u8 = 2;
    pub const DELETE: u8 = 3;
}

pub fn dispatch(code: u8) -> &'static str {
    match code {
        op::PUT => "put",
        op::GET => "get",
        _ => "unknown",
    }
}
