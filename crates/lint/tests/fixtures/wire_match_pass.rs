//! FIXTURE: the dispatch covers the whole opcode group; the wildcard
//! only catches genuinely unknown bytes.

pub mod op {
    pub const PUT: u8 = 1;
    pub const GET: u8 = 2;
    pub const DELETE: u8 = 3;
}

pub fn dispatch(code: u8) -> &'static str {
    match code {
        op::PUT => "put",
        op::GET => "get",
        op::DELETE => "delete",
        _ => "unknown",
    }
}
