//! Fixture: `durability` must stay silent — the rename is preceded by
//! `sync_all` on the temp file (write-temp → fsync → rename).

use std::fs;
use std::io::Write;
use std::path::Path;

pub fn save_durably(path: &Path, tmp: &Path, data: &[u8]) -> std::io::Result<()> {
    let mut f = fs::File::create(tmp)?;
    f.write_all(data)?;
    f.sync_all()?;
    fs::rename(tmp, path)
}
