//! Fixture: `nondeterminism` must stay silent — ordered map, explicit
//! seed, time taken as data.

use std::collections::BTreeMap;

pub fn histogram(items: &[u64]) -> BTreeMap<u64, usize> {
    let mut counts = BTreeMap::new();
    for item in items {
        *counts.entry(*item).or_default() += 1;
    }
    counts
}

pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub fn stamp(report: &mut Report, unix_millis: u64) {
    report.generated_at = unix_millis;
}
