//! FIXTURE: both functions respect the same global order (store before
//! queue), and one releases early via drop — no cycle, no finding.

pub struct Shared {
    pub store: std::sync::Mutex<u64>,
    pub queue: std::sync::Mutex<u64>,
}

pub fn forward(s: &Shared) -> u64 {
    let store = s.store.lock();
    let queue = s.queue.lock();
    *store + *queue
}

pub fn also_forward(s: &Shared) -> u64 {
    let store = s.store.lock();
    let total = *store;
    drop(store);
    let queue = s.queue.lock();
    total + *queue
}
