//! Fixture: `float-eq` must fire — exact comparison against a computed
//! float literal, and a NAN comparison (always false).

pub fn converged(estimate: f64) -> bool {
    estimate == 0.25
}

pub fn is_invalid(x: f64) -> bool {
    x == f64::NAN
}
