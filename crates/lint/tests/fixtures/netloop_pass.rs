//! FIXTURE: the same dial loop, but the bound is visible — an attempt
//! counter marched toward a cap.

pub const MAX_DIAL_ATTEMPTS: u32 = 5;

pub fn dial(addr: &str) -> Option<std::net::TcpStream> {
    let mut attempts = 0u32;
    loop {
        if let Ok(conn) = std::net::TcpStream::connect(addr) {
            return Some(conn);
        }
        attempts += 1;
        if attempts >= MAX_DIAL_ATTEMPTS {
            return None;
        }
    }
}
