//! Fixture: `durability` must fire — a bare whole-file write and a
//! rename with no fsync anywhere in the same function.

use std::fs;
use std::path::Path;

pub fn save(path: &Path, data: &[u8]) -> std::io::Result<()> {
    fs::write(path, data)
}

pub fn publish(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    fs::rename(tmp, dst)
}
