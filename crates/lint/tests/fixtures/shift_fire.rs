//! Fixture: `shift-overflow-hazard` must fire — `p` has no visible bound.

pub fn bucket_mask(p: u32) -> u64 {
    (1u64 << p) - 1
}
