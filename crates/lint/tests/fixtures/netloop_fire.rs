//! FIXTURE: dial-until-it-works with no attempt counter, budget or
//! pacer anywhere in the loop — spins forever against a dead peer.

pub fn dial(addr: &str) -> Option<std::net::TcpStream> {
    loop {
        if let Ok(conn) = std::net::TcpStream::connect(addr) {
            return Some(conn);
        }
    }
}
