//! The suppression inventory is pinned: adding an `allow(...)` anywhere
//! in the tree must update this test, making every new silenced finding
//! a reviewed, deliberate act rather than a drive-by comment.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the root")
        .to_path_buf()
}

/// Every suppression in the workspace today, as (file, line, rule).
/// Lines are part of the pin on purpose: a suppression that drifts to a
/// different statement is a different decision and deserves a re-read.
const INVENTORY: &[(&str, usize, &str)] = &[
    ("crates/cli/src/lib.rs", 1313, "durability"),
    ("crates/core/src/params.rs", 86, "shift-overflow-hazard"),
    ("crates/core/src/params.rs", 92, "shift-overflow-hazard"),
    ("crates/core/src/params.rs", 103, "shift-overflow-hazard"),
    ("crates/core/src/sparse.rs", 153, "panic-in-lib"),
    ("crates/hll/src/sketch.rs", 91, "shift-overflow-hazard"),
    ("crates/minhash/src/kpartition.rs", 75, "shift-overflow-hazard"),
    ("crates/store/src/backend.rs", 86, "durability"),
    ("crates/store/src/backend.rs", 108, "durability"),
    ("crates/store/src/fault.rs", 373, "durability"),
];

#[test]
fn suppression_inventory_is_pinned() {
    let found = hmh_lint::collect_suppressions(&workspace_root()).expect("scan succeeds");
    let mut got: Vec<(String, usize, String)> = found
        .iter()
        .flat_map(|(_, file, s)| {
            s.rules.iter().map(move |r| (file.clone(), s.comment_line, r.clone()))
        })
        .collect();
    got.sort();
    let mut want: Vec<(String, usize, String)> =
        INVENTORY.iter().map(|(f, l, r)| (f.to_string(), *l, r.to_string())).collect();
    want.sort();
    assert_eq!(
        got, want,
        "suppression inventory drifted — if the change is deliberate, update INVENTORY"
    );
}

#[test]
fn every_audited_suppression_argues_its_case() {
    let found = hmh_lint::collect_suppressions(&workspace_root()).expect("scan succeeds");
    assert!(!found.is_empty(), "the tree documents its known suppressions");
    for (krate, file, s) in &found {
        assert!(
            s.reason.len() >= 15,
            "{krate}/{file}:{} reason too thin to audit: {:?}",
            s.comment_line,
            s.reason
        );
    }
}
