//! Seeded properties for the syntactic model builder.
//!
//! The workspace rules (lock-order, wire-drift, …) trust `syntax.rs` to
//! report the right consts, calls and loops; a model that silently drops
//! items makes every rule vacuously pass. These properties generate
//! source files whose model is known by construction and assert the
//! parser recovers it exactly, then sweep token soup to pin totality —
//! the same deterministic-harness pattern as `tests/lexer_props.rs`.

use hmh_lint::syntax::{LoopKind, ParsedFile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// What one generated statement contributes to the expected model.
struct StmtShape {
    text: &'static str,
    callees: &'static [&'static str],
    loops: &'static [LoopKind],
}

const STMTS: &[StmtShape] = &[
    StmtShape { text: "    touch();\n", callees: &["touch"], loops: &[] },
    StmtShape {
        text: "    let data = sock.read_frame();\n",
        callees: &["read_frame"],
        loops: &[],
    },
    StmtShape {
        text: "    let len = frames[i].encode();\n",
        callees: &["encode"],
        loops: &[],
    },
    StmtShape {
        text: "    loop {\n        step();\n        break;\n    }\n",
        callees: &["step"],
        loops: &[LoopKind::Loop],
    },
    StmtShape {
        text: "    while running {\n        step();\n    }\n",
        callees: &["step"],
        loops: &[LoopKind::While],
    },
    StmtShape {
        text: "    while i < n {\n        advance();\n    }\n",
        callees: &["advance"],
        loops: &[LoopKind::While],
    },
    StmtShape {
        text: "    for x in 0..4 {\n        emit(x);\n    }\n",
        callees: &["emit"],
        loops: &[LoopKind::For],
    },
    StmtShape {
        text: "    while let Some(v) = it.next() {\n        use_it(v);\n    }\n",
        callees: &["next", "use_it"],
        loops: &[LoopKind::WhileLet],
    },
];

/// Generate a file whose consts, calls and loops are known by
/// construction; return the source plus the expectations.
#[allow(clippy::type_complexity)]
fn gen_file(rng: &mut StdRng) -> (String, Vec<(String, Option<i128>)>, Vec<(Vec<String>, Vec<LoopKind>)>) {
    let mut src = String::new();
    let mut consts: Vec<(String, Option<i128>)> = Vec::new();
    let mut fns: Vec<(Vec<String>, Vec<LoopKind>)> = Vec::new();

    let grouped = rng.gen_bool(0.5);
    if grouped {
        src.push_str("pub mod op {\n");
    }
    for i in 0..rng.gen_range(0usize..5) {
        let name = format!("K{i}");
        let qualified = if grouped { format!("op::{name}") } else { name.clone() };
        match rng.gen_range(0u32..4) {
            0 => {
                let v = i128::from(rng.gen_range(0i64..=255));
                src.push_str(&format!("pub const {name}: u64 = {v};\n"));
                consts.push((qualified, Some(v)));
            }
            1 => {
                let (a, b) = (i128::from(rng.gen_range(0i64..50)), i128::from(rng.gen_range(0i64..50)));
                src.push_str(&format!("pub const {name}: u64 = {a} + {b} * 2;\n"));
                consts.push((qualified, Some(a + b * 2)));
            }
            2 => {
                let k = rng.gen_range(0i64..10);
                src.push_str(&format!("pub const {name}: u64 = 1 << {k};\n"));
                consts.push((qualified, Some(1 << k)));
            }
            _ => {
                src.push_str(&format!("pub const {name}: u64 = OTHER;\n"));
                consts.push((qualified, None));
            }
        }
    }
    if grouped {
        src.push_str("}\n");
    }

    for i in 0..rng.gen_range(1usize..4) {
        src.push_str(&format!("pub fn f{i}() {{\n"));
        let mut callees = Vec::new();
        let mut loops = Vec::new();
        for _ in 0..rng.gen_range(1usize..4) {
            let s = &STMTS[rng.gen_range(0usize..STMTS.len())];
            src.push_str(s.text);
            callees.extend(s.callees.iter().map(|c| c.to_string()));
            loops.extend_from_slice(s.loops);
        }
        src.push_str("}\n");
        fns.push((callees, loops));
    }
    (src, consts, fns)
}

#[test]
fn seeded_models_match_construction() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x517c_c1b7_2722_0a95 ^ case);
        let (src, consts, fns) = gen_file(&mut rng);
        let pf = ParsedFile::parse("crates/test/src/lib.rs", false, &src);

        let got_consts: Vec<(String, Option<i128>)> =
            pf.model.consts.iter().map(|c| (c.name.clone(), c.value)).collect();
        assert_eq!(got_consts, consts, "consts diverged for:\n{src}");

        assert_eq!(pf.model.fns.len(), fns.len(), "fn count diverged for:\n{src}");
        for (f, (callees, loops)) in pf.model.fns.iter().zip(&fns) {
            let got: Vec<String> = f.calls.iter().map(|c| c.callee.clone()).collect();
            assert_eq!(&got, callees, "calls diverged in {} for:\n{src}", f.name);
            let got_loops: Vec<LoopKind> = f.loops.iter().map(|l| l.kind).collect();
            assert_eq!(&got_loops, loops, "loops diverged in {} for:\n{src}", f.name);
            assert!(f.end_line >= f.start_line, "fn span inverted in {}", f.name);
        }
    }
}

#[test]
fn seeded_models_report_lines_inside_the_file() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2545_f491_4f6c_dd1d ^ case);
        let (src, _, _) = gen_file(&mut rng);
        let n_lines = src.split('\n').count();
        let pf = ParsedFile::parse("crates/test/src/lib.rs", false, &src);
        for c in &pf.model.consts {
            assert!(c.line >= 1 && c.line <= n_lines, "const line out of range");
        }
        for f in &pf.model.fns {
            assert!(f.end_line <= n_lines, "fn end past EOF");
            for call in &f.calls {
                assert!(call.line >= f.start_line && call.line <= f.end_line);
                assert!(call.scope_end <= n_lines, "scope_end past EOF");
            }
            for l in &f.loops {
                assert!(l.header_line <= l.end_line && l.end_line <= f.end_line);
            }
        }
    }
}

#[test]
fn parser_is_total_on_ascii_noise() {
    // Unbalanced braces, stray keywords, half-finished items: the parser
    // must produce *some* model without panicking, for any byte soup.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9e37_79b9 ^ case);
        let len = rng.gen_range(0usize..300);
        let src: String = (0..len)
            .map(|_| {
                let c = rng.gen_range(0x20u8..0x7f);
                if rng.gen_range(0u32..12) == 0 {
                    '\n'
                } else {
                    c as char
                }
            })
            .collect();
        let _ = ParsedFile::parse("crates/test/src/lib.rs", false, &src);
    }
}

#[test]
fn parser_is_total_on_keyword_soup() {
    const WORDS: &[&str] = &[
        "fn", "const", "mod", "loop", "while", "for", "match", "let", "drop", "{", "}", "(",
        ")", "=>", "=", ";", "::", ".", "lock", "<", ">", "->", "in", "if", "u64", "1", "r#fn",
    ];
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5bf0_3635_u64 ^ case);
        let len = rng.gen_range(0usize..80);
        let mut src = String::new();
        for _ in 0..len {
            src.push_str(WORDS[rng.gen_range(0usize..WORDS.len())]);
            src.push(if rng.gen_range(0u32..5) == 0 { '\n' } else { ' ' });
        }
        let _ = ParsedFile::parse("crates/test/src/lib.rs", false, &src);
    }
}
