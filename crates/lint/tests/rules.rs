//! Fixture tests: every rule has at least one firing and one passing
//! fixture, plus the suppression machinery's full contract.

use hmh_lint::{lint_text, Config, Severity};

/// Self-contained config mirroring the workspace `Lint.toml` semantics.
const CONFIG: &str = r#"
[rules.shift-overflow-hazard]
guard_window = 10
bounded_calls = [".p()", ".take_bits("]

[rules.truncating-cast]
crates = ["core"]
guard_window = 10
widths = ["u8", "u16", "u32"]
bounded_calls = [".p()", ".take_bits("]

[rules.panic-in-lib]
allow_crates = ["cli"]
invariant_prefix = "invariant: "

[rules.float-eq]
crates = ["core"]
allow_literals = ["0.0", "1.0", "-1.0"]

[rules.nondeterminism]
crates = ["simulate"]

[rules.durability]
crates = ["store"]
sync_window = 12

[rules.lock-order]
crates = ["serve"]

[rules.blocking-under-lock]
crates = ["serve"]
blocking_calls = ["sleep", "join", "recv", "recv_timeout", "connect", "write_frame", "read_frame"]

[rules.unbounded-net-loop]
crates = ["serve"]
net_calls = ["connect", "accept", "write_frame", "read_frame", "read_exact", "write_all"]
bound_tokens = ["attempt", "attempts", "retry", "retries", "budget", "deadline", "shutdown", "timeout", "remaining"]

[rules.wire-drift]
crates = ["serve"]
const_groups = ["op", "status"]
name_patterns = ["PROTO_", "MAX_", "_SEED"]
match_groups = ["op", "status"]
"#;

fn config() -> Config {
    Config::parse(CONFIG).expect("test config parses")
}

/// Lint fixture `text` as a lib file of `crate_name`, returning the
/// rule names that fired.
fn fired(crate_name: &str, text: &str) -> Vec<String> {
    lint_text(crate_name, "crates/test/src/lib.rs", false, text, &config())
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

fn count_rule(findings: &[String], rule: &str) -> usize {
    findings.iter().filter(|r| r.as_str() == rule).count()
}

// -----------------------------------------------------------------
// shift-overflow-hazard
// -----------------------------------------------------------------

#[test]
fn shift_fires_on_unbounded_amount() {
    let f = fired("core", include_str!("fixtures/shift_fire.rs"));
    assert_eq!(count_rule(&f, "shift-overflow-hazard"), 1, "findings: {f:?}");
}

#[test]
fn shift_passes_when_bounded() {
    let f = fired("core", include_str!("fixtures/shift_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

#[test]
fn shift_ignores_generics_closers() {
    let src = "pub fn collect<I: IntoIterator<Item = u64>>(items: I) -> Vec<u64> {\n    items.into_iter().collect()\n}\n";
    let f = fired("core", src);
    assert!(f.is_empty(), "generics `>>` is not a shift: {f:?}");
}

// -----------------------------------------------------------------
// truncating-cast
// -----------------------------------------------------------------

#[test]
fn cast_fires_on_unbounded_operand() {
    let f = fired("core", include_str!("fixtures/cast_fire.rs"));
    assert_eq!(count_rule(&f, "truncating-cast"), 1, "findings: {f:?}");
}

#[test]
fn cast_passes_when_masked_or_bounded() {
    let f = fired("core", include_str!("fixtures/cast_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

#[test]
fn cast_is_scoped_to_configured_crates() {
    let f = fired("math", include_str!("fixtures/cast_fire.rs"));
    assert_eq!(count_rule(&f, "truncating-cast"), 0, "math is out of scope: {f:?}");
}

// -----------------------------------------------------------------
// panic-in-lib
// -----------------------------------------------------------------

#[test]
fn panic_fires_on_unwrap_expect_and_macros() {
    let f = fired("core", include_str!("fixtures/panic_fire.rs"));
    assert_eq!(count_rule(&f, "panic-in-lib"), 3, "findings: {f:?}");
}

#[test]
fn panic_passes_documented_invariants_and_tests() {
    let f = fired("core", include_str!("fixtures/panic_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

#[test]
fn panic_exempts_binaries_and_allowed_crates() {
    let text = include_str!("fixtures/panic_fire.rs");
    let in_bin = lint_text("core", "crates/core/src/main.rs", true, text, &config());
    assert!(in_bin.is_empty(), "binaries may die loudly: {in_bin:?}");
    let in_cli = fired("cli", text);
    assert_eq!(count_rule(&in_cli, "panic-in-lib"), 0, "cli is allowlisted: {in_cli:?}");
}

// -----------------------------------------------------------------
// float-eq
// -----------------------------------------------------------------

#[test]
fn float_fires_on_literal_and_nan_comparisons() {
    let f = fired("core", include_str!("fixtures/float_fire.rs"));
    assert_eq!(count_rule(&f, "float-eq"), 2, "findings: {f:?}");
}

#[test]
fn float_passes_sentinels_and_tolerances() {
    let f = fired("core", include_str!("fixtures/float_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

// -----------------------------------------------------------------
// nondeterminism
// -----------------------------------------------------------------

#[test]
fn nondet_fires_on_clock_and_hashmap() {
    let f = fired("simulate", include_str!("fixtures/nondet_fire.rs"));
    assert!(count_rule(&f, "nondeterminism") >= 2, "findings: {f:?}");
}

#[test]
fn nondet_passes_ordered_and_seeded_code() {
    let f = fired("simulate", include_str!("fixtures/nondet_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

// -----------------------------------------------------------------
// durability
// -----------------------------------------------------------------

#[test]
fn durability_fires_on_bare_write_and_rename() {
    let f = fired("store", include_str!("fixtures/durability_fire.rs"));
    assert_eq!(count_rule(&f, "durability"), 2, "findings: {f:?}");
}

#[test]
fn durability_passes_fsync_before_rename() {
    let f = fired("store", include_str!("fixtures/durability_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

// -----------------------------------------------------------------
// suppressions
// -----------------------------------------------------------------

const SHIFT_HAZARD: &str = "pub fn mask(p: u32) -> u64 {\n    (1u64 << p) - 1\n}\n";

#[test]
fn reasoned_suppression_silences_the_finding() {
    let src = SHIFT_HAZARD.replace(
        "(1u64 << p) - 1",
        "(1u64 << p) - 1 // hmh-lint: allow(shift-overflow-hazard) — p ≤ 24 by construction",
    );
    let f = fired("core", &src);
    assert!(f.is_empty(), "expected silenced, got: {f:?}");
}

#[test]
fn standalone_suppression_governs_next_code_line() {
    let src = SHIFT_HAZARD.replace(
        "    (1u64 << p) - 1",
        "    // hmh-lint: allow(shift-overflow-hazard) — p ≤ 24 by construction\n    (1u64 << p) - 1",
    );
    let f = fired("core", &src);
    assert!(f.is_empty(), "expected silenced, got: {f:?}");
}

#[test]
fn reasonless_suppression_keeps_finding_and_reports_itself() {
    let src = SHIFT_HAZARD
        .replace("(1u64 << p) - 1", "(1u64 << p) - 1 // hmh-lint: allow(shift-overflow-hazard)");
    let f = fired("core", &src);
    assert_eq!(count_rule(&f, "shift-overflow-hazard"), 1, "finding stands: {f:?}");
    assert_eq!(count_rule(&f, "bad-suppression"), 1, "reasonless is an error: {f:?}");
}

#[test]
fn unknown_rule_suppression_is_an_error() {
    let src = SHIFT_HAZARD
        .replace("(1u64 << p) - 1", "(1u64 << p) - 1 // hmh-lint: allow(no-such-rule) — because");
    let f = fired("core", &src);
    assert_eq!(count_rule(&f, "shift-overflow-hazard"), 1, "finding stands: {f:?}");
    assert_eq!(count_rule(&f, "bad-suppression"), 1, "unknown rule is an error: {f:?}");
}

#[test]
fn unused_suppression_is_a_warning() {
    let src = "// hmh-lint: allow(float-eq) — stale justification\npub fn id(x: u64) -> u64 {\n    x\n}\n";
    let diags = lint_text("core", "crates/test/src/lib.rs", false, src, &config());
    assert_eq!(diags.len(), 1, "diags: {diags:?}");
    assert_eq!(diags[0].rule, "unused-suppression");
    assert_eq!(diags[0].severity, Severity::Warning);
}

#[test]
fn malformed_suppression_is_an_error() {
    let src = "// hmh-lint: disallow(float-eq)\npub fn id(x: u64) -> u64 {\n    x\n}\n";
    let f = fired("core", src);
    assert_eq!(count_rule(&f, "bad-suppression"), 1, "findings: {f:?}");
}

#[test]
fn doc_comments_describing_the_syntax_are_inert() {
    let src = "//! Suppress with `// hmh-lint: allow(rule) — reason`.\npub fn id(x: u64) -> u64 {\n    x\n}\n";
    let f = fired("core", src);
    assert!(f.is_empty(), "doc text is not a live suppression: {f:?}");
}

// -----------------------------------------------------------------
// diagnostics carry real spans
// -----------------------------------------------------------------

#[test]
fn findings_point_at_file_line_col() {
    let diags = lint_text("core", "crates/core/src/x.rs", false, SHIFT_HAZARD, &config());
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].file, "crates/core/src/x.rs");
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].col > 1, "column should point inside the line");
    assert_eq!(diags[0].severity, Severity::Error);
}

// -----------------------------------------------------------------
// lock-order
// -----------------------------------------------------------------

#[test]
fn lock_order_fires_on_inverted_order() {
    let f = fired("serve", include_str!("fixtures/lock_order_fire.rs"));
    assert_eq!(count_rule(&f, "lock-order"), 1, "findings: {f:?}");
}

#[test]
fn lock_order_passes_consistent_order() {
    let f = fired("serve", include_str!("fixtures/lock_order_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

#[test]
fn lock_order_fires_on_reacquisition() {
    let src = "pub struct S {\n    pub q: std::sync::Mutex<u64>,\n}\npub fn double(s: &S) -> u64 {\n    let a = s.q.lock();\n    let b = s.q.lock();\n    *a + *b\n}\n";
    let f = fired("serve", src);
    assert_eq!(count_rule(&f, "lock-order"), 1, "findings: {f:?}");
}

#[test]
fn lock_order_is_crate_scoped() {
    let f = fired("core", include_str!("fixtures/lock_order_fire.rs"));
    assert_eq!(count_rule(&f, "lock-order"), 0, "findings: {f:?}");
}

// -----------------------------------------------------------------
// blocking-under-lock
// -----------------------------------------------------------------

#[test]
fn blocking_fires_under_live_guard() {
    let f = fired("serve", include_str!("fixtures/blocking_fire.rs"));
    assert_eq!(count_rule(&f, "blocking-under-lock"), 1, "findings: {f:?}");
}

#[test]
fn blocking_passes_after_drop() {
    let f = fired("serve", include_str!("fixtures/blocking_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

#[test]
fn blocking_ignores_calls_outside_any_guard() {
    let src = "pub fn wait(rx: &std::sync::mpsc::Receiver<u64>) -> u64 {\n    match rx.recv() {\n        Ok(v) => v,\n        Err(_) => 0,\n    }\n}\n";
    let f = fired("serve", src);
    assert!(f.is_empty(), "no guard is live: {f:?}");
}

// -----------------------------------------------------------------
// unbounded-net-loop
// -----------------------------------------------------------------

#[test]
fn netloop_fires_on_unbounded_dial() {
    let f = fired("serve", include_str!("fixtures/netloop_fire.rs"));
    assert_eq!(count_rule(&f, "unbounded-net-loop"), 1, "findings: {f:?}");
}

#[test]
fn netloop_passes_with_attempt_cap() {
    let f = fired("serve", include_str!("fixtures/netloop_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

#[test]
fn netloop_exempts_for_loops() {
    let src = "pub fn flush(streams: &mut Vec<std::net::TcpStream>) {\n    for s in streams.iter_mut() {\n        write_frame(s);\n    }\n}\nfn write_frame(_s: &mut std::net::TcpStream) {}\n";
    let f = fired("serve", src);
    assert!(f.is_empty(), "for-loops are structurally bounded: {f:?}");
}

#[test]
fn netloop_exempts_while_with_comparison() {
    let src = "pub fn pump(n: u64) {\n    let mut sent = 0u64;\n    while sent < n {\n        write_frame(sent);\n        sent += 1;\n    }\n}\nfn write_frame(_v: u64) {}\n";
    let f = fired("serve", src);
    assert!(f.is_empty(), "comparison in the while header is a bound: {f:?}");
}

// -----------------------------------------------------------------
// wire-drift (match exhaustiveness; value drift is cross-file and
// covered by the engine's synthetic-workspace test)
// -----------------------------------------------------------------

#[test]
fn wire_match_fires_on_partial_opcode_coverage() {
    let f = fired("serve", include_str!("fixtures/wire_match_fire.rs"));
    assert_eq!(count_rule(&f, "wire-drift"), 1, "findings: {f:?}");
}

#[test]
fn wire_match_passes_on_full_coverage() {
    let f = fired("serve", include_str!("fixtures/wire_match_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

// -----------------------------------------------------------------
// workspace rules honor the suppression machinery
// -----------------------------------------------------------------

#[test]
fn workspace_rule_findings_are_suppressible_with_reason() {
    let src = "pub fn dial(addr: &str) -> std::net::TcpStream {\n    // hmh-lint: allow(unbounded-net-loop) — caller enforces a wall-clock deadline\n    loop {\n        if let Ok(conn) = std::net::TcpStream::connect(addr) {\n            return conn;\n        }\n    }\n}\n";
    let f = fired("serve", src);
    assert!(f.is_empty(), "reasoned suppression silences the finding: {f:?}");
}
