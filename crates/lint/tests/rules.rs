//! Fixture tests: every rule has at least one firing and one passing
//! fixture, plus the suppression machinery's full contract.

use hmh_lint::{lint_text, Config, Severity};

/// Self-contained config mirroring the workspace `Lint.toml` semantics.
const CONFIG: &str = r#"
[rules.shift-overflow-hazard]
guard_window = 10
bounded_calls = [".p()", ".take_bits("]

[rules.truncating-cast]
crates = ["core"]
guard_window = 10
widths = ["u8", "u16", "u32"]
bounded_calls = [".p()", ".take_bits("]

[rules.panic-in-lib]
allow_crates = ["cli"]
invariant_prefix = "invariant: "

[rules.float-eq]
crates = ["core"]
allow_literals = ["0.0", "1.0", "-1.0"]

[rules.nondeterminism]
crates = ["simulate"]

[rules.durability]
crates = ["store"]
sync_window = 12
"#;

fn config() -> Config {
    Config::parse(CONFIG).expect("test config parses")
}

/// Lint fixture `text` as a lib file of `crate_name`, returning the
/// rule names that fired.
fn fired(crate_name: &str, text: &str) -> Vec<String> {
    lint_text(crate_name, "crates/test/src/lib.rs", false, text, &config())
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

fn count_rule(findings: &[String], rule: &str) -> usize {
    findings.iter().filter(|r| r.as_str() == rule).count()
}

// -----------------------------------------------------------------
// shift-overflow-hazard
// -----------------------------------------------------------------

#[test]
fn shift_fires_on_unbounded_amount() {
    let f = fired("core", include_str!("fixtures/shift_fire.rs"));
    assert_eq!(count_rule(&f, "shift-overflow-hazard"), 1, "findings: {f:?}");
}

#[test]
fn shift_passes_when_bounded() {
    let f = fired("core", include_str!("fixtures/shift_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

#[test]
fn shift_ignores_generics_closers() {
    let src = "pub fn collect<I: IntoIterator<Item = u64>>(items: I) -> Vec<u64> {\n    items.into_iter().collect()\n}\n";
    let f = fired("core", src);
    assert!(f.is_empty(), "generics `>>` is not a shift: {f:?}");
}

// -----------------------------------------------------------------
// truncating-cast
// -----------------------------------------------------------------

#[test]
fn cast_fires_on_unbounded_operand() {
    let f = fired("core", include_str!("fixtures/cast_fire.rs"));
    assert_eq!(count_rule(&f, "truncating-cast"), 1, "findings: {f:?}");
}

#[test]
fn cast_passes_when_masked_or_bounded() {
    let f = fired("core", include_str!("fixtures/cast_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

#[test]
fn cast_is_scoped_to_configured_crates() {
    let f = fired("math", include_str!("fixtures/cast_fire.rs"));
    assert_eq!(count_rule(&f, "truncating-cast"), 0, "math is out of scope: {f:?}");
}

// -----------------------------------------------------------------
// panic-in-lib
// -----------------------------------------------------------------

#[test]
fn panic_fires_on_unwrap_expect_and_macros() {
    let f = fired("core", include_str!("fixtures/panic_fire.rs"));
    assert_eq!(count_rule(&f, "panic-in-lib"), 3, "findings: {f:?}");
}

#[test]
fn panic_passes_documented_invariants_and_tests() {
    let f = fired("core", include_str!("fixtures/panic_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

#[test]
fn panic_exempts_binaries_and_allowed_crates() {
    let text = include_str!("fixtures/panic_fire.rs");
    let in_bin = lint_text("core", "crates/core/src/main.rs", true, text, &config());
    assert!(in_bin.is_empty(), "binaries may die loudly: {in_bin:?}");
    let in_cli = fired("cli", text);
    assert_eq!(count_rule(&in_cli, "panic-in-lib"), 0, "cli is allowlisted: {in_cli:?}");
}

// -----------------------------------------------------------------
// float-eq
// -----------------------------------------------------------------

#[test]
fn float_fires_on_literal_and_nan_comparisons() {
    let f = fired("core", include_str!("fixtures/float_fire.rs"));
    assert_eq!(count_rule(&f, "float-eq"), 2, "findings: {f:?}");
}

#[test]
fn float_passes_sentinels_and_tolerances() {
    let f = fired("core", include_str!("fixtures/float_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

// -----------------------------------------------------------------
// nondeterminism
// -----------------------------------------------------------------

#[test]
fn nondet_fires_on_clock_and_hashmap() {
    let f = fired("simulate", include_str!("fixtures/nondet_fire.rs"));
    assert!(count_rule(&f, "nondeterminism") >= 2, "findings: {f:?}");
}

#[test]
fn nondet_passes_ordered_and_seeded_code() {
    let f = fired("simulate", include_str!("fixtures/nondet_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

// -----------------------------------------------------------------
// durability
// -----------------------------------------------------------------

#[test]
fn durability_fires_on_bare_write_and_rename() {
    let f = fired("store", include_str!("fixtures/durability_fire.rs"));
    assert_eq!(count_rule(&f, "durability"), 2, "findings: {f:?}");
}

#[test]
fn durability_passes_fsync_before_rename() {
    let f = fired("store", include_str!("fixtures/durability_pass.rs"));
    assert!(f.is_empty(), "expected clean, got: {f:?}");
}

// -----------------------------------------------------------------
// suppressions
// -----------------------------------------------------------------

const SHIFT_HAZARD: &str = "pub fn mask(p: u32) -> u64 {\n    (1u64 << p) - 1\n}\n";

#[test]
fn reasoned_suppression_silences_the_finding() {
    let src = SHIFT_HAZARD.replace(
        "(1u64 << p) - 1",
        "(1u64 << p) - 1 // hmh-lint: allow(shift-overflow-hazard) — p ≤ 24 by construction",
    );
    let f = fired("core", &src);
    assert!(f.is_empty(), "expected silenced, got: {f:?}");
}

#[test]
fn standalone_suppression_governs_next_code_line() {
    let src = SHIFT_HAZARD.replace(
        "    (1u64 << p) - 1",
        "    // hmh-lint: allow(shift-overflow-hazard) — p ≤ 24 by construction\n    (1u64 << p) - 1",
    );
    let f = fired("core", &src);
    assert!(f.is_empty(), "expected silenced, got: {f:?}");
}

#[test]
fn reasonless_suppression_keeps_finding_and_reports_itself() {
    let src = SHIFT_HAZARD
        .replace("(1u64 << p) - 1", "(1u64 << p) - 1 // hmh-lint: allow(shift-overflow-hazard)");
    let f = fired("core", &src);
    assert_eq!(count_rule(&f, "shift-overflow-hazard"), 1, "finding stands: {f:?}");
    assert_eq!(count_rule(&f, "bad-suppression"), 1, "reasonless is an error: {f:?}");
}

#[test]
fn unknown_rule_suppression_is_an_error() {
    let src = SHIFT_HAZARD
        .replace("(1u64 << p) - 1", "(1u64 << p) - 1 // hmh-lint: allow(no-such-rule) — because");
    let f = fired("core", &src);
    assert_eq!(count_rule(&f, "shift-overflow-hazard"), 1, "finding stands: {f:?}");
    assert_eq!(count_rule(&f, "bad-suppression"), 1, "unknown rule is an error: {f:?}");
}

#[test]
fn unused_suppression_is_a_warning() {
    let src = "// hmh-lint: allow(float-eq) — stale justification\npub fn id(x: u64) -> u64 {\n    x\n}\n";
    let diags = lint_text("core", "crates/test/src/lib.rs", false, src, &config());
    assert_eq!(diags.len(), 1, "diags: {diags:?}");
    assert_eq!(diags[0].rule, "unused-suppression");
    assert_eq!(diags[0].severity, Severity::Warning);
}

#[test]
fn malformed_suppression_is_an_error() {
    let src = "// hmh-lint: disallow(float-eq)\npub fn id(x: u64) -> u64 {\n    x\n}\n";
    let f = fired("core", src);
    assert_eq!(count_rule(&f, "bad-suppression"), 1, "findings: {f:?}");
}

#[test]
fn doc_comments_describing_the_syntax_are_inert() {
    let src = "//! Suppress with `// hmh-lint: allow(rule) — reason`.\npub fn id(x: u64) -> u64 {\n    x\n}\n";
    let f = fired("core", src);
    assert!(f.is_empty(), "doc text is not a live suppression: {f:?}");
}

// -----------------------------------------------------------------
// diagnostics carry real spans
// -----------------------------------------------------------------

#[test]
fn findings_point_at_file_line_col() {
    let diags = lint_text("core", "crates/core/src/x.rs", false, SHIFT_HAZARD, &config());
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].file, "crates/core/src/x.rs");
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].col > 1, "column should point inside the line");
    assert_eq!(diags[0].severity, Severity::Error);
}
