//! End-to-end engine tests against small synthetic workspaces on disk:
//! crate discovery, root finding, and the `forbid-unsafe` engine check
//! (which reads lib.rs files rather than running per-line).

use hmh_lint::{check_workspace, find_workspace_root, Config};
use std::fs;
use std::path::PathBuf;

/// A throwaway workspace under the system temp dir, removed on drop.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(tag: &str, lib_rs: &str, lint_toml: &str) -> Self {
        let root = std::env::temp_dir().join(format!("hmh-lint-{}-{tag}", std::process::id()));
        let src = root.join("crates/alpha/src");
        fs::create_dir_all(&src).expect("mkdir");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write");
        fs::write(root.join("Lint.toml"), lint_toml).expect("write");
        fs::write(
            root.join("crates/alpha/Cargo.toml"),
            "[package]\nname = \"alpha\"\nversion = \"0.1.0\"\n",
        )
        .expect("write");
        fs::write(src.join("lib.rs"), lib_rs).expect("write");
        Self { root }
    }

    /// Add a second (or third…) crate to the synthetic workspace.
    fn add_crate(&self, name: &str, lib_rs: &str) {
        let src = self.root.join(format!("crates/{name}/src"));
        fs::create_dir_all(&src).expect("mkdir");
        fs::write(
            self.root.join(format!("crates/{name}/Cargo.toml")),
            format!("[package]\nname = \"{name}\"\nversion = \"0.1.0\"\n"),
        )
        .expect("write");
        fs::write(src.join("lib.rs"), lib_rs).expect("write");
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const FORBID_CFG: &str = "[rules.forbid-unsafe]\ncrates = [\"alpha\"]\n";

fn run(ws: &TempWs, lint_toml: &str) -> Vec<(String, String)> {
    let config = Config::parse(lint_toml).expect("config parses");
    check_workspace(&ws.root, &config)
        .expect("scan succeeds")
        .diagnostics
        .into_iter()
        .map(|d| (d.rule, d.file))
        .collect()
}

#[test]
fn forbid_unsafe_fires_when_attribute_is_missing() {
    let ws = TempWs::new("forbid-fire", "pub fn f() -> u32 {\n    7\n}\n", FORBID_CFG);
    let diags = run(&ws, FORBID_CFG);
    assert_eq!(diags.len(), 1, "diags: {diags:?}");
    assert_eq!(diags[0].0, "forbid-unsafe");
    assert!(diags[0].1.ends_with("crates/alpha/src/lib.rs"));
}

#[test]
fn forbid_unsafe_passes_when_attribute_is_present() {
    let ws = TempWs::new(
        "forbid-pass",
        "#![forbid(unsafe_code)]\npub fn f() -> u32 {\n    7\n}\n",
        FORBID_CFG,
    );
    let diags = run(&ws, FORBID_CFG);
    assert!(diags.is_empty(), "diags: {diags:?}");
}

#[test]
fn forbid_unsafe_rejects_attribute_hidden_in_a_comment() {
    let ws = TempWs::new(
        "forbid-comment",
        "// #![forbid(unsafe_code)]\npub fn f() -> u32 {\n    7\n}\n",
        FORBID_CFG,
    );
    let diags = run(&ws, FORBID_CFG);
    assert_eq!(diags.len(), 1, "a commented-out attribute must not count: {diags:?}");
    assert_eq!(diags[0].0, "forbid-unsafe");
}

#[test]
fn unlisted_crates_are_not_required_to_forbid_unsafe() {
    let cfg = "[rules.forbid-unsafe]\ncrates = [\"beta\"]\n";
    let ws = TempWs::new("forbid-unlisted", "pub fn f() -> u32 {\n    7\n}\n", cfg);
    let diags = run(&ws, cfg);
    assert!(diags.is_empty(), "alpha is out of scope: {diags:?}");
}

#[test]
fn find_workspace_root_walks_up_from_a_nested_dir() {
    let ws = TempWs::new("root-walk", "#![forbid(unsafe_code)]\n", FORBID_CFG);
    let nested = ws.root.join("crates/alpha/src");
    let found = find_workspace_root(&nested).expect("root found");
    assert_eq!(found, ws.root);
}

#[test]
fn per_file_rules_run_inside_the_discovered_workspace() {
    let cfg = "[rules.shift-overflow-hazard]\nguard_window = 10\n";
    let ws =
        TempWs::new("rules-run", "pub fn mask(p: u32) -> u64 {\n    (1u64 << p) - 1\n}\n", cfg);
    let diags = run(&ws, cfg);
    assert_eq!(diags.len(), 1, "diags: {diags:?}");
    assert_eq!(diags[0].0, "shift-overflow-hazard");
}

// -----------------------------------------------------------------
// wire-drift across crates
// -----------------------------------------------------------------

const DRIFT_CFG: &str = "[rules.wire-drift]\ncrates = [\"alpha\", \"beta\"]\nconst_groups = [\"op\"]\n";

const ALPHA_OPS: &str =
    "pub mod op {\n    pub const PUT: u8 = 1;\n    pub const GET: u8 = 2;\n}\n";

#[test]
fn wire_drift_fires_when_two_crates_disagree_on_an_opcode() {
    let beta = "pub mod op {\n    pub const PUT: u8 = 1;\n    pub const GET: u8 = 3;\n}\n";
    let ws = TempWs::new("drift-fire", ALPHA_OPS, DRIFT_CFG);
    ws.add_crate("beta", beta);
    let diags = run(&ws, DRIFT_CFG);
    assert_eq!(diags.len(), 1, "diags: {diags:?}");
    assert_eq!(diags[0].0, "wire-drift");
    assert!(
        diags[0].1.ends_with("crates/beta/src/lib.rs"),
        "the divergent (non-canonical) site is flagged: {diags:?}"
    );
}

#[test]
fn wire_drift_passes_when_crates_agree() {
    let ws = TempWs::new("drift-pass", ALPHA_OPS, DRIFT_CFG);
    ws.add_crate("beta", ALPHA_OPS);
    let diags = run(&ws, DRIFT_CFG);
    assert!(diags.is_empty(), "identical opcode tables are clean: {diags:?}");
}

#[test]
fn wire_drift_ignores_crates_outside_its_scope() {
    let cfg = "[rules.wire-drift]\ncrates = [\"alpha\"]\nconst_groups = [\"op\"]\n";
    let beta = "pub mod op {\n    pub const PUT: u8 = 9;\n    pub const GET: u8 = 9;\n}\n";
    let ws = TempWs::new("drift-scope", ALPHA_OPS, cfg);
    ws.add_crate("beta", beta);
    let diags = run(&ws, cfg);
    assert!(diags.is_empty(), "beta is out of scope, so there is no second site: {diags:?}");
}
