//! Socket-level chaos harness: a real daemon on a real localhost socket,
//! fed deterministic adversarial schedules — truncated frames, garbage
//! bytes, lying length prefixes, slow-loris stalls, mid-stream
//! disconnects, overload storms, and a store yanked out from under the
//! daemon. After every schedule the same invariants hold:
//!
//! * the daemon never panics or hangs — a healthy client still gets
//!   correct answers afterwards;
//! * hostile input earns a typed error (or a BUSY shed), never silence
//!   with a wedged worker behind it;
//! * connection slots drain back to zero — no leak survives the storm;
//! * the store stays salvageable: whatever the sockets saw, a fresh open
//!   reports clean-or-salvaged, never unrecoverable.
//!
//! Everything is seeded (SplitMix64): a failing schedule replays
//! bit-for-bit.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use hmh_core::format;
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::splitmix::SplitMix64;
use hmh_hash::RandomOracle;
use hmh_serve::proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Request, Response, MAX_BATCH_ITEMS, MAX_FRAME_LEN, MAX_ITEM_LEN,
};
use hmh_serve::{serve, Client, ClientError, ClientOptions, ErrCode, ServeOptions, ServerHandle};
use hmh_store::{RetryPolicy, SketchStore, StoreOptions};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hmh-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn opts(workers: usize, queue_depth: usize) -> ServeOptions {
    ServeOptions {
        workers,
        queue_depth,
        // Short deadlines keep the whole suite fast: a stalled peer costs
        // a worker at most 300ms.
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        store: StoreOptions::no_sleep(),
        ..ServeOptions::default()
    }
}

fn start(dir: &TempDir, workers: usize, queue_depth: usize) -> ServerHandle {
    serve(&dir.0, "127.0.0.1:0", opts(workers, queue_depth)).unwrap()
}

fn client(handle: &ServerHandle) -> Client {
    Client::with_options(
        handle.addr(),
        ClientOptions {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default().with_jitter_seed(0xC0FFEE),
            ..ClientOptions::default()
        },
    )
}

fn sketch(lo: u64, hi: u64) -> HyperMinHash {
    let params = HmhParams::new(8, 6, 6).unwrap();
    HyperMinHash::from_items(params, lo..hi)
}

/// The post-chaos invariant: the daemon still serves a healthy client
/// correctly, and its connection slots have drained.
fn assert_still_healthy(handle: &ServerHandle, tag: &str) {
    let mut c = client(handle);
    let name = format!("healthy-{tag}");
    let s = sketch(0, 2_000);
    c.put(&name, &s).unwrap_or_else(|e| panic!("{tag}: put after chaos: {e}"));
    let got = c.get(&name).unwrap_or_else(|e| panic!("{tag}: get after chaos: {e}"));
    assert_eq!(got, s, "{tag}: round trip intact after chaos");
    let health = c.health().unwrap_or_else(|e| panic!("{tag}: health after chaos: {e}"));
    // Our own connection may still be counted while the worker serves
    // this very HEALTH request; anything beyond that is a leaked slot.
    assert!(health.active <= 1, "{tag}: connection slots leaked: {health:?}");
    assert_eq!(health.queue_depth, 0, "{tag}: queue not drained: {health:?}");
}

fn raw(handle: &ServerHandle) -> TcpStream {
    let conn = TcpStream::connect(handle.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    conn.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
    conn
}

#[test]
fn truncated_frames_at_every_cut_never_wedge_the_daemon() {
    let dir = TempDir::new("truncate");
    let handle = start(&dir, 2, 8);

    let body =
        encode_request(&Request::Put { name: "t".into(), sketch: format::encode(&sketch(0, 100)) });
    let mut framed = Vec::new();
    write_frame(&mut framed, &body).unwrap();

    // Cut the framed bytes at every prefix length (capped for the long
    // tail — every interesting boundary is in the first bytes and the
    // exact cut points are swept densely there).
    let cuts: Vec<usize> =
        (0..framed.len().min(64)).chain([framed.len() / 2, framed.len() - 1]).collect();
    for cut in cuts {
        let mut conn = raw(&handle);
        conn.write_all(&framed[..cut]).unwrap();
        // Half a frame, then a clean shutdown of the write half: the
        // server sees EOF (or a short read) mid-frame and must hang up
        // without panicking.
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut rest = Vec::new();
        let _ = conn.read_to_end(&mut rest); // reply or clean close, never a hang
    }
    assert_still_healthy(&handle, "truncate");
    handle.join();
}

#[test]
fn garbage_bytes_get_typed_errors_or_clean_closes() {
    let dir = TempDir::new("garbage");
    let handle = start(&dir, 2, 8);
    let mut rng = SplitMix64::new(0xBAD5EED);

    for round in 0..32 {
        let len = (rng.next_u64() % 200) as usize + 1;
        let mut bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        if round % 4 == 0 {
            // Well-framed garbage: a correct length prefix over a hostile
            // body. This must earn a *typed* error reply.
            let mut framed = Vec::new();
            write_frame(&mut framed, &bytes).unwrap();
            bytes = framed;
        }
        let mut conn = raw(&handle);
        conn.write_all(&bytes).unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reply = Vec::new();
        let _ = conn.read_to_end(&mut reply);
        if round % 4 == 0 && !reply.is_empty() {
            let body = read_frame(&mut &reply[..], MAX_FRAME_LEN).unwrap().expect("framed reply");
            match decode_response(&body).expect("server replies in protocol") {
                Response::Err { .. } | Response::Busy => {}
                other => panic!("garbage earned a success reply: {other:?}"),
            }
        }
    }
    assert_still_healthy(&handle, "garbage");
    handle.join();
}

#[test]
fn lying_length_prefix_is_rejected_without_allocation() {
    let dir = TempDir::new("lying-len");
    let handle = start(&dir, 2, 8);

    for declared in [MAX_FRAME_LEN as u64 + 1, u32::MAX as u64] {
        let mut conn = raw(&handle);
        // Declare a huge body, send only 8 bytes of it: the server must
        // answer TOO_LARGE from the prefix alone, never waiting for (or
        // allocating) the declared length.
        conn.write_all(&u32::try_from(declared).unwrap().to_le_bytes()).unwrap();
        conn.write_all(&[0u8; 8]).unwrap();
        let body = read_frame(&mut conn, MAX_FRAME_LEN).unwrap().expect("typed reply");
        match decode_response(&body).unwrap() {
            Response::Err { code: ErrCode::TooLarge, .. } => {}
            other => panic!("declared {declared}: expected TooLarge, got {other:?}"),
        }
    }
    assert_still_healthy(&handle, "lying-len");
    handle.join();
}

#[test]
fn slow_loris_costs_a_deadline_not_a_worker() {
    let dir = TempDir::new("loris");
    let handle = start(&dir, 2, 8);

    // Two stallers — as many as there are workers — each dribbling one
    // byte then going quiet. Without read deadlines this would wedge the
    // entire pool.
    let stallers: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut conn = raw(&handle);
            conn.write_all(&[7]).unwrap(); // first byte of a length prefix, then silence
            conn
        })
        .collect();

    // A healthy client gets served once the deadlines (300ms) reclaim
    // the workers; the retry policy absorbs the wait.
    let mut c = client(&handle);
    c.put("after-loris", &sketch(0, 500)).unwrap();
    drop(stallers);
    // Close our keep-alive connection before the slot-leak check — an
    // open client legitimately occupies a worker.
    drop(c);
    assert_still_healthy(&handle, "loris");
    handle.join();
}

#[test]
fn midstream_disconnect_sweep_leaks_nothing() {
    let dir = TempDir::new("disconnect");
    let handle = start(&dir, 2, 8);
    let mut rng = SplitMix64::new(0xD15C0);

    let body = encode_request(&Request::Merge {
        name: "d".into(),
        sketch: format::encode(&sketch(0, 3_000)),
    });
    let mut framed = Vec::new();
    write_frame(&mut framed, &body).unwrap();

    for _ in 0..40 {
        let cut = (rng.next_u64() as usize) % framed.len();
        let conn = raw(&handle);
        let mut conn = conn;
        let _ = conn.write_all(&framed[..cut]);
        // Hard drop: RST or FIN mid-frame at a seeded random offset.
        drop(conn);
    }
    assert_still_healthy(&handle, "disconnect");
    handle.join();
}

#[test]
fn overload_sheds_with_busy_and_recovers() {
    let dir = TempDir::new("overload");
    // One worker, depth-2 queue: the 4th concurrent connection must shed.
    // The server's read deadline is long here so the silent holders pin
    // the worker (and keep the queue full) for the whole storm — with a
    // short deadline the worker abandons them and drains the queue
    // before the storm can observe a shed.
    let handle = serve(
        &dir.0,
        "127.0.0.1:0",
        ServeOptions { read_timeout: Duration::from_secs(2), ..opts(1, 2) },
    )
    .unwrap();

    // Occupy the worker and fill the queue with idle connections (the
    // worker blocks reading the first for up to its 300ms deadline).
    let holders: Vec<TcpStream> = (0..3).map(|_| raw(&handle)).collect();
    std::thread::sleep(Duration::from_millis(50)); // let the accept loop enqueue them

    // Storm the server: open all eight connections at once (reading
    // serially would let the worker's deadline drain the queue between
    // attempts), then collect replies. Each should be an explicit BUSY
    // frame, not silence.
    let mut storm: Vec<TcpStream> = (0..8).map(|_| raw(&handle)).collect();
    std::thread::sleep(Duration::from_millis(100)); // accept loop processes the burst
    let mut sheds = 0;
    for conn in &mut storm {
        conn.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let mut reply = Vec::new();
        let _ = conn.read_to_end(&mut reply);
        if !reply.is_empty() {
            let body = read_frame(&mut &reply[..], MAX_FRAME_LEN).unwrap().expect("framed");
            if decode_response(&body).unwrap() == Response::Busy {
                sheds += 1;
            }
        }
    }
    assert!(sheds >= 6, "overload must shed explicitly, saw {sheds}/8 BUSY");
    drop(storm);

    // A client with a tiny retry budget surfaces ClientError::Busy...
    let mut impatient = Client::with_options(
        handle.addr(),
        ClientOptions {
            retry: RetryPolicy::no_sleep().with_budget(Duration::ZERO),
            ..ClientOptions::default()
        },
    );
    match impatient.list() {
        Err(ClientError::Busy | ClientError::Io(_)) => {}
        other => panic!("expected Busy under storm, got {other:?}"),
    }

    // ...while a patient client's backoff outlives the stall: deadlines
    // reclaim the worker, the queue drains, service resumes.
    drop(holders);
    let mut patient = client(&handle);
    patient.put("after-storm", &sketch(0, 800)).unwrap();
    let health = patient.health().unwrap();
    assert!(health.shed >= 6, "shed counter records the storm: {health:?}");
    drop(patient);
    assert_still_healthy(&handle, "overload");
    handle.join();
}

#[test]
fn store_write_failure_degrades_to_read_only() {
    let dir = TempDir::new("degrade");
    let handle = start(&dir, 2, 8);
    let mut c = client(&handle);
    let s = sketch(0, 4_000);
    c.put("kept", &s).unwrap();

    // Yank the store directory out from under the daemon: every further
    // append fails at open-by-path. (Permission tricks don't work under
    // root; deletion does.)
    std::fs::remove_dir_all(&dir.0).unwrap();

    // The write that hits the dead disk reports a store error and trips
    // degradation...
    match c.put("lost", &sketch(0, 10)) {
        Err(ClientError::Server { code: ErrCode::Store, message }) => {
            assert!(message.contains("read-only"), "{message}");
        }
        other => panic!("expected a store error, got {other:?}"),
    }
    // ...after which writes are refused up front...
    match c.put("lost2", &sketch(0, 10)) {
        Err(ClientError::ReadOnly) => {}
        other => panic!("expected ReadOnly, got {other:?}"),
    }
    match c.merge("kept", &sketch(0, 10)) {
        Err(ClientError::ReadOnly) => {}
        other => panic!("expected ReadOnly for merge, got {other:?}"),
    }
    // ...but acknowledged state keeps serving, and HEALTH tells the truth.
    // (store_clean stays true here: fsck scans the on-disk files, and an
    // absent log is vacuously clean — read_only is the operator signal.)
    assert_eq!(c.get("kept").unwrap(), s, "reads survive degradation");
    let health = c.health().unwrap();
    assert!(health.read_only, "{health:?}");
    assert_eq!(health.sketches, 1, "acknowledged state still served: {health:?}");
    handle.join();
}

#[test]
fn shutdown_drains_queued_connections_before_exit() {
    let dir = TempDir::new("drain");
    let handle = start(&dir, 1, 8);

    // Stall the single worker, then queue two connections with requests
    // already written.
    let mut staller = raw(&handle);
    staller.write_all(&[1]).unwrap();
    std::thread::sleep(Duration::from_millis(30));

    let queued: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut conn = raw(&handle);
            write_frame(&mut conn, &encode_request(&Request::List)).unwrap();
            conn
        })
        .collect();
    std::thread::sleep(Duration::from_millis(60)); // accept loop enqueues both

    // Shutdown now: already-queued connections must still be answered.
    handle.shutdown();
    for mut conn in queued {
        let body = read_frame(&mut conn, MAX_FRAME_LEN)
            .expect("queued connection answered during drain")
            .expect("reply frame, not EOF");
        assert!(matches!(decode_response(&body).unwrap(), Response::Names(_)));
    }
    drop(staller);
    handle.join();
}

#[test]
fn kill_mid_put_leaves_store_salvageable() {
    // In-process stand-in for SIGKILL-mid-PUT (the full process-level
    // version lives in the CLI's serve_kill test): drop the daemon with
    // a PUT frame half-written into the socket, then reopen the store
    // directly and demand clean-or-salvaged.
    let dir = TempDir::new("kill");
    let handle = start(&dir, 2, 8);
    let mut c = client(&handle);
    let s = sketch(0, 5_000);
    c.put("durable", &s).unwrap();

    let body = encode_request(&Request::Put {
        name: "torn".into(),
        sketch: format::encode(&sketch(0, 2_000)),
    });
    let mut framed = Vec::new();
    write_frame(&mut framed, &body).unwrap();
    let mut conn = raw(&handle);
    conn.write_all(&framed[..framed.len() / 2]).unwrap();

    // Abandon everything mid-exchange. join() only drains what the
    // workers already hold; the half-written PUT never completes.
    drop(conn);
    handle.join();

    let store = SketchStore::open(&dir.0).unwrap();
    assert!(
        store.recovery_report().is_clean(),
        "a half-received PUT never touches the log: {:?}",
        store.recovery_report()
    );
    assert_eq!(
        store.get("durable").unwrap().unwrap(),
        s,
        "acknowledged write survives the abandon"
    );
}

// ---------------------------------------------------------------------
// BATCH_PUT adversarial cases: the batched ingest op faces the same
// chaos as everything else — truncated item lists, lying counts,
// oversize batches, disconnects mid-batch — and must answer with typed
// errors or clean closes, never a panic, a hang, or a leaked slot.
// ---------------------------------------------------------------------

/// A raw BATCH_PUT body with an arbitrary claimed item count over an
/// arbitrary actual item list — the tamperable building block.
fn batch_body(name: &str, claimed_count: u32, items: &[&[u8]]) -> Vec<u8> {
    let mut b = vec![1u8, 9]; // PROTO_VERSION, op::BATCH_PUT
    b.extend_from_slice(&u16::try_from(name.len()).unwrap().to_le_bytes());
    b.extend_from_slice(name.as_bytes());
    b.extend_from_slice(&[8, 6, 6, 0]); // p, q, r, algorithm (murmur3)
    b.extend_from_slice(&7u64.to_le_bytes()); // seed
    b.extend_from_slice(&claimed_count.to_le_bytes());
    for item in items {
        b.extend_from_slice(&u16::try_from(item.len()).unwrap().to_le_bytes());
        b.extend_from_slice(item);
    }
    b
}

/// Send one framed body and decode the (required) reply frame.
fn exchange_raw(handle: &ServerHandle, body: &[u8]) -> Response {
    let mut conn = raw(handle);
    write_frame(&mut conn, body).unwrap();
    let frame = read_frame(&mut conn, MAX_FRAME_LEN)
        .expect("server must reply in protocol")
        .expect("server must not hang up before replying to a well-framed body");
    decode_response(&frame).expect("server replies are always decodable")
}

#[test]
fn batch_put_round_trip_matches_local_build() {
    let dir = TempDir::new("batch-roundtrip");
    let handle = start(&dir, 2, 8);
    let params = HmhParams::new(8, 6, 6).unwrap();
    let oracle = RandomOracle::with_seed(7);

    let items: Vec<Vec<u8>> = (0u64..5_000).map(|i| i.to_le_bytes().to_vec()).collect();
    let slices: Vec<&[u8]> = items.iter().map(Vec::as_slice).collect();
    let mut c = client(&handle);
    // Two frames' worth through one call, plus a second call on the same
    // name: server-side ingest must accumulate, idempotently.
    c.batch_put("batch", params, oracle, &slices).unwrap();
    c.batch_put("batch", params, oracle, &slices[..100]).unwrap();

    let mut local = HyperMinHash::with_oracle(params, oracle);
    local.insert_batch(&slices);
    assert_eq!(c.get("batch").unwrap(), local, "server-side ingest matches a local build");

    // A conflicting configuration on an existing name is refused.
    let other = HmhParams::new(6, 4, 4).unwrap();
    match c.batch_put("batch", other, oracle, &[]) {
        Err(ClientError::Server { code: ErrCode::Incompatible, .. }) => {}
        other => panic!("conflicting config must be Incompatible, got {other:?}"),
    }
    drop(c);
    assert_still_healthy(&handle, "batch-roundtrip");
    handle.join();
}

#[test]
fn batch_put_truncated_item_list_is_a_typed_error() {
    let dir = TempDir::new("batch-truncated");
    let handle = start(&dir, 2, 8);

    // The frame is complete; the body inside lies: three items declared,
    // the second one's bytes cut short, the third missing entirely.
    let mut body = batch_body("trunc", 3, &[b"alpha"]);
    body.extend_from_slice(&9u16.to_le_bytes());
    body.extend_from_slice(b"shor"); // 4 of 9 declared bytes
    match exchange_raw(&handle, &body) {
        Response::Err { code: ErrCode::BadFrame, .. } => {}
        other => panic!("truncated item list must be BadFrame, got {other:?}"),
    }

    // Nothing may have been ingested from the mangled frame.
    let mut c = client(&handle);
    match c.get("trunc") {
        Err(ClientError::NotFound(_)) => {}
        other => panic!("a rejected batch must not create the sketch: {other:?}"),
    }
    drop(c);
    assert_still_healthy(&handle, "batch-truncated");
    handle.join();
}

#[test]
fn batch_put_lying_item_count_is_a_typed_error() {
    let dir = TempDir::new("batch-lying");
    let handle = start(&dir, 2, 8);

    // Claims 10_000 items, carries two: in-cap count, unbacked by bytes.
    let body = batch_body("liar", 10_000, &[b"a", b"b"]);
    match exchange_raw(&handle, &body) {
        Response::Err { code: ErrCode::BadFrame, .. } => {}
        other => panic!("lying count must be BadFrame, got {other:?}"),
    }

    let mut c = client(&handle);
    match c.get("liar") {
        Err(ClientError::NotFound(_)) => {}
        other => panic!("a rejected batch must not create the sketch: {other:?}"),
    }
    drop(c);
    assert_still_healthy(&handle, "batch-lying");
    handle.join();
}

#[test]
fn batch_put_oversize_batch_and_items_are_shed_with_too_large() {
    let dir = TempDir::new("batch-oversize");
    let handle = start(&dir, 2, 8);

    // Count over the protocol cap: rejected before any item is believed.
    let body = batch_body("big", u32::try_from(MAX_BATCH_ITEMS + 1).unwrap(), &[]);
    match exchange_raw(&handle, &body) {
        Response::Err { code: ErrCode::TooLarge, .. } => {}
        other => panic!("oversize count must be TooLarge, got {other:?}"),
    }

    // One item over the per-item cap: same fate.
    let mut body = batch_body("big", 1, &[]);
    body.extend_from_slice(&u16::try_from(MAX_ITEM_LEN + 1).unwrap().to_le_bytes());
    body.extend_from_slice(&vec![0x55u8; MAX_ITEM_LEN + 1]);
    match exchange_raw(&handle, &body) {
        Response::Err { code: ErrCode::TooLarge, .. } => {}
        other => panic!("oversize item must be TooLarge, got {other:?}"),
    }

    // The client refuses oversize items before they reach the wire.
    let mut c = client(&handle);
    let params = HmhParams::new(8, 6, 6).unwrap();
    let fat = vec![0u8; MAX_ITEM_LEN + 1];
    match c.batch_put("big", params, RandomOracle::with_seed(7), &[&fat]) {
        Err(ClientError::ItemTooLarge { len, max }) => {
            assert_eq!(len, MAX_ITEM_LEN + 1);
            assert_eq!(max, MAX_ITEM_LEN);
        }
        other => panic!("client must refuse oversize items locally, got {other:?}"),
    }
    drop(c);
    assert_still_healthy(&handle, "batch-oversize");
    handle.join();
}

#[test]
fn batch_put_disconnect_mid_batch_leaks_nothing_and_ingests_nothing() {
    let dir = TempDir::new("batch-disconnect");
    let handle = start(&dir, 2, 8);
    let mut rng = SplitMix64::new(0xBA7C);

    let items: Vec<Vec<u8>> = (0u64..2_000).map(|i| i.to_le_bytes().to_vec()).collect();
    let slices: Vec<&[u8]> = items.iter().map(Vec::as_slice).collect();
    let body = batch_body("cutoff", u32::try_from(slices.len()).unwrap(), &slices);
    let mut framed = Vec::new();
    write_frame(&mut framed, &body).unwrap();

    for _ in 0..40 {
        let cut = (rng.next_u64() as usize) % framed.len();
        let mut conn = raw(&handle);
        let _ = conn.write_all(&framed[..cut]);
        // Hard drop: RST or FIN mid-batch at a seeded random offset.
        drop(conn);
    }

    // Batches are atomic per frame: a frame that never fully arrived
    // must not have ingested a single item.
    let mut c = client(&handle);
    match c.get("cutoff") {
        Err(ClientError::NotFound(_)) => {}
        other => panic!("a torn batch frame must ingest nothing: {other:?}"),
    }
    drop(c);
    assert_still_healthy(&handle, "batch-disconnect");
    handle.join();
}

#[test]
fn batch_put_respects_read_only_degradation() {
    let dir = TempDir::new("batch-readonly");
    let handle = start(&dir, 2, 8);
    let params = HmhParams::new(8, 6, 6).unwrap();
    let oracle = RandomOracle::with_seed(7);

    let mut c = client(&handle);
    c.batch_put("pre", params, oracle, &[b"one", b"two"]).unwrap();

    // Yank the store directory: the next durable write fails, tripping
    // sticky read-only degradation — batches must then be refused.
    std::fs::remove_dir_all(&dir.0).unwrap();
    let mut tripped = false;
    for round in 0..8 {
        let item = format!("post-{round}");
        match c.batch_put("pre", params, oracle, &[item.as_bytes()]) {
            Err(ClientError::Server { code: ErrCode::Store, .. }) => tripped = true,
            Err(ClientError::ReadOnly) => {
                tripped = true;
                break;
            }
            Ok(()) => {}
            Err(e) => panic!("unexpected batch failure: {e}"),
        }
    }
    assert!(tripped, "a dead store must trip degradation");
    match c.batch_put("fresh", params, oracle, &[b"x"]) {
        Err(ClientError::ReadOnly) => {}
        other => panic!("read-only server must refuse batches: {other:?}"),
    }
    // Reads still work in degradation.
    assert!(c.get("pre").is_ok(), "acknowledged state stays servable");
    handle.join();
}

/// The reconnect blind spot (fixed): a server that dies *after* the
/// request frame is flushed — clean close before replying on one
/// connection, a torn half-reply on the next — used to surface as a
/// fatal `UnexpectedEof`/`BrokenPipe` instead of a retried transient.
/// Every HMS1 operation is idempotent (PUT is last-write-wins on
/// identical bytes, MERGE is the CRDT max), so retrying a request whose
/// fate is unknown is always safe. The client must ride through both
/// failure shapes and succeed on the third connection.
#[test]
fn disconnect_after_request_flushed_is_retried_not_fatal() {
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accepts = Arc::new(AtomicU64::new(0));
    let seen = Arc::clone(&accepts);

    let server = std::thread::spawn(move || {
        for attempt in 0u64.. {
            let Ok((mut conn, _)) = listener.accept() else { return };
            seen.fetch_add(1, Ordering::SeqCst);
            conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            // Always consume the full request frame first: the client has
            // flushed it and committed to reading a reply.
            let Ok(Some(body)) = read_frame(&mut conn, MAX_FRAME_LEN) else { return };
            match attempt {
                // Attempt 1: clean close after the request — the client
                // sees EOF where a reply should start.
                0 => drop(conn),
                // Attempt 2: a torn reply — length prefix promises a
                // frame, the connection dies mid-body (UnexpectedEof,
                // the historical blind spot).
                1 => {
                    let reply = encode_response(&Response::Ok);
                    let mut framed = Vec::new();
                    write_frame(&mut framed, &reply).unwrap();
                    conn.write_all(&framed[..framed.len() - 1]).unwrap();
                    drop(conn);
                }
                // Attempt 3: behave. Echo a well-formed OK and stop.
                _ => {
                    assert!(
                        decode_request(&body).is_ok(),
                        "retried frame must still be well-formed"
                    );
                    let reply = encode_response(&Response::Ok);
                    let mut framed = Vec::new();
                    write_frame(&mut framed, &reply).unwrap();
                    conn.write_all(&framed).unwrap();
                    return;
                }
            }
        }
    });

    let mut c = Client::with_options(
        addr,
        ClientOptions {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            // Enough budget for both chaos connections plus the good one
            // (no_sleep's default is 4 attempts — stated here because the
            // accept-count assertion depends on it).
            retry: {
                let mut retry = RetryPolicy::no_sleep();
                retry.max_attempts = 4;
                retry
            },
            ..ClientOptions::default()
        },
    );
    c.put("retried", &sketch(0, 500)).expect("post-flush disconnects must be retried");
    server.join().unwrap();
    assert_eq!(
        accepts.load(Ordering::SeqCst),
        3,
        "one clean-close retry, one torn-reply retry, one success"
    );
}
